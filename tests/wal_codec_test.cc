// Property-style round-trip tests for the write-ahead-log codec
// (stream/wal.h): frame encode -> decode is the identity on arbitrary
// payloads, record batches survive the full append -> commit -> scan ->
// replay cycle bit-for-bit — including the float edge cases a naive
// text or comparison-based codec mangles (NaN payloads, signed zeros,
// denormals) — and the torn-tail rule returns exactly the longest valid
// frame prefix no matter where the log is cut.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/raw_store.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"
#include "stream/wal.h"

namespace coconut {
namespace stream {
namespace {

class WalTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/wal_codec_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name();
    std::filesystem::remove_all(root_);
    auto storage = storage::StorageManager::Create(root_);
    ASSERT_TRUE(storage.ok()) << storage.status().ToString();
    storage_ = storage.TakeValue();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<storage::StorageManager> storage_;
};

/// A StreamingIndex that only records what replay feeds it — the codec
/// tests care about the bytes reaching the index, not about indexing.
class CapturingIndex : public StreamingIndex {
 public:
  struct Entry {
    uint64_t id;
    int64_t timestamp;
    std::vector<float> values;
  };

  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    entries.push_back(Entry{series_id, timestamp,
                            {znorm_values.begin(), znorm_values.end()}});
    return Status::OK();
  }
  Status FlushAll() override { return Status::OK(); }
  Result<core::SearchResult> ApproxSearch(std::span<const float>,
                                          const core::SearchOptions&,
                                          core::QueryCounters*) override {
    return core::SearchResult{};
  }
  Result<core::SearchResult> ExactSearch(std::span<const float>,
                                         const core::SearchOptions&,
                                         core::QueryCounters*) override {
    return core::SearchResult{};
  }
  uint64_t num_entries() const override { return entries.size(); }
  size_t num_partitions() const override { return 0; }
  uint64_t index_bytes() const override { return 0; }
  std::string describe() const override { return "capturing"; }
  void RestoreWatermark(int64_t timestamp) override {
    restored_watermark = timestamp;
  }

  std::vector<Entry> entries;
  int64_t restored_watermark = std::numeric_limits<int64_t>::min();
};

/// Bitwise float equality: NaN == NaN, +0.0 != -0.0 — the payload must
/// come back as the same 32 bits, not merely compare equal.
void ExpectBitwiseEqual(std::span<const float> got,
                        std::span<const float> want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    uint32_t g = 0;
    uint32_t w = 0;
    std::memcpy(&g, &got[i], 4);
    std::memcpy(&w, &want[i], 4);
    EXPECT_EQ(g, w) << "float " << i << " changed bits";
  }
}

TEST(WalFrameCodec, RoundTripsRandomPayloads) {
  Rng rng(20260807);
  const WalFrameType types[] = {WalFrameType::kStreamHeader,
                                WalFrameType::kBatch, WalFrameType::kCheckpoint,
                                WalFrameType::kBase};
  std::vector<uint8_t> log;
  std::vector<WalFrame> expected;
  for (int round = 0; round < 64; ++round) {
    const size_t len = static_cast<size_t>(rng.NextUint64() % 2048);
    std::vector<uint8_t> payload(len);
    for (uint8_t& b : payload) {
      b = static_cast<uint8_t>(rng.NextUint64());
    }
    const WalFrameType type = types[rng.NextUint64() % 4];
    const std::vector<uint8_t> frame = Wal::EncodeFrame(type, payload);
    ASSERT_EQ(frame.size(), kWalFrameHeaderBytes + payload.size());

    // Each frame decodes alone...
    std::vector<WalFrame> one;
    EXPECT_EQ(Wal::DecodeFrames(frame, &one), frame.size());
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].type, type);
    EXPECT_EQ(one[0].payload, payload);

    // ...and concatenated with everything before it.
    log.insert(log.end(), frame.begin(), frame.end());
    expected.push_back(WalFrame{type, std::move(payload)});
  }
  std::vector<WalFrame> all;
  EXPECT_EQ(Wal::DecodeFrames(log, &all), log.size());
  ASSERT_EQ(all.size(), expected.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].type, expected[i].type);
    EXPECT_EQ(all[i].payload, expected[i].payload);
  }
}

TEST(WalFrameCodec, EveryCutReturnsLongestValidPrefix) {
  // Three small frames; cutting the byte stream anywhere must decode
  // exactly the frames that fit before the cut — never a partial frame,
  // never a crash.
  std::vector<uint8_t> log;
  std::vector<size_t> boundaries{0};
  for (uint32_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> payload(5 + i * 7, static_cast<uint8_t>(0xA0 + i));
    const std::vector<uint8_t> frame =
        Wal::EncodeFrame(WalFrameType::kBatch, payload);
    log.insert(log.end(), frame.begin(), frame.end());
    boundaries.push_back(log.size());
  }
  for (size_t cut = 0; cut <= log.size(); ++cut) {
    std::vector<WalFrame> frames;
    const size_t valid = Wal::DecodeFrames(
        std::span<const uint8_t>(log.data(), cut), &frames);
    size_t want_frames = 0;
    size_t want_valid = 0;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) {
        want_frames = b;
        want_valid = boundaries[b];
      }
    }
    EXPECT_EQ(frames.size(), want_frames) << "cut at " << cut;
    EXPECT_EQ(valid, want_valid) << "cut at " << cut;
  }
}

TEST_F(WalTempDir, BatchRecordsRoundTripThroughCommitAndReplay) {
  constexpr uint32_t kLen = 16;
  // The adversarial payload: quiet NaN, signaling-ish NaN bits, both
  // zeros, denormal, inf, lowest/highest finite.
  std::vector<float> nasty(kLen, 0.0f);
  nasty[0] = std::numeric_limits<float>::quiet_NaN();
  nasty[1] = -0.0f;
  nasty[2] = 0.0f;
  nasty[3] = std::numeric_limits<float>::denorm_min();
  nasty[4] = std::numeric_limits<float>::infinity();
  nasty[5] = -std::numeric_limits<float>::infinity();
  nasty[6] = std::numeric_limits<float>::lowest();
  nasty[7] = std::numeric_limits<float>::max();
  uint32_t nan_bits = 0x7FC00001u;
  std::memcpy(&nasty[8], &nan_bits, 4);

  Rng rng(7);
  std::vector<std::vector<float>> admits;
  {
    auto opened = Wal::Open(storage_.get(), "wal", kLen);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Wal> wal = opened.TakeValue();

    // An empty commit writes nothing.
    const uint64_t before = wal->size_bytes();
    ASSERT_TRUE(wal->Commit().ok());
    EXPECT_EQ(wal->size_bytes(), before);

    admits.push_back(nasty);
    wal->AppendAdmit(0, std::numeric_limits<int64_t>::min(), admits[0]);
    ASSERT_TRUE(wal->Commit().ok());

    for (uint64_t i = 1; i < 5; ++i) {
      std::vector<float> values(kLen);
      for (float& v : values) {
        v = static_cast<float>(rng.NextGaussian());
      }
      admits.push_back(values);
      wal->AppendAdmit(i, static_cast<int64_t>(i) * 1000 - 2000, values);
    }
    wal->AppendHole();
    wal->AppendMap(999);
    ASSERT_TRUE(wal->Commit().ok());
  }

  auto reopened = Wal::Open(storage_.get(), "wal", kLen);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<Wal> wal = reopened.TakeValue();
  CapturingIndex index;
  auto raw = core::RawSeriesStore::OpenTruncated(storage_.get(), "raw", kLen,
                                                 wal->base_ordinals());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  WalRecoverOutcome outcome;
  ASSERT_TRUE(wal->Recover(&index, raw.value().get(), &outcome).ok());

  EXPECT_EQ(outcome.admitted, 5u);
  EXPECT_EQ(outcome.ordinals, 6u);  // 5 admits + 1 hole
  EXPECT_EQ(outcome.watermark, 2000);
  ASSERT_EQ(outcome.local_to_global.size(), 1u);
  EXPECT_EQ(outcome.local_to_global[0], 999u);

  ASSERT_EQ(index.entries.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(index.entries[i].id, i);
    ExpectBitwiseEqual(index.entries[i].values, admits[i]);
  }
  EXPECT_EQ(index.entries[0].timestamp, std::numeric_limits<int64_t>::min());

  // Replay re-appended every payload (holes zero-filled) to the store.
  std::vector<float> fetched(kLen);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(raw.value()->Get(i, fetched).ok());
    ExpectBitwiseEqual(fetched, admits[i]);
  }
  ASSERT_TRUE(raw.value()->Get(5, fetched).ok());
  for (float v : fetched) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST_F(WalTempDir, MaxLengthSeriesAndEmptyBatches) {
  // The longest series the wire accepts still fits one batch frame.
  constexpr uint32_t kLen = 4096;
  std::vector<float> big(kLen);
  Rng rng(11);
  for (float& v : big) {
    v = static_cast<float>(rng.NextGaussian());
  }
  {
    auto opened = Wal::Open(storage_.get(), "wal", kLen);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Wal> wal = opened.TakeValue();
    ASSERT_TRUE(wal->Commit().ok());  // nothing pending
    ASSERT_TRUE(wal->Commit().ok());  // still nothing
    wal->AppendAdmit(0, 42, big);
    ASSERT_TRUE(wal->Commit().ok());
    ASSERT_TRUE(wal->Commit().ok());  // drained, writes nothing again
  }
  auto reopened = Wal::Open(storage_.get(), "wal", kLen);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  CapturingIndex index;
  auto raw = core::RawSeriesStore::OpenTruncated(storage_.get(), "raw", kLen,
                                                 0);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  WalRecoverOutcome outcome;
  ASSERT_TRUE(
      reopened.value()->Recover(&index, raw.value().get(), &outcome).ok());
  ASSERT_EQ(index.entries.size(), 1u);
  ExpectBitwiseEqual(index.entries[0].values, big);
  EXPECT_EQ(index.restored_watermark, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(outcome.watermark, 42);
}

TEST_F(WalTempDir, RandomizedAppendCommitReplayEquivalence) {
  // Fuzz the batch structure: random interleavings of admits, holes and
  // maps across random commit boundaries must replay to exactly the
  // logged sequence.
  constexpr uint32_t kLen = 8;
  Rng rng(20260808);
  struct Op {
    int kind;  // 0 admit, 1 hole, 2 map
    uint64_t value;
    std::vector<float> values;
  };
  std::vector<Op> ops;
  {
    auto opened = Wal::Open(storage_.get(), "wal", kLen);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Wal> wal = opened.TakeValue();
    uint64_t ordinal = 0;
    int64_t ts = 0;
    for (int i = 0; i < 200; ++i) {
      const int kind = static_cast<int>(rng.NextUint64() % 3);
      if (kind == 0) {
        std::vector<float> values(kLen);
        for (float& v : values) {
          v = static_cast<float>(rng.NextGaussian());
        }
        ts += static_cast<int64_t>(rng.NextUint64() % 5);
        wal->AppendAdmit(ordinal, ts, values);
        ops.push_back(Op{0, ordinal, values});
        ++ordinal;
      } else if (kind == 1) {
        wal->AppendHole();
        ops.push_back(Op{1, ordinal, {}});
        ++ordinal;
      } else {
        const uint64_t global = rng.NextUint64() % 10000;
        wal->AppendMap(global);
        ops.push_back(Op{2, global, {}});
      }
      if (rng.NextUint64() % 7 == 0) {
        ASSERT_TRUE(wal->Commit().ok());
      }
    }
    ASSERT_TRUE(wal->Commit().ok());
  }
  auto reopened = Wal::Open(storage_.get(), "wal", kLen);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  CapturingIndex index;
  auto raw = core::RawSeriesStore::OpenTruncated(storage_.get(), "raw", kLen,
                                                 0);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  WalRecoverOutcome outcome;
  ASSERT_TRUE(
      reopened.value()->Recover(&index, raw.value().get(), &outcome).ok());

  size_t admit_at = 0;
  std::vector<uint64_t> maps;
  uint64_t ordinals = 0;
  for (const Op& op : ops) {
    if (op.kind == 0) {
      ASSERT_LT(admit_at, index.entries.size());
      EXPECT_EQ(index.entries[admit_at].id, op.value);
      ExpectBitwiseEqual(index.entries[admit_at].values, op.values);
      ++admit_at;
      ++ordinals;
    } else if (op.kind == 1) {
      ++ordinals;
    } else {
      maps.push_back(op.value);
    }
  }
  EXPECT_EQ(index.entries.size(), admit_at);
  EXPECT_EQ(outcome.ordinals, ordinals);
  EXPECT_EQ(outcome.local_to_global, maps);
}

}  // namespace
}  // namespace stream
}  // namespace coconut
