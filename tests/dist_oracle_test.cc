// Distributed-equivalence oracle: a dist::Coordinator fanned out over N
// real shard-server HTTP processes must answer every query bit-for-bit
// like a single-process service running the sharded wrappers with the
// same N — same match, same distance, same counters, same timestamps,
// same errors. The shard servers here are in-process HttpServer
// instances over independent api::Service roots (real sockets, real JSON
// and binary frames on the wire — everything but the process boundary),
// so the whole suite also runs under TSan.
//
// Covered: static builds and streaming ingest, exact and approximate
// search, window queries, kStrict/kClamp watermark semantics, JSON and
// binary ingest framing, query batches, and a concurrent-ingest run
// compared at quiesce points.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/service_endpoint.h"
#include "palm/api.h"
#include "palm/http_server.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace dist {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 32, .num_segments = 8,
                           .bits_per_segment = 8};
}

VariantSpec TestSpec(size_t num_shards, bool streaming) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = IndexFamily::kCTree;
  spec.num_shards = num_shards;
  if (streaming) {
    spec.mode = StreamMode::kTP;
    spec.buffer_entries = 16;  // small: drains seal real partitions
    // Sharded streaming requires async ingest (each shard's cascades run
    // on their own strand); use it at every K so all cells compare like
    // for like.
    spec.async_ingest = true;
  }
  return spec;
}

/// One in-process shard server: a complete Palm service behind a real
/// HTTP listener, indistinguishable on the wire from palm_shardd.
struct Shard {
  std::unique_ptr<api::Service> service;
  std::unique_ptr<ServiceEndpoint> endpoint;
  std::unique_ptr<HttpServer> server;
};

class Cluster {
 public:
  /// Builds K shard servers, a coordinator over them, and the
  /// single-process reference service the coordinator is pinned against.
  Cluster(size_t k, const std::string& root, bool binary_ingest = true) {
    for (size_t s = 0; s < k; ++s) {
      auto shard = std::make_unique<Shard>();
      const std::string shard_root = root + "/shard" + std::to_string(s);
      std::filesystem::create_directories(shard_root);
      shard->service = api::Service::Create(shard_root).TakeValue();
      shard->endpoint =
          std::make_unique<ServiceEndpoint>(shard->service.get());
      shard->server =
          HttpServer::Start(shard->endpoint.get(), {}).TakeValue();
      shards_.push_back(std::move(shard));
    }
    CoordinatorOptions options;
    for (const auto& shard : shards_) {
      options.shards.push_back(
          ShardEndpoint{"127.0.0.1", shard->server->port()});
    }
    options.binary_ingest = binary_ingest;
    coordinator_ = Coordinator::Create(std::move(options)).TakeValue();

    const std::string ref_root = root + "/reference";
    std::filesystem::create_directories(ref_root);
    reference_ = api::Service::Create(ref_root).TakeValue();
  }

  Coordinator& coordinator() { return *coordinator_; }
  api::Service& reference() { return *reference_; }

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<api::Service> reference_;
};

std::string TestRoot(const std::string& name) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "coconut_dist_oracle" / name)
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  return root;
}

/// The exactness pin: both sides answer, and every semantically
/// meaningful field must match bit-for-bit (`seconds` and `io` are
/// wall-clock/process-local and excluded). `compare_counters` is off for
/// sweeps against an un-drained async stream: the match itself is
/// deterministic (searches see every admitted entry), but how many
/// partitions exist yet depends on background seal timing.
void ExpectSameAnswer(Cluster& cluster, const api::QueryRequest& request,
                      const std::string& what, bool compare_counters = true) {
  auto dist_result = cluster.coordinator().Query(request);
  auto ref_result = cluster.reference().Query(request);
  ASSERT_EQ(dist_result.ok(), ref_result.ok())
      << what << ": dist="
      << (dist_result.ok() ? "ok" : dist_result.status().ToString())
      << " ref=" << (ref_result.ok() ? "ok" : ref_result.status().ToString());
  if (!dist_result.ok()) {
    EXPECT_EQ(dist_result.status().code(), ref_result.status().code()) << what;
    EXPECT_EQ(dist_result.status().message(), ref_result.status().message())
        << what;
    return;
  }
  const api::QueryReport& dist = dist_result.value();
  const api::QueryReport& ref = ref_result.value();
  EXPECT_EQ(dist.found, ref.found) << what;
  if (dist.found && ref.found) {
    EXPECT_EQ(dist.series_id, ref.series_id) << what;
    EXPECT_EQ(dist.distance, ref.distance) << what;  // bit-for-bit double
    EXPECT_EQ(dist.timestamp, ref.timestamp) << what;
  }
  if (!compare_counters) {
    EXPECT_FALSE(dist.degraded) << what;
    return;
  }
  EXPECT_EQ(dist.counters.leaves_visited, ref.counters.leaves_visited) << what;
  EXPECT_EQ(dist.counters.leaves_pruned, ref.counters.leaves_pruned) << what;
  EXPECT_EQ(dist.counters.entries_examined, ref.counters.entries_examined)
      << what;
  EXPECT_EQ(dist.counters.raw_fetches, ref.counters.raw_fetches) << what;
  EXPECT_EQ(dist.counters.partitions_visited, ref.counters.partitions_visited)
      << what;
  EXPECT_EQ(dist.counters.partitions_skipped, ref.counters.partitions_skipped)
      << what;
  EXPECT_FALSE(dist.degraded) << what;
}

void QuerySweep(Cluster& cluster, const std::string& index,
                const series::SeriesCollection& data, size_t num_queries,
                uint64_t seed, const std::string& what,
                bool compare_counters = true) {
  for (size_t q = 0; q < num_queries; ++q) {
    api::QueryRequest request;
    request.index = index;
    request.query = testutil::NoisyCopy(data, q % data.size(), 0.3, seed + q);
    request.exact = (q % 2 == 0);
    request.approx_candidates = 1 + static_cast<int>(q % 7);
    if (q % 3 == 2) {
      request.window = core::TimeWindow{
          static_cast<int64_t>(q), static_cast<int64_t>(q + data.size() / 2)};
    }
    ExpectSameAnswer(cluster, request,
                     what + " query " + std::to_string(q) +
                         (request.exact ? " exact" : " approx"),
                     compare_counters);
  }
}

class DistOracleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DistOracleTest, StaticBuildMatchesSingleProcess) {
  const size_t k = GetParam();
  const std::string root = TestRoot("static" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(400, 32, /*seed=*/k);

  // Register + build through both front doors; the reports must agree on
  // everything that is not wall-clock or io-path dependent.
  api::RegisterDatasetRequest reg;
  reg.name = "walks";
  reg.data = data;
  auto dist_reg = cluster.coordinator().RegisterDataset(reg);
  ASSERT_TRUE(dist_reg.ok()) << dist_reg.status().ToString();
  auto ref_reg = cluster.reference().RegisterDataset("walks", data, nullptr);
  ASSERT_TRUE(ref_reg.ok()) << ref_reg.status().ToString();

  api::BuildIndexRequest build;
  build.index = "idx";
  build.dataset = "walks";
  build.spec = TestSpec(k, /*streaming=*/false);
  auto dist_build = cluster.coordinator().BuildIndex(build);
  ASSERT_TRUE(dist_build.ok()) << dist_build.status().ToString();
  auto ref_build = cluster.reference().BuildIndex(build);
  ASSERT_TRUE(ref_build.ok()) << ref_build.status().ToString();
  EXPECT_EQ(dist_build.value().entries, ref_build.value().entries);
  EXPECT_EQ(dist_build.value().shards, ref_build.value().shards);

  QuerySweep(cluster, "idx", data, 40, /*seed=*/1000 + k, "static");

  // Duplicate names and unknown indexes refuse identically.
  auto dup = cluster.coordinator().BuildIndex(build);
  auto ref_dup = cluster.reference().BuildIndex(build);
  ASSERT_FALSE(dup.ok());
  ASSERT_FALSE(ref_dup.ok());
  EXPECT_EQ(dup.status().message(), ref_dup.status().message());
}

TEST_P(DistOracleTest, StreamingLockstepMatchesSingleProcess) {
  const size_t k = GetParam();
  const std::string root = TestRoot("stream" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(300, 32, /*seed=*/7 * k);

  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());

  // Ingest in lockstep batches, comparing the folded reports and a query
  // sweep at each quiesce point (mid-stream with live buffers, then
  // after a full drain).
  const size_t batch_size = 50;
  for (size_t begin = 0; begin < data.size(); begin += batch_size) {
    api::IngestBatchRequest ingest;
    ingest.stream = "live";
    ingest.batch = series::SeriesCollection(32);
    for (size_t i = begin; i < begin + batch_size && i < data.size(); ++i) {
      ingest.batch.Append(data[i]);
      ingest.timestamps.push_back(static_cast<int64_t>(i));
    }
    auto dist_report = cluster.coordinator().IngestBatch(ingest);
    ASSERT_TRUE(dist_report.ok()) << dist_report.status().ToString();
    auto ref_report = cluster.reference().IngestBatch(ingest);
    ASSERT_TRUE(ref_report.ok()) << ref_report.status().ToString();
    // Only admission-side fields compare mid-stream: partition/buffer
    // occupancy depends on background seal timing under async ingest.
    EXPECT_EQ(dist_report.value().ingested, ref_report.value().ingested);
    EXPECT_EQ(dist_report.value().total_entries,
              ref_report.value().total_entries);
  }
  QuerySweep(cluster, "live", data, 20, /*seed=*/50 + k, "pre-drain",
             /*compare_counters=*/false);

  api::DrainStreamRequest drain;
  drain.stream = "live";
  auto dist_drain = cluster.coordinator().DrainStream(drain);
  ASSERT_TRUE(dist_drain.ok()) << dist_drain.status().ToString();
  auto ref_drain = cluster.reference().DrainStream(drain);
  ASSERT_TRUE(ref_drain.ok()) << ref_drain.status().ToString();
  EXPECT_EQ(dist_drain.value().drained, ref_drain.value().drained);
  EXPECT_EQ(dist_drain.value().total_entries,
            ref_drain.value().total_entries);
  EXPECT_EQ(dist_drain.value().buffered, ref_drain.value().buffered);
  EXPECT_EQ(dist_drain.value().partitions, ref_drain.value().partitions);

  // Post-drain everything is deterministic: same partition sets per key
  // range, so counters are part of the pin again.
  QuerySweep(cluster, "live", data, 40, /*seed=*/5000 + k, "post-drain");
}

TEST_P(DistOracleTest, JsonIngestFramingIsEquivalentToo) {
  // Same lockstep as above but with the coordinator shipping JSON
  // sub-batches — the framing must be an encoding detail, not a semantic.
  const size_t k = GetParam();
  const std::string root = TestRoot("json" + std::to_string(k));
  Cluster cluster(k, root, /*binary_ingest=*/false);
  const auto data = testutil::RandomWalkCollection(120, 32, /*seed=*/11 * k);

  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());

  api::IngestBatchRequest ingest;
  ingest.stream = "live";
  ingest.batch = data;
  for (size_t i = 0; i < data.size(); ++i) {
    ingest.timestamps.push_back(static_cast<int64_t>(i));
  }
  ASSERT_TRUE(cluster.coordinator().IngestBatch(ingest).ok());
  ASSERT_TRUE(cluster.reference().IngestBatch(ingest).ok());
  api::DrainStreamRequest drain;
  drain.stream = "live";
  ASSERT_TRUE(cluster.coordinator().DrainStream(drain).ok());
  ASSERT_TRUE(cluster.reference().DrainStream(drain).ok());

  QuerySweep(cluster, "live", data, 24, /*seed=*/123, "json-framing");
}

TEST_P(DistOracleTest, StrictPolicyRejectsIdentically) {
  const size_t k = GetParam();
  const std::string root = TestRoot("strict" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(40, 32, /*seed=*/13);

  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  create.spec.timestamp_policy = stream::TimestampPolicy::kStrict;
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());

  // Timestamps regress at position 25: both sides must admit exactly the
  // prefix, refuse with the same message, and keep answering queries
  // identically afterwards (the burned global ids must line up too, which
  // the post-rejection ingest + sweep checks).
  api::IngestBatchRequest ingest;
  ingest.stream = "live";
  ingest.batch = data;
  for (size_t i = 0; i < data.size(); ++i) {
    ingest.timestamps.push_back(i == 25 ? 3 : static_cast<int64_t>(100 + i));
  }
  auto dist_result = cluster.coordinator().IngestBatch(ingest);
  auto ref_result = cluster.reference().IngestBatch(ingest);
  ASSERT_FALSE(dist_result.ok());
  ASSERT_FALSE(ref_result.ok());
  EXPECT_EQ(dist_result.status().code(), ref_result.status().code());
  EXPECT_EQ(dist_result.status().message(), ref_result.status().message());

  api::IngestBatchRequest rest;
  rest.stream = "live";
  rest.batch = series::SeriesCollection(32);
  for (size_t i = 26; i < data.size(); ++i) {
    rest.batch.Append(data[i]);
    rest.timestamps.push_back(static_cast<int64_t>(100 + i));
  }
  auto dist_rest = cluster.coordinator().IngestBatch(rest);
  auto ref_rest = cluster.reference().IngestBatch(rest);
  ASSERT_TRUE(dist_rest.ok()) << dist_rest.status().ToString();
  ASSERT_TRUE(ref_rest.ok()) << ref_rest.status().ToString();
  EXPECT_EQ(dist_rest.value().total_entries, ref_rest.value().total_entries);

  api::DrainStreamRequest drain;
  drain.stream = "live";
  ASSERT_TRUE(cluster.coordinator().DrainStream(drain).ok());
  ASSERT_TRUE(cluster.reference().DrainStream(drain).ok());
  QuerySweep(cluster, "live", data, 20, /*seed=*/77, "post-strict-reject");
}

TEST_P(DistOracleTest, ClampPolicyClampsIdentically) {
  const size_t k = GetParam();
  const std::string root = TestRoot("clamp" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(60, 32, /*seed=*/17);

  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  create.spec.timestamp_policy = stream::TimestampPolicy::kClamp;
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());

  // Sawtooth timestamps: every other entry regresses and must be clamped
  // to the running maximum on both sides — visible through the
  // timestamps query answers report.
  api::IngestBatchRequest ingest;
  ingest.stream = "live";
  ingest.batch = data;
  for (size_t i = 0; i < data.size(); ++i) {
    ingest.timestamps.push_back(
        static_cast<int64_t>(i % 2 == 0 ? 10 * i : 10 * i - 15));
  }
  ASSERT_TRUE(cluster.coordinator().IngestBatch(ingest).ok());
  ASSERT_TRUE(cluster.reference().IngestBatch(ingest).ok());

  api::DrainStreamRequest drain;
  drain.stream = "live";
  ASSERT_TRUE(cluster.coordinator().DrainStream(drain).ok());
  ASSERT_TRUE(cluster.reference().DrainStream(drain).ok());
  QuerySweep(cluster, "live", data, 20, /*seed=*/200, "clamp");
}

TEST_P(DistOracleTest, QueryBatchMatchesSingleProcess) {
  const size_t k = GetParam();
  const std::string root = TestRoot("batch" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(150, 32, /*seed=*/31);

  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());
  api::IngestBatchRequest ingest;
  ingest.stream = "live";
  ingest.batch = data;
  for (size_t i = 0; i < data.size(); ++i) {
    ingest.timestamps.push_back(static_cast<int64_t>(i));
  }
  ASSERT_TRUE(cluster.coordinator().IngestBatch(ingest).ok());
  ASSERT_TRUE(cluster.reference().IngestBatch(ingest).ok());
  api::DrainStreamRequest drain;
  drain.stream = "live";
  ASSERT_TRUE(cluster.coordinator().DrainStream(drain).ok());
  ASSERT_TRUE(cluster.reference().DrainStream(drain).ok());

  // A mixed batch: good queries, a wrong-length query, an unknown index,
  // and (for K > 1, where the single-process reference is sharded too) a
  // heat-map request refused as NotSupported — the positional results and
  // per-entry errors must match exactly.
  api::QueryBatchRequest batch;
  for (size_t q = 0; q < 8; ++q) {
    api::QueryRequest request;
    request.index = "live";
    request.query = testutil::NoisyCopy(data, q * 3, 0.25, 400 + q);
    request.exact = (q % 2 == 0);
    batch.queries.push_back(std::move(request));
  }
  batch.queries[2].query.resize(5);  // wrong length
  batch.queries[5].index = "nope";
  if (k > 1) batch.queries[6].capture_heatmap = true;

  api::QueryBatchResponse dist = cluster.coordinator().QueryBatch(batch);
  std::vector<api::QueryRequest> ref_queries = batch.queries;
  api::QueryBatchResponse ref =
      cluster.reference().QueryBatchResponseFor(ref_queries);
  ASSERT_EQ(dist.results.size(), ref.results.size());
  for (size_t i = 0; i < dist.results.size(); ++i) {
    ASSERT_EQ(dist.results[i].ok, ref.results[i].ok) << "entry " << i;
    if (!dist.results[i].ok) {
      EXPECT_EQ(dist.results[i].error.code, ref.results[i].error.code)
          << "entry " << i;
      EXPECT_EQ(dist.results[i].error.message, ref.results[i].error.message)
          << "entry " << i;
      continue;
    }
    EXPECT_EQ(dist.results[i].report.found, ref.results[i].report.found)
        << "entry " << i;
    EXPECT_EQ(dist.results[i].report.series_id,
              ref.results[i].report.series_id)
        << "entry " << i;
    EXPECT_EQ(dist.results[i].report.distance, ref.results[i].report.distance)
        << "entry " << i;
  }
}

TEST_P(DistOracleTest, ConcurrentIngestComparesAtQuiescePoints) {
  // Queries race live ingest through the coordinator (answers are only
  // sanity-checked — they depend on timing), then everything joins,
  // drains, and the final sweep must be bit-for-bit again. Under TSan
  // this doubles as the data-race check on the id maps and watermark.
  const size_t k = GetParam();
  const std::string root = TestRoot("concurrent" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(240, 32, /*seed=*/53);

  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());

  std::atomic<bool> done{false};
  std::thread querier([&] {
    uint64_t q = 0;
    while (!done.load()) {
      api::QueryRequest request;
      request.index = "live";
      request.query = testutil::NoisyCopy(data, q % data.size(), 0.3, 900 + q);
      request.exact = (q % 2 == 0);
      auto result = cluster.coordinator().Query(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (result.value().found) {
        ASSERT_LT(result.value().series_id, data.size());
      }
      ++q;
    }
  });

  const size_t batch_size = 30;
  for (size_t begin = 0; begin < data.size(); begin += batch_size) {
    api::IngestBatchRequest ingest;
    ingest.stream = "live";
    ingest.batch = series::SeriesCollection(32);
    for (size_t i = begin; i < begin + batch_size && i < data.size(); ++i) {
      ingest.batch.Append(data[i]);
      ingest.timestamps.push_back(static_cast<int64_t>(i));
    }
    ASSERT_TRUE(cluster.coordinator().IngestBatch(ingest).ok());
    ASSERT_TRUE(cluster.reference().IngestBatch(ingest).ok());
  }
  done.store(true);
  querier.join();

  api::DrainStreamRequest drain;
  drain.stream = "live";
  ASSERT_TRUE(cluster.coordinator().DrainStream(drain).ok());
  ASSERT_TRUE(cluster.reference().DrainStream(drain).ok());
  QuerySweep(cluster, "live", data, 30, /*seed=*/777, "quiesced");
}

TEST_P(DistOracleTest, ValidationErrorsMirrorTheService) {
  const size_t k = GetParam();
  const std::string root = TestRoot("validate" + std::to_string(k));
  Cluster cluster(k, root);
  const auto data = testutil::RandomWalkCollection(50, 32, /*seed=*/3);
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec(k, /*streaming=*/true);
  ASSERT_TRUE(cluster.coordinator().CreateStream(create).ok());
  ASSERT_TRUE(cluster.reference().CreateStream(create).ok());

  const auto expect_same_error = [&](const api::QueryRequest& request,
                                     const std::string& what) {
    auto dist_result = cluster.coordinator().Query(request);
    auto ref_result = cluster.reference().Query(request);
    ASSERT_FALSE(dist_result.ok()) << what;
    ASSERT_FALSE(ref_result.ok()) << what;
    EXPECT_EQ(dist_result.status().code(), ref_result.status().code()) << what;
    EXPECT_EQ(dist_result.status().message(), ref_result.status().message())
        << what;
  };

  api::QueryRequest request;
  request.index = "live";
  expect_same_error(request, "empty query");
  request.query.assign(5, 0.5f);
  expect_same_error(request, "wrong length");
  request.query.assign(32, 0.5f);
  request.approx_candidates = 0;
  expect_same_error(request, "bad candidates");
  request.approx_candidates = 4;
  request.window = core::TimeWindow{10, 3};
  expect_same_error(request, "inverted window");
  request.window.reset();
  request.capture_heatmap = true;
  request.heatmap_time_bins = 0;
  expect_same_error(request, "zero bins");
  request.heatmap_time_bins = 5000;
  expect_same_error(request, "oversized bins");
  request.heatmap_time_bins = 16;
  if (k > 1) {
    // The single-process reference is sharded too, so both refuse.
    expect_same_error(request, "heatmap on sharded");
  } else {
    // Documented divergence: a 1-shard single-process service captures
    // heat maps, but a distributed deployment never does (the answer is
    // folded across processes). The refusal must still be structured.
    auto dist_result = cluster.coordinator().Query(request);
    ASSERT_FALSE(dist_result.ok());
    EXPECT_EQ(dist_result.status().code(), StatusCode::kNotSupported);
  }

  // Ingest validation parity.
  api::IngestBatchRequest ingest;
  ingest.stream = "live";
  ingest.batch = testutil::RandomWalkCollection(3, 32, 1);
  ingest.timestamps = {1, 2};  // one short
  auto dist_result = cluster.coordinator().IngestBatch(ingest);
  auto ref_result = cluster.reference().IngestBatch(ingest);
  ASSERT_FALSE(dist_result.ok());
  ASSERT_FALSE(ref_result.ok());
  EXPECT_EQ(dist_result.status().message(), ref_result.status().message());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, DistOracleTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace dist
}  // namespace palm
}  // namespace coconut
