// Direct tests of the SeqTable k-way merge primitive (BTP's consolidation
// engine): completeness, ordering, payload fidelity and I/O behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "seqtable/merge.h"
#include "tests/test_util.h"

namespace coconut {
namespace seqtable {
namespace {

using core::IndexEntry;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("merge_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  // Builds a table over collection[begin, end) with timestamps = ordinals.
  std::unique_ptr<SeqTable> BuildSlice(
      const series::SeriesCollection& collection, size_t begin, size_t end,
      bool materialized, const std::string& name) {
    struct Rec {
      IndexEntry entry;
      size_t ordinal;
    };
    std::vector<Rec> recs;
    SeqTableOptions opts{.sax = TestSax(), .materialized = materialized};
    for (size_t i = begin; i < end; ++i) {
      IndexEntry e;
      e.key = series::InterleaveSax(series::ComputeSax(collection[i], opts.sax),
                                    opts.sax);
      e.series_id = i;
      e.timestamp = static_cast<int64_t>(i);
      recs.push_back({e, i});
    }
    std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
      return core::EntryKeyLess()(a.entry, b.entry);
    });
    auto builder = SeqTableBuilder::Create(mgr_.get(), name, opts).TakeValue();
    for (const auto& rec : recs) {
      std::span<const float> payload;
      if (materialized) payload = collection[rec.ordinal];
      EXPECT_TRUE(builder->Add(rec.entry, payload).ok());
    }
    EXPECT_TRUE(builder->Finish().ok());
    return SeqTable::Open(mgr_.get(), name, nullptr).TakeValue();
  }

  std::unique_ptr<storage::StorageManager> mgr_;
};

TEST_F(MergeTest, ThreeWayMergeIsSortedAndComplete) {
  auto collection = testutil::RandomWalkCollection(600, 64, 1);
  auto a = BuildSlice(collection, 0, 200, false, "a");
  auto b = BuildSlice(collection, 200, 400, false, "b");
  auto c = BuildSlice(collection, 400, 600, false, "c");

  auto merged =
      MergeTables(mgr_.get(), "merged", {.sax = TestSax()},
                  {a.get(), b.get(), c.get()}, nullptr)
          .TakeValue();
  EXPECT_EQ(merged->num_entries(), 600u);
  // Time range is the union of the inputs'.
  EXPECT_EQ(merged->min_timestamp(), 0);
  EXPECT_EQ(merged->max_timestamp(), 599);

  auto scanner = merged->NewScanner();
  IndexEntry entry;
  series::SortableKey prev = series::SortableKey::Min();
  std::vector<bool> seen(600, false);
  size_t count = 0;
  while (true) {
    auto has = scanner.Next(&entry, nullptr);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, entry.key);
    prev = entry.key;
    ASSERT_LT(entry.series_id, 600u);
    EXPECT_FALSE(seen[entry.series_id]);
    seen[entry.series_id] = true;
    ++count;
  }
  EXPECT_EQ(count, 600u);
}

TEST_F(MergeTest, MaterializedPayloadsSurviveMerge) {
  auto collection = testutil::RandomWalkCollection(200, 64, 2);
  auto a = BuildSlice(collection, 0, 100, true, "a");
  auto b = BuildSlice(collection, 100, 200, true, "b");
  auto merged = MergeTables(mgr_.get(), "merged",
                            {.sax = TestSax(), .materialized = true},
                            {a.get(), b.get()}, nullptr)
                    .TakeValue();
  auto scanner = merged->NewScanner();
  IndexEntry entry;
  std::vector<float> payload;
  size_t checked = 0;
  while (true) {
    auto has = scanner.Next(&entry, &payload);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    ASSERT_EQ(payload.size(), 64u);
    for (size_t j = 0; j < 64; ++j) {
      EXPECT_EQ(payload[j], collection[entry.series_id][j]);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 200u);
}

TEST_F(MergeTest, SingleInputCopies) {
  auto collection = testutil::RandomWalkCollection(150, 64, 3);
  auto a = BuildSlice(collection, 0, 150, false, "a");
  auto merged = MergeTables(mgr_.get(), "merged", {.sax = TestSax()},
                            {a.get()}, nullptr)
                    .TakeValue();
  EXPECT_EQ(merged->num_entries(), 150u);
}

TEST_F(MergeTest, NoInputsProducesEmptyTable) {
  auto merged =
      MergeTables(mgr_.get(), "merged", {.sax = TestSax()}, {}, nullptr)
          .TakeValue();
  EXPECT_EQ(merged->num_entries(), 0u);
  EXPECT_EQ(merged->num_leaves(), 0u);
}

TEST_F(MergeTest, MergeWritesAreSequentialDominated) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 4);
  auto a = BuildSlice(collection, 0, 500, false, "a");
  auto b = BuildSlice(collection, 500, 1000, false, "b");
  mgr_->io_stats()->Reset();
  auto merged = MergeTables(mgr_.get(), "merged", {.sax = TestSax()},
                            {a.get(), b.get()}, nullptr)
                    .TakeValue();
  const auto& io = *mgr_->io_stats();
  // Output is one file appended front to back: at most the initial
  // file-switch seek is random.
  EXPECT_LE(io.random_writes, 1u);
  EXPECT_GT(io.sequential_writes, 5u);
}

}  // namespace
}  // namespace seqtable
}  // namespace coconut
