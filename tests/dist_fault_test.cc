// Failure-mode tests for the distributed layer: a SIGKILLed shard
// process, a stalled (accepting-but-silent) shard, a torn binary frame,
// and a shard that refuses at the application level must all surface as
// STRUCTURED errors naming the culprit — never wrong answers, never
// hangs. Degraded-read mode must serve the surviving key ranges and mark
// the answers; health must show up in server_stats.
//
// Most cases run against in-process shard servers (HttpServer::Stop()
// gives the same connection-refused the coordinator sees after a crash)
// so they execute under TSan too; the one true SIGKILL-mid-traffic case
// forks a real shard process and is skipped under TSan (fork + sanitizer
// runtime don't mix).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/binary_codec.h"
#include "dist/coordinator.h"
#include "dist/service_endpoint.h"
#include "palm/api.h"
#include "palm/http_client.h"
#include "palm/http_server.h"
#include "tests/test_util.h"

#if defined(__SANITIZE_THREAD__)
#define COCONUT_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COCONUT_TSAN_BUILD 1
#endif
#endif

namespace coconut {
namespace palm {
namespace dist {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 16, .num_segments = 4,
                           .bits_per_segment = 8};
}

VariantSpec StreamSpec(size_t num_shards) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = IndexFamily::kCTree;
  spec.mode = StreamMode::kTP;
  spec.buffer_entries = 16;
  spec.num_shards = num_shards;
  if (num_shards > 1) spec.async_ingest = true;
  return spec;
}

struct Shard {
  std::unique_ptr<api::Service> service;
  std::unique_ptr<ServiceEndpoint> endpoint;
  std::unique_ptr<HttpServer> server;
};

std::string TestRoot(const std::string& name) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "coconut_dist_fault" / name)
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  return root;
}

std::unique_ptr<Shard> StartShard(const std::string& root) {
  auto shard = std::make_unique<Shard>();
  std::filesystem::create_directories(root);
  shard->service = api::Service::Create(root).TakeValue();
  shard->endpoint = std::make_unique<ServiceEndpoint>(shard->service.get());
  shard->server = HttpServer::Start(shard->endpoint.get(), {}).TakeValue();
  return shard;
}

api::IngestBatchRequest MakeBatch(const series::SeriesCollection& data,
                                  size_t begin, size_t count,
                                  const std::string& stream = "live") {
  api::IngestBatchRequest ingest;
  ingest.stream = stream;
  ingest.batch = series::SeriesCollection(data.length());
  for (size_t i = begin; i < begin + count && i < data.size(); ++i) {
    ingest.batch.Append(data[i]);
    ingest.timestamps.push_back(static_cast<int64_t>(i));
  }
  return ingest;
}

TEST(DistFaultTest, DeadShardFailsReadsWithStructured503ByDefault) {
  const std::string root = TestRoot("dead_default");
  std::vector<std::unique_ptr<Shard>> shards;
  CoordinatorOptions options;
  for (size_t s = 0; s < 3; ++s) {
    shards.push_back(StartShard(root + "/shard" + std::to_string(s)));
    options.shards.push_back(
        ShardEndpoint{"127.0.0.1", shards.back()->server->port()});
  }
  options.client.connect_timeout_ms = 500;
  options.client.request_timeout_ms = 2000;
  const std::string dead_endpoint = options.shards[1].ToString();
  auto coordinator = Coordinator::Create(std::move(options)).TakeValue();

  const auto data = testutil::RandomWalkCollection(90, 16, /*seed=*/1);
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = StreamSpec(3);
  ASSERT_TRUE(coordinator->CreateStream(create).ok());
  ASSERT_TRUE(coordinator->IngestBatch(MakeBatch(data, 0, 90)).ok());

  // "Kill" shard 1: Stop() closes the listener, so the coordinator sees
  // exactly what a crashed process leaves behind — connection refused.
  shards[1]->server->Stop();

  api::QueryRequest query;
  query.index = "live";
  query.query = testutil::NoisyCopy(data, 3, 0.2, 42);
  auto result = coordinator->Query(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find(dead_endpoint), std::string::npos)
      << result.status().message();

  // Health shows the culprit; the survivors stay green.
  const api::ServerStatsResponse stats = coordinator->ServerStats();
  ASSERT_EQ(stats.shards.size(), 3u);
  EXPECT_TRUE(stats.shards[0].healthy);
  EXPECT_FALSE(stats.shards[1].healthy);
  EXPECT_TRUE(stats.shards[2].healthy);
  EXPECT_GT(stats.shards[1].consecutive_failures, 0u);
}

TEST(DistFaultTest, DegradedReadsServeSurvivingRangesAndMarkAnswers) {
  const std::string root = TestRoot("degraded");
  std::vector<std::unique_ptr<Shard>> shards;
  CoordinatorOptions options;
  for (size_t s = 0; s < 3; ++s) {
    shards.push_back(StartShard(root + "/shard" + std::to_string(s)));
    options.shards.push_back(
        ShardEndpoint{"127.0.0.1", shards.back()->server->port()});
  }
  options.client.connect_timeout_ms = 500;
  options.client.request_timeout_ms = 2000;
  options.degraded_reads = true;
  auto coordinator = Coordinator::Create(std::move(options)).TakeValue();

  const auto data = testutil::RandomWalkCollection(120, 16, /*seed=*/2);
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = StreamSpec(3);
  ASSERT_TRUE(coordinator->CreateStream(create).ok());
  ASSERT_TRUE(coordinator->IngestBatch(MakeBatch(data, 0, 120)).ok());

  // Baseline answers while everyone is up, for every probe we re-ask
  // after the kill: un-degraded, and definitely not wrong later.
  std::vector<api::QueryRequest> probes;
  std::vector<api::QueryReport> baseline;
  for (size_t q = 0; q < 12; ++q) {
    api::QueryRequest query;
    query.index = "live";
    query.query = testutil::NoisyCopy(data, q * 7, 0.2, 300 + q);
    auto result = coordinator->Query(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result.value().degraded);
    probes.push_back(query);
    baseline.push_back(result.value());
  }

  shards[2]->server->Stop();

  // Degraded answers must be marked, and must be a SUBSET answer: either
  // the same match as the full answer (its shard survived) or a
  // different-but-valid match from the surviving ranges — never a bogus
  // id, never silently un-marked.
  size_t still_best = 0;
  for (size_t q = 0; q < probes.size(); ++q) {
    auto result = coordinator->Query(probes[q]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().degraded);
    if (result.value().found) {
      EXPECT_LT(result.value().series_id, data.size());
      EXPECT_GE(result.value().distance, baseline[q].distance)
          << "a degraded answer can never beat the full-cluster answer";
      if (result.value().series_id == baseline[q].series_id) ++still_best;
    }
  }
  // With 3 roughly balanced shards, most matches live on survivors.
  EXPECT_GT(still_best, 0u);

  // Writes are NOT degraded-tolerant: ingest through a dead shard is a
  // structured unavailable warning about partial application.
  auto ingest = coordinator->IngestBatch(MakeBatch(data, 0, 30));
  ASSERT_FALSE(ingest.ok());
  EXPECT_EQ(ingest.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(ingest.status().message().find("partially applied"),
            std::string::npos)
      << ingest.status().message();
}

TEST(DistFaultTest, AllShardsDownStillStructuredUnderDegradedReads) {
  const std::string root = TestRoot("all_down");
  auto shard = StartShard(root + "/shard0");
  CoordinatorOptions options;
  options.shards.push_back(ShardEndpoint{"127.0.0.1", shard->server->port()});
  options.client.connect_timeout_ms = 300;
  options.client.request_timeout_ms = 1000;
  options.degraded_reads = true;
  auto coordinator = Coordinator::Create(std::move(options)).TakeValue();

  const auto data = testutil::RandomWalkCollection(20, 16, /*seed=*/3);
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = StreamSpec(1);
  ASSERT_TRUE(coordinator->CreateStream(create).ok());
  ASSERT_TRUE(coordinator->IngestBatch(MakeBatch(data, 0, 20)).ok());
  shard->server->Stop();

  api::QueryRequest query;
  query.index = "live";
  query.query = testutil::NoisyCopy(data, 0, 0.2, 9);
  auto result = coordinator->Query(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(DistFaultTest, StalledShardTimesOutAsUnavailable) {
  // A shard that accepts the connection and then goes silent (wedged
  // process, partitioned network) must trip the request timeout, not
  // hang the coordinator forever.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const uint16_t stalled_port = ntohs(addr.sin_port);

  ShardClientOptions client_options;
  client_options.connect_timeout_ms = 500;
  client_options.request_timeout_ms = 300;
  ShardClient client(ShardEndpoint{"127.0.0.1", stalled_port},
                     client_options);
  const auto before = std::chrono::steady_clock::now();
  auto result = client.Call("server_stats", "{}", /*idempotent=*/true);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("127.0.0.1"), std::string::npos);
  // Bounded: one attempt + one retry, well under a second each.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  EXPECT_FALSE(client.health().healthy);
  ::close(listen_fd);
}

TEST(DistFaultTest, TornAndMislabeledBinaryFramesAreStructuredErrors) {
  // Straight to a real shard server over the wire: a truncated frame, a
  // corrupted frame, and a frame without the negotiated Content-Type
  // must each produce a structured 400 — and a well-formed retry right
  // after must succeed (the connection survives, nothing got applied).
  const std::string root = TestRoot("torn");
  auto shard = StartShard(root + "/shard0");
  ASSERT_TRUE(shard->service
                  ->CreateStream("live", StreamSpec(1))
                  .ok());

  const auto data = testutil::RandomWalkCollection(8, 16, /*seed=*/5);
  const std::string frame = EncodeIngestFrame(MakeBatch(data, 0, 8));
  BlockingHttpClient client("127.0.0.1", shard->server->port());
  const std::vector<std::pair<std::string, std::string>> bin_headers = {
      {"Content-Type", std::string(kBinaryIngestContentType)}};

  // Torn mid-frame (half the bytes lost in flight).
  auto torn = client.Post("/api/v1/ingest_batch_bin",
                          frame.substr(0, frame.size() / 2), bin_headers);
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ(torn.value().status, 400);
  EXPECT_NE(torn.value().body.find("binary ingest frame"),
            std::string::npos)
      << torn.value().body;

  // Bit flip in the payload: CRC catches it.
  std::string corrupt = frame;
  corrupt[corrupt.size() / 2] ^= 0x10;
  auto flipped =
      client.Post("/api/v1/ingest_batch_bin", corrupt, bin_headers);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_EQ(flipped.value().status, 400);

  // Valid frame, wrong Content-Type: refused by negotiation, with the
  // expected type named.
  auto mislabeled = client.Post("/api/v1/ingest_batch_bin", frame,
                                {{"Content-Type", "application/json"}});
  ASSERT_TRUE(mislabeled.ok()) << mislabeled.status().ToString();
  EXPECT_EQ(mislabeled.value().status, 400);
  EXPECT_NE(mislabeled.value().body.find(kBinaryIngestContentType),
            std::string::npos)
      << mislabeled.value().body;

  // Nothing was applied by the three failures, and the channel still
  // works: the clean frame ingests all 8.
  auto clean = client.Post("/api/v1/ingest_batch_bin", frame, bin_headers);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value().status, 200);
  EXPECT_NE(clean.value().body.find("\"ingested\":8"), std::string::npos)
      << clean.value().body;
}

TEST(DistFaultTest, CoordinatorRecontactsRestartedShard) {
  // A shard that went away and came back (new process, same endpoint)
  // must be reachable again through the same ShardClient: the retry
  // reconnects from scratch for idempotent calls.
  const std::string root = TestRoot("restart");
  auto shard = StartShard(root + "/shard0");
  const uint16_t port = shard->server->port();

  CoordinatorOptions options;
  options.shards.push_back(ShardEndpoint{"127.0.0.1", port});
  options.client.connect_timeout_ms = 500;
  options.client.request_timeout_ms = 2000;
  auto coordinator = Coordinator::Create(std::move(options)).TakeValue();

  const auto data = testutil::RandomWalkCollection(30, 16, /*seed=*/8);
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = StreamSpec(1);
  ASSERT_TRUE(coordinator->CreateStream(create).ok());
  ASSERT_TRUE(coordinator->IngestBatch(MakeBatch(data, 0, 30)).ok());
  api::QueryRequest query;
  query.index = "live";
  query.query = testutil::NoisyCopy(data, 4, 0.2, 77);
  ASSERT_TRUE(coordinator->Query(query).ok());

  // Bounce the shard on the same port. Its in-memory state is gone — the
  // restarted server has no 'live' stream, so the coordinator must relay
  // the shard's structured NotFound (a wrong answer or a hang would mean
  // the stale connection was reused badly).
  shard->server->Stop();
  shard = StartShard(root + "/shard0_reborn");
  HttpServerOptions reuse;
  reuse.port = port;
  auto reborn = HttpServer::Start(shard->endpoint.get(), reuse);
  if (!reborn.ok()) {
    GTEST_SKIP() << "could not rebind port " << port << ": "
                 << reborn.status().ToString();
  }
  shard->server->Stop();
  shard->server = reborn.TakeValue();

  auto after = coordinator->Query(query);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
  EXPECT_NE(after.status().message().find("live"), std::string::npos);
  EXPECT_TRUE(coordinator->ServerStats().shards[0].healthy);
}

#ifndef COCONUT_TSAN_BUILD

TEST(DistFaultTest, SigkilledShardProcessMidTrafficIsStructured) {
  // The real thing: a forked shard PROCESS serving real sockets gets
  // SIGKILLed between batches. The coordinator must (a) report the
  // structured unavailable naming it, (b) keep serving once configured
  // for degraded reads — and at no point return a wrong answer.
  const std::string root = TestRoot("sigkill");

  // Shard 0 lives in this process; shard 1 is the victim child.
  auto local = StartShard(root + "/shard0");

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: a complete shard server. _exit on any failure; the parent
    // sees a port of 0 and fails the test. Threads don't survive fork,
    // so everything is created post-fork.
    ::close(port_pipe[0]);
    uint16_t port = 0;
    auto service_result = api::Service::Create(root + "/shard1");
    if (service_result.ok()) {
      auto service = service_result.TakeValue();
      ServiceEndpoint endpoint(service.get());
      auto server_result = HttpServer::Start(&endpoint, {});
      if (server_result.ok()) {
        auto server = server_result.TakeValue();
        port = server->port();
        (void)!::write(port_pipe[1], &port, sizeof(port));
        ::close(port_pipe[1]);
        ::pause();  // serve until SIGKILL
        _exit(0);
      }
    }
    (void)!::write(port_pipe[1], &port, sizeof(port));
    _exit(1);
  }
  ::close(port_pipe[1]);
  uint16_t child_port = 0;
  ASSERT_EQ(::read(port_pipe[0], &child_port, sizeof(child_port)),
            static_cast<ssize_t>(sizeof(child_port)));
  ::close(port_pipe[0]);
  ASSERT_NE(child_port, 0);

  CoordinatorOptions options;
  options.shards.push_back(ShardEndpoint{"127.0.0.1", local->server->port()});
  options.shards.push_back(ShardEndpoint{"127.0.0.1", child_port});
  options.client.connect_timeout_ms = 500;
  options.client.request_timeout_ms = 2000;
  options.degraded_reads = true;
  const std::string victim = options.shards[1].ToString();
  auto coordinator = Coordinator::Create(std::move(options)).TakeValue();

  const auto data = testutil::RandomWalkCollection(100, 16, /*seed=*/21);
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = StreamSpec(2);
  ASSERT_TRUE(coordinator->CreateStream(create).ok());
  ASSERT_TRUE(coordinator->IngestBatch(MakeBatch(data, 0, 50)).ok());

  // SIGKILL mid-run, between two batches the coordinator sends.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  auto ingest = coordinator->IngestBatch(MakeBatch(data, 50, 50));
  ASSERT_FALSE(ingest.ok());
  EXPECT_EQ(ingest.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(ingest.status().message().find(victim), std::string::npos)
      << ingest.status().message();
  EXPECT_NE(ingest.status().message().find("partially applied"),
            std::string::npos);

  // Degraded reads keep the surviving range answering, marked.
  api::QueryRequest query;
  query.index = "live";
  query.query = testutil::NoisyCopy(data, 10, 0.2, 99);
  auto result = coordinator->Query(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded);
  if (result.value().found) {
    EXPECT_LT(result.value().series_id, data.size());
  }

  const api::ServerStatsResponse stats = coordinator->ServerStats();
  EXPECT_TRUE(stats.shards[0].healthy);
  EXPECT_FALSE(stats.shards[1].healthy);
}

#else

TEST(DistFaultTest, SigkilledShardProcessMidTrafficIsStructured) {
  GTEST_SKIP() << "fork-based kill tests are incompatible with TSan; the "
                  "Stop()-based cases above cover the coordinator side";
}

#endif  // COCONUT_TSAN_BUILD

}  // namespace
}  // namespace dist
}  // namespace palm
}  // namespace coconut
