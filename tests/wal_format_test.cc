// Golden-fixture tests for the on-disk WAL format (stream/wal.h). The
// byte files under tests/testdata/ were emitted by
// tests/testdata/generate_wal_fixtures.cc, which builds every frame with
// its own little-endian writer and CRC — independent of Wal::EncodeFrame
// — so the assertions here pin the format from two directions: the
// current encoder must reproduce the golden bytes exactly, and the
// current decoder must read them (plus deliberately future-versioned
// logs) with the documented version-skew semantics. If one of these
// tests fails after an intentional format change, bump the WAL version
// and regenerate — never edit a fixture to match new code.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/crc32c.h"
#include "core/raw_store.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"
#include "stream/wal.h"

namespace coconut {
namespace stream {
namespace {

std::vector<uint8_t> ReadFixture(const std::string& name) {
  const std::string path = std::string(COCONUT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

uint32_t ReadLeU32(const std::vector<uint8_t>& bytes, size_t at) {
  return static_cast<uint32_t>(bytes[at]) |
         static_cast<uint32_t>(bytes[at + 1]) << 8 |
         static_cast<uint32_t>(bytes[at + 2]) << 16 |
         static_cast<uint32_t>(bytes[at + 3]) << 24;
}

/// Copies fixture bytes into a fresh storage dir as the stream's "wal"
/// file so Wal::Open scans them exactly as it would after a restart.
class FixtureLog : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/wal_format_test_" + ::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name();
    std::filesystem::remove_all(root_);
    auto storage = storage::StorageManager::Create(root_);
    ASSERT_TRUE(storage.ok()) << storage.status().ToString();
    storage_ = storage.TakeValue();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(root_);
  }

  void InstallLog(const std::vector<uint8_t>& bytes) {
    auto file = storage_->CreateFile("wal");
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE(file.value()->Append(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(file.value()->DataSync().ok());
  }

  std::string root_;
  std::unique_ptr<storage::StorageManager> storage_;
};

/// Minimal replay sink (the format tests only care about what reaches
/// the index, not about indexing).
class CapturingIndex : public StreamingIndex {
 public:
  struct Entry {
    uint64_t id;
    int64_t timestamp;
    std::vector<float> values;
  };
  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    entries.push_back(Entry{series_id, timestamp,
                            {znorm_values.begin(), znorm_values.end()}});
    return Status::OK();
  }
  Status FlushAll() override { return Status::OK(); }
  Result<core::SearchResult> ApproxSearch(std::span<const float>,
                                          const core::SearchOptions&,
                                          core::QueryCounters*) override {
    return core::SearchResult{};
  }
  Result<core::SearchResult> ExactSearch(std::span<const float>,
                                         const core::SearchOptions&,
                                         core::QueryCounters*) override {
    return core::SearchResult{};
  }
  uint64_t num_entries() const override { return entries.size(); }
  size_t num_partitions() const override { return 0; }
  uint64_t index_bytes() const override { return 0; }
  std::string describe() const override { return "capturing"; }

  std::vector<Entry> entries;
};

/// Asserts the fixed 16-byte header layout of `frame` and that the
/// stored CRC-32C matches a recomputation over header[4,12) ++ payload.
void ExpectWellFormedHeader(const std::vector<uint8_t>& frame,
                            uint8_t want_major, uint8_t want_minor,
                            uint8_t want_type, uint32_t want_payload_len) {
  ASSERT_GE(frame.size(), kWalFrameHeaderBytes);
  // Magic: the bytes "CWAL" (0x4C415743 little-endian).
  EXPECT_EQ(frame[0], 0x43);  // 'C'
  EXPECT_EQ(frame[1], 0x57);  // 'W'
  EXPECT_EQ(frame[2], 0x41);  // 'A'
  EXPECT_EQ(frame[3], 0x4C);  // 'L'
  EXPECT_EQ(ReadLeU32(frame, 0), kWalMagic);
  EXPECT_EQ(frame[4], want_major);
  EXPECT_EQ(frame[5], want_minor);
  EXPECT_EQ(frame[6], want_type);
  EXPECT_EQ(frame[7], 0) << "reserved byte must be zero";
  EXPECT_EQ(ReadLeU32(frame, 8), want_payload_len);
  ASSERT_EQ(frame.size(), kWalFrameHeaderBytes + want_payload_len);
  uint32_t crc = Crc32c(frame.data() + 4, 8);
  crc = Crc32cExtend(crc, frame.data() + kWalFrameHeaderBytes,
                     want_payload_len);
  EXPECT_EQ(ReadLeU32(frame, 12), crc);
}

TEST(WalFormat, HeaderFixtureBytes) {
  const std::vector<uint8_t> golden = ReadFixture("wal_header.bin");
  ExpectWellFormedHeader(golden, kWalVersionMajor, kWalVersionMinor,
                         /*type=*/1, /*payload_len=*/4);
  EXPECT_EQ(ReadLeU32(golden, kWalFrameHeaderBytes), 4u)
      << "stream-header payload is the u32 series length";

  // The current encoder reproduces the golden bytes exactly.
  std::vector<uint8_t> payload;
  WalPutU32(&payload, 4);
  EXPECT_EQ(Wal::EncodeFrame(WalFrameType::kStreamHeader, payload), golden);
}

TEST(WalFormat, BatchFixtureBytes) {
  const std::vector<uint8_t> golden = ReadFixture("wal_batch.bin");
  // Payload: count=3, then kMap{42}, kAdmit{id 0, ts 7, 4 floats
  // including both zeros and a quiet NaN}, kHole.
  std::vector<uint8_t> payload;
  WalPutU32(&payload, 3);
  payload.push_back(static_cast<uint8_t>(WalRecordKind::kMap));
  WalPutU64(&payload, 42);
  payload.push_back(static_cast<uint8_t>(WalRecordKind::kAdmit));
  WalPutU64(&payload, 0);
  WalPutI64(&payload, 7);
  const uint32_t float_bits[] = {0x00000000u,   // 0.0f
                                 0x80000000u,   // -0.0f
                                 0x3FC00000u,   // 1.5f
                                 0x7FC00000u};  // quiet NaN
  for (uint32_t bits : float_bits) {
    WalPutU32(&payload, bits);
  }
  payload.push_back(static_cast<uint8_t>(WalRecordKind::kHole));

  ExpectWellFormedHeader(golden, kWalVersionMajor, kWalVersionMinor,
                         /*type=*/2, static_cast<uint32_t>(payload.size()));
  EXPECT_EQ(Wal::EncodeFrame(WalFrameType::kBatch, payload), golden);

  std::vector<WalFrame> frames;
  EXPECT_EQ(Wal::DecodeFrames(golden, &frames), golden.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, WalFrameType::kBatch);
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(WalFormat, CheckpointFixtureBytes) {
  const std::vector<uint8_t> golden = ReadFixture("wal_checkpoint.bin");
  std::vector<uint8_t> payload;
  WalPutU64(&payload, 2);  // durable_entries
  WalPutU32(&payload, 3);  // manifest_len
  payload.push_back('a');
  payload.push_back('b');
  payload.push_back('c');
  ExpectWellFormedHeader(golden, kWalVersionMajor, kWalVersionMinor,
                         /*type=*/3, static_cast<uint32_t>(payload.size()));
  EXPECT_EQ(Wal::EncodeFrame(WalFrameType::kCheckpoint, payload), golden);
}

TEST(WalFormat, BaseFixtureBytes) {
  const std::vector<uint8_t> golden = ReadFixture("wal_base.bin");
  std::vector<uint8_t> payload;
  WalPutU64(&payload, 2);   // base_ordinals
  WalPutU64(&payload, 1);   // base_admitted
  WalPutI64(&payload, -5);  // watermark
  WalPutU64(&payload, 0);   // folded checkpoint durable_entries
  WalPutU32(&payload, 0);   // manifest_len (no folded checkpoint)
  WalPutU64(&payload, 2);   // map_count
  WalPutU64(&payload, 9);
  WalPutU64(&payload, 11);
  ExpectWellFormedHeader(golden, kWalVersionMajor, kWalVersionMinor,
                         /*type=*/4, static_cast<uint32_t>(payload.size()));
  EXPECT_EQ(Wal::EncodeFrame(WalFrameType::kBase, payload), golden);
}

TEST_F(FixtureLog, GoldenLogOpensAndReplays) {
  InstallLog(ReadFixture("wal_log.bin"));
  auto opened = Wal::Open(storage_.get(), "wal", 4);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Wal> wal = opened.TakeValue();
  EXPECT_EQ(wal->base_ordinals(), 0u);

  CapturingIndex index;
  auto raw = core::RawSeriesStore::OpenTruncated(storage_.get(), "raw", 4, 0);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  WalRecoverOutcome outcome;
  ASSERT_TRUE(wal->Recover(&index, raw.value().get(), &outcome).ok());

  EXPECT_EQ(outcome.ordinals, 2u);
  EXPECT_EQ(outcome.admitted, 2u);
  EXPECT_EQ(outcome.watermark, 2);
  ASSERT_EQ(index.entries.size(), 2u);
  for (uint64_t id = 0; id < 2; ++id) {
    EXPECT_EQ(index.entries[id].id, id);
    EXPECT_EQ(index.entries[id].timestamp, static_cast<int64_t>(id) + 1);
    ASSERT_EQ(index.entries[id].values.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(index.entries[id].values[i],
                static_cast<float>(id * 4 + i + 1));
    }
  }
}

TEST_F(FixtureLog, GoldenLogRejectsLengthMismatch) {
  InstallLog(ReadFixture("wal_log.bin"));
  auto opened = Wal::Open(storage_.get(), "wal", 8);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FixtureLog, FutureMinorUnknownFrameIsSkipped) {
  const std::vector<uint8_t> golden = ReadFixture("wal_future_minor.bin");

  // Decoder: the unknown type-7 frame is dropped (not surfaced, not
  // fatal), the header and the batch around it both decode, and the
  // whole file is the valid prefix.
  std::vector<WalFrame> frames;
  bool major_too_new = true;
  EXPECT_EQ(Wal::DecodeFrames(golden, &frames, &major_too_new),
            golden.size());
  EXPECT_FALSE(major_too_new);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, WalFrameType::kStreamHeader);
  EXPECT_EQ(frames[1].type, WalFrameType::kBatch);

  // Open + Recover: the admit after the unknown frame is replayed.
  InstallLog(golden);
  auto opened = Wal::Open(storage_.get(), "wal", 4);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  CapturingIndex index;
  auto raw = core::RawSeriesStore::OpenTruncated(storage_.get(), "raw", 4, 0);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  WalRecoverOutcome outcome;
  ASSERT_TRUE(
      opened.value()->Recover(&index, raw.value().get(), &outcome).ok());
  ASSERT_EQ(index.entries.size(), 1u);
  EXPECT_EQ(index.entries[0].timestamp, 3);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(index.entries[0].values[i], static_cast<float>(i) - 1.5f);
  }
}

TEST_F(FixtureLog, FutureMajorLogIsRefused) {
  const std::vector<uint8_t> golden = ReadFixture("wal_future_major.bin");

  std::vector<WalFrame> frames;
  bool major_too_new = false;
  EXPECT_EQ(Wal::DecodeFrames(golden, &frames, &major_too_new), 0u);
  EXPECT_TRUE(major_too_new);
  EXPECT_TRUE(frames.empty());

  InstallLog(golden);
  auto opened = Wal::Open(storage_.get(), "wal", 4);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotSupported)
      << opened.status().ToString();
}

TEST_F(FixtureLog, FutureMajorFrameAppendedToV1LogIsRefused) {
  // The major-2 frame after the valid v1 header is committed data from a
  // newer writer — Open must refuse, not truncate it away as a torn tail.
  const std::vector<uint8_t> golden =
      ReadFixture("wal_future_major_appended.bin");

  std::vector<WalFrame> frames;
  bool major_too_new = false;
  const size_t valid = Wal::DecodeFrames(golden, &frames, &major_too_new);
  EXPECT_TRUE(major_too_new);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, WalFrameType::kStreamHeader);
  EXPECT_LT(valid, golden.size());

  InstallLog(golden);
  auto opened = Wal::Open(storage_.get(), "wal", 4);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotSupported)
      << opened.status().ToString();

  // And the refused open left the file byte-identical (nothing truncated).
  auto file = storage_->OpenFile("wal");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value()->size_bytes(), golden.size());
}

}  // namespace
}  // namespace stream
}  // namespace coconut
