#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "series/distance.h"
#include "tests/test_util.h"
#include "workload/astronomy.h"
#include "workload/dataset_io.h"
#include "workload/generator.h"
#include "workload/seismic.h"

namespace coconut {
namespace workload {
namespace {

// ---------------------------------------------------------- random walk

TEST(RandomWalkTest, GeneratesNormalizedSeries) {
  RandomWalkGenerator gen(128, 1);
  auto collection = gen.Generate(50);
  ASSERT_EQ(collection.size(), 50u);
  for (size_t i = 0; i < collection.size(); ++i) {
    double sum = 0;
    double sum_sq = 0;
    for (float v : collection[i]) {
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(sum / 128, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / 128, 1.0, 1e-2);
  }
}

TEST(RandomWalkTest, SeedsAreReproducible) {
  RandomWalkGenerator a(64, 7);
  RandomWalkGenerator b(64, 7);
  auto ca = a.Generate(5);
  auto cb = b.Generate(5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 64; ++j) EXPECT_EQ(ca[i][j], cb[i][j]);
  }
}

TEST(RandomWalkTest, NoisyQueriesAreCloseToTheirBase) {
  RandomWalkGenerator gen(64, 3);
  auto collection = gen.Generate(100);
  auto queries = MakeNoisyQueries(collection, 10, 0.2, 5);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    auto truth = testutil::BruteForceNearest(collection, q);
    // Low noise: the nearest neighbor should be quite close.
    EXPECT_LT(std::sqrt(truth.distance_sq), 8.0);
  }
}

// ---------------------------------------------------------- astronomy

TEST(AstronomyTest, LabelsMatchRequestedFractions) {
  AstronomyGenerator::Options opts;
  opts.series_length = 128;
  opts.binary_fraction = 0.1;
  opts.supernova_fraction = 0.1;
  opts.variable_fraction = 0.1;
  AstronomyGenerator gen(opts);
  auto collection = gen.Generate(2000);
  ASSERT_EQ(gen.labels().size(), 2000u);
  size_t counts[4] = {0, 0, 0, 0};
  for (auto label : gen.labels()) ++counts[static_cast<int>(label)];
  EXPECT_NEAR(counts[1] / 2000.0, 0.1, 0.03);  // Binary.
  EXPECT_NEAR(counts[2] / 2000.0, 0.1, 0.03);  // Supernova.
  EXPECT_NEAR(counts[3] / 2000.0, 0.1, 0.03);  // Variable.
  EXPECT_GT(counts[0], 1000u);                 // Mostly noise.
}

TEST(AstronomyTest, PatternQueriesRetrieveTheirClass) {
  // The Scenario-1 premise: searching with a supernova template must find
  // series labelled supernova, not background noise.
  AstronomyGenerator::Options opts;
  opts.series_length = 128;
  opts.binary_fraction = 0.1;
  opts.supernova_fraction = 0.1;
  opts.variable_fraction = 0.1;
  opts.signal_to_noise = 8.0;
  AstronomyGenerator gen(opts);
  auto collection = gen.Generate(1500);

  for (auto cls : {AstronomyClass::kSupernova, AstronomyClass::kBinaryStar}) {
    int hits = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      auto query = gen.PatternTemplate(cls, 1000 + seed);
      auto truth = testutil::BruteForceNearest(collection, query);
      if (gen.labels()[truth.index] == cls) ++hits;
    }
    EXPECT_GE(hits, 5) << "class " << AstronomyClassName(cls);
  }
}

TEST(AstronomyTest, SeriesAreNormalized) {
  AstronomyGenerator gen({.series_length = 64});
  auto collection = gen.Generate(20);
  for (size_t i = 0; i < collection.size(); ++i) {
    double sum = 0;
    for (float v : collection[i]) sum += v;
    EXPECT_NEAR(sum / 64, 0.0, 1e-4);
  }
}

// ---------------------------------------------------------- seismic

TEST(SeismicTest, BatchesHaveMonotoneTimestamps) {
  SeismicGenerator gen({.series_length = 128, .batch_size = 64});
  int64_t prev = -1;
  for (int b = 0; b < 5; ++b) {
    auto batch = gen.NextBatch();
    ASSERT_EQ(batch.series.size(), 64u);
    ASSERT_EQ(batch.timestamps.size(), 64u);
    for (int64_t t : batch.timestamps) {
      EXPECT_GT(t, prev);
      prev = t;
    }
  }
}

TEST(SeismicTest, EventRateRoughlyMatches) {
  SeismicGenerator gen({.series_length = 128, .batch_size = 256,
                        .event_probability = 0.2});
  size_t events = 0;
  size_t total = 0;
  for (int b = 0; b < 10; ++b) {
    auto batch = gen.NextBatch();
    for (bool e : batch.has_event) {
      events += e ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(events) / total, 0.2, 0.05);
}

TEST(SeismicTest, EarthquakeTemplateRetrievesEventTraces) {
  // The Scenario-2 premise: the earthquake template's nearest neighbors
  // are event-bearing traces.
  SeismicGenerator gen({.series_length = 128, .batch_size = 512,
                        .event_probability = 0.1, .signal_to_noise = 10.0});
  auto batch = gen.NextBatch();
  int hits = 0;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    auto query = gen.EarthquakeTemplate(500 + seed);
    auto truth = testutil::BruteForceNearest(batch.series, query);
    if (batch.has_event[truth.index]) ++hits;
  }
  EXPECT_GE(hits, 4);
}

// ---------------------------------------------------------- dataset io

TEST(DatasetIoTest, RoundTrip) {
  RandomWalkGenerator gen(32, 9);
  auto collection = gen.Generate(40);
  const std::string path =
      std::filesystem::temp_directory_path().string() + "/coconut_ds_test.bin";
  ASSERT_TRUE(WriteDataset(path, collection).ok());
  auto loaded = ReadDataset(path, 32).TakeValue();
  ASSERT_EQ(loaded.size(), 40u);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 32; ++j) EXPECT_EQ(loaded[i][j], collection[i][j]);
  }
  std::filesystem::remove(path);
}

TEST(DatasetIoTest, RejectsBadShape) {
  RandomWalkGenerator gen(32, 9);
  auto collection = gen.Generate(3);
  const std::string path =
      std::filesystem::temp_directory_path().string() + "/coconut_ds_bad.bin";
  ASSERT_TRUE(WriteDataset(path, collection).ok());
  EXPECT_FALSE(ReadDataset(path, 17).ok());  // 96 floats % 17 != 0.
  EXPECT_FALSE(ReadDataset(path, 0).ok());
  EXPECT_FALSE(ReadDataset("/nonexistent/nope.bin", 32).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace workload
}  // namespace coconut
