// End-to-end tests for the embedded HTTP transport (palm/http_server.h):
// boot the server on an ephemeral port and drive the full
// register -> build -> query -> drain -> drop lifecycle over real POSIX
// sockets, including keep-alive reuse, protocol errors, and concurrent
// clients (this suite runs under TSan in CI).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "palm/api.h"
#include "palm/http_server.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace {

struct HttpResponse {
  int status = 0;
  std::string body;
  std::string connection_header;
};

/// Blocking loopback client used by the tests; fails the test via the
/// returned status when the server misbehaves at the socket level.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body,
                            bool close_connection = false) {
    return RoundTrip("POST", target, body, close_connection);
  }

  Result<HttpResponse> Get(const std::string& target) {
    return RoundTrip("GET", target, "", false);
  }

  /// Sends a HEAD and reads exactly the header block, byte by byte — any
  /// body bytes a buggy server sends would stay queued and desync the
  /// next request on this connection.
  Result<int> Head(const std::string& target) {
    COCONUT_RETURN_NOT_OK(SendAll("HEAD " + target +
                                  " HTTP/1.1\r\nHost: x\r\n"
                                  "Content-Length: 0\r\n\r\n"));
    std::string head;
    while (head.find("\r\n\r\n") == std::string::npos) {
      char c;
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n == 1) {
        head += c;
        continue;
      }
      if (n == 0) return Status::IoError("connection closed by server");
      if (errno == EINTR) continue;
      return Status::IoError("recv: " + std::string(std::strerror(errno)));
    }
    const size_t sp = head.find(' ');
    if (sp == std::string::npos) return Status::IoError("bad status line");
    return std::atoi(head.c_str() + sp + 1);
  }

  Result<HttpResponse> RoundTrip(const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 bool close_connection) {
    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: 127.0.0.1\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    if (close_connection) request += "Connection: close\r\n";
    request += "\r\n";
    request += body;
    COCONUT_RETURN_NOT_OK(SendAll(request));
    return ReadResponse();
  }

  /// Sends raw bytes (for malformed-request tests).
  Status SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("send: " + std::string(std::strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Result<HttpResponse> ReadResponse() {
    std::string buffer;
    size_t header_end;
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      COCONUT_RETURN_NOT_OK(Recv(&buffer));
    }
    HttpResponse response;
    const std::string head = buffer.substr(0, header_end);
    // "HTTP/1.1 200 OK"
    const size_t sp = head.find(' ');
    if (sp == std::string::npos) return Status::IoError("bad status line");
    response.status = std::atoi(head.c_str() + sp + 1);
    size_t content_length = 0;
    size_t pos = head.find("\r\n");
    while (pos != std::string::npos && pos < head.size()) {
      size_t next = head.find("\r\n", pos + 2);
      const std::string line =
          head.substr(pos + 2, (next == std::string::npos ? head.size()
                                                          : next) -
                                   pos - 2);
      pos = next;
      std::string lowered = line;
      for (char& c : lowered) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (lowered.rfind("content-length:", 0) == 0) {
        content_length = static_cast<size_t>(
            std::atoll(line.c_str() + std::strlen("content-length:")));
      } else if (lowered.rfind("connection:", 0) == 0) {
        std::string value = lowered.substr(std::strlen("connection:"));
        while (!value.empty() && value.front() == ' ') value.erase(0, 1);
        response.connection_header = value;
      }
    }
    buffer.erase(0, header_end + 4);
    while (buffer.size() < content_length) {
      COCONUT_RETURN_NOT_OK(Recv(&buffer));
    }
    response.body = buffer.substr(0, content_length);
    return response;
  }

 private:
  Status Recv(std::string* buffer) {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer->append(chunk, static_cast<size_t>(n));
        return Status::OK();
      }
      if (n == 0) return Status::IoError("connection closed by server");
      if (errno == EINTR) continue;
      return Status::IoError("recv: " + std::string(std::strerror(errno)));
    }
  }

  int fd_ = -1;
  bool connected_ = false;
};

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 32, .num_segments = 8,
                           .bits_per_segment = 8};
}

class HttpE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() + "/http_e2e_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    service_ = api::Service::Create(root_).TakeValue();
    HttpServerOptions options;
    options.port = 0;  // ephemeral
    options.threads = 4;
    auto started = HttpServer::Start(service_.get(), options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = started.TakeValue();
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    std::filesystem::remove_all(root_);
  }

  /// One-shot POST on a fresh connection; asserts transport success.
  HttpResponse Post(const std::string& method, const std::string& body) {
    TestClient client(server_->port());
    EXPECT_TRUE(client.connected());
    Result<HttpResponse> response = client.Post("/api/v1/" + method, body);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.TakeValue() : HttpResponse{};
  }

  std::string root_;
  std::unique_ptr<api::Service> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpE2eTest, FullLifecycleOverRealSockets) {
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(100, 32, 77);

  // register -> build.
  api::RegisterDatasetRequest reg;
  reg.name = "walk";
  reg.data = data;
  HttpResponse response = Post("register_dataset", reg.ToJsonString());
  ASSERT_EQ(response.status, 200) << response.body;

  api::BuildIndexRequest build;
  build.index = "idx";
  build.dataset = "walk";
  build.spec.sax = TestSax();
  response = Post("build_index", build.ToJsonString());
  ASSERT_EQ(response.status, 200) << response.body;
  auto report = api::BuildIndexReport::FromJson(
      JsonParse(response.body).TakeValue());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().entries, 100u);

  // query (exact, against brute force over the normalized data).
  api::QueryRequest query;
  query.index = "idx";
  query.query = testutil::NoisyCopy(data, 42, 0.25, 3);
  response = Post("query", query.ToJsonString());
  ASSERT_EQ(response.status, 200) << response.body;
  auto query_report =
      api::QueryReport::FromJson(JsonParse(response.body).TakeValue());
  ASSERT_TRUE(query_report.ok()) << query_report.status().ToString();
  ASSERT_TRUE(query_report.value().found);
  series::SeriesCollection normalized(data.length());
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<float> buf(data[i].begin(), data[i].end());
    series::ZNormalize(buf);
    normalized.Append(buf);
  }
  std::vector<float> znorm = query.query;
  series::ZNormalize(znorm);
  const auto truth = testutil::BruteForceNearest(normalized, znorm);
  EXPECT_NEAR(query_report.value().distance * query_report.value().distance,
              truth.distance_sq, 1e-4);

  // create_stream -> ingest -> drain.
  api::CreateStreamRequest create;
  create.stream = "tp";
  create.spec.sax = TestSax();
  create.spec.mode = StreamMode::kTP;
  create.spec.buffer_entries = 32;
  response = Post("create_stream", create.ToJsonString());
  ASSERT_EQ(response.status, 200) << response.body;

  api::IngestBatchRequest ingest;
  ingest.stream = "tp";
  ingest.batch = data;
  ingest.timestamps.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ingest.timestamps[i] = static_cast<int64_t>(i);
  }
  response = Post("ingest_batch", ingest.ToJsonString());
  ASSERT_EQ(response.status, 200) << response.body;

  response = Post("drain_stream", "{\"stream\":\"tp\"}");
  ASSERT_EQ(response.status, 200) << response.body;
  auto drain = api::DrainStreamReport::FromJson(
      JsonParse(response.body).TakeValue());
  ASSERT_TRUE(drain.ok());
  EXPECT_TRUE(drain.value().drained);
  EXPECT_EQ(drain.value().total_entries, 100u);
  EXPECT_EQ(drain.value().pending_tasks, 0u);

  // Windowed query against the stream over the wire.
  query.index = "tp";
  query.window = core::TimeWindow{0, 49};
  response = Post("query", query.ToJsonString());
  ASSERT_EQ(response.status, 200) << response.body;

  // list -> drop -> list.
  response = Post("list_indexes", "");
  ASSERT_EQ(response.status, 200) << response.body;
  auto list = api::ListIndexesResponse::FromJson(
      JsonParse(response.body).TakeValue());
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().indexes.size(), 2u);

  response = Post("drop_index", "{\"index\":\"tp\"}");
  ASSERT_EQ(response.status, 200) << response.body;
  response = Post("drop_index", "{\"index\":\"idx\"}");
  ASSERT_EQ(response.status, 200) << response.body;
  response = Post("drop_dataset", "{\"dataset\":\"walk\"}");
  ASSERT_EQ(response.status, 200) << response.body;
  response = Post("list_indexes", "");
  EXPECT_EQ(response.body, "[]");
}

TEST_F(HttpE2eTest, KeepAliveServesManyRequestsPerConnection) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    Result<HttpResponse> response = client.Post("/api/v1/list_indexes", "");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
    EXPECT_EQ(response.value().connection_header, "keep-alive");
    EXPECT_EQ(response.value().body, "[]");
  }
  // healthz on the same connection.
  Result<HttpResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  EXPECT_EQ(health.value().body, "{\"ok\":true}");
  // HEAD must answer headers-only; a body would desync the next request
  // on this keep-alive connection (the follow-up GET catches it).
  Result<int> head = client.Head("/healthz");
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value(), 200);
  health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
  EXPECT_EQ(health.value().body, "{\"ok\":true}");
  // Connection: close is honored.
  Result<HttpResponse> last =
      client.Post("/api/v1/list_indexes", "", /*close_connection=*/true);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value().connection_header, "close");
}

TEST_F(HttpE2eTest, ProtocolAndDispatchErrors) {
  // Unknown route.
  TestClient c1(server_->port());
  Result<HttpResponse> raw = c1.Post("/nope", "{}");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().status, 404);

  // Wrong verb on an API method.
  TestClient c2(server_->port());
  raw = c2.Get("/api/v1/list_indexes");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().status, 405);

  // Unknown method -> 404 with a structured error body.
  HttpResponse response = Post("frobnicate", "{}");
  EXPECT_EQ(response.status, 404);
  auto error =
      api::ApiError::FromJson(JsonParse(response.body).TakeValue());
  ASSERT_TRUE(error.ok()) << response.body;
  EXPECT_EQ(error.value().code, "not_found");

  // Malformed JSON body -> 400.
  response = Post("query", "{\"index\":");
  EXPECT_EQ(response.status, 400);
  error = api::ApiError::FromJson(JsonParse(response.body).TakeValue());
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().code, "invalid_argument");

  // Valid JSON, unknown index -> 404.
  response = Post("query", "{\"index\":\"ghost\",\"query\":[1,2,3]}");
  EXPECT_EQ(response.status, 404);

  // Duplicate registration -> 409.
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(4, 32, 5);
  api::RegisterDatasetRequest reg;
  reg.name = "dup";
  reg.data = data;
  EXPECT_EQ(Post("register_dataset", reg.ToJsonString()).status, 200);
  EXPECT_EQ(Post("register_dataset", reg.ToJsonString()).status, 409);

  // Chunked encoding is declined with 501.
  TestClient c3(server_->port());
  ASSERT_TRUE(c3.SendAll("POST /api/v1/list_indexes HTTP/1.1\r\n"
                         "Transfer-Encoding: chunked\r\n\r\n")
                  .ok());
  raw = c3.ReadResponse();
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().status, 501);

  // Garbage request line.
  TestClient c4(server_->port());
  ASSERT_TRUE(c4.SendAll("WHAT\r\n\r\n").ok());
  raw = c4.ReadResponse();
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().status, 400);
}

TEST_F(HttpE2eTest, HeadResponsesCarryNoBodyOnAnyRoute) {
  // Head() reads exactly the header block; any body bytes a route sent
  // would desync the follow-up requests on this keep-alive connection.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  Result<int> head = client.Head("/nope");
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value(), 404);
  head = client.Head("/api/v1/list_indexes");
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value(), 405);
  head = client.Head("/healthz");
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head.value(), 200);
  // Still in sync: a normal exchange parses cleanly.
  Result<HttpResponse> response = client.Post("/api/v1/list_indexes", "");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "[]");
}

TEST_F(HttpE2eTest, ExpectContinueIsAnswered) {
  // curl sends "Expect: 100-continue" for sizable POST bodies and waits
  // for the interim response before transmitting them.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client
                  .SendAll("POST /api/v1/list_indexes HTTP/1.1\r\n"
                           "Host: x\r\n"
                           "Expect: 100-continue\r\n"
                           "Content-Length: 2\r\n\r\n")
                  .ok());
  Result<HttpResponse> interim = client.ReadResponse();
  ASSERT_TRUE(interim.ok()) << interim.status().ToString();
  EXPECT_EQ(interim.value().status, 100);
  ASSERT_TRUE(client.SendAll("{}").ok());
  Result<HttpResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "[]");

  // An Expect value we cannot honor is refused up front.
  TestClient c2(server_->port());
  ASSERT_TRUE(c2.SendAll("POST /api/v1/list_indexes HTTP/1.1\r\n"
                         "Expect: tea\r\nContent-Length: 0\r\n\r\n")
                  .ok());
  Result<HttpResponse> refused = c2.ReadResponse();
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().status, 417);

  // Expect from an HTTP/1.0 client is ignored: 1.0 has no interim
  // responses, so the first (and only) response must be the final one.
  TestClient c3(server_->port());
  ASSERT_TRUE(
      c3.SendAll("POST /api/v1/list_indexes HTTP/1.0\r\n"
                 "Expect: 100-continue\r\nContent-Length: 2\r\n\r\n{}")
          .ok());
  Result<HttpResponse> old_proto = c3.ReadResponse();
  ASSERT_TRUE(old_proto.ok());
  EXPECT_EQ(old_proto.value().status, 200);
  EXPECT_EQ(old_proto.value().body, "[]");
}

TEST_F(HttpE2eTest, HostileRequestsAreRejectedWithoutCrashing) {
  // A path-traversal index name is refused at the API boundary.
  api::BuildIndexRequest build;
  build.index = "../../escape";
  build.dataset = "nope";
  build.spec.sax = TestSax();
  HttpResponse response = Post("build_index", build.ToJsonString());
  EXPECT_EQ(response.status, 400);
  auto error = api::ApiError::FromJson(JsonParse(response.body).TakeValue());
  ASSERT_TRUE(error.ok()) << response.body;
  EXPECT_EQ(error.value().code, "invalid_argument");

  // A huge declared series_length with no payload behind it must yield a
  // structured error, not an allocation failure that kills the server.
  response = Post(
      "register_dataset",
      "{\"name\":\"d\",\"series\":[],\"series_length\":1000000000000}");
  EXPECT_EQ(response.status, 400);

  // Conflicting Content-Length copies (the CL.CL smuggling shape) -> 400.
  TestClient cl(server_->port());
  ASSERT_TRUE(cl.SendAll("POST /api/v1/list_indexes HTTP/1.1\r\n"
                         "Content-Length: 2\r\nContent-Length: 4\r\n\r\n{}")
                  .ok());
  Result<HttpResponse> smuggle = cl.ReadResponse();
  ASSERT_TRUE(smuggle.ok());
  EXPECT_EQ(smuggle.value().status, 400);

  // The server survived all of it.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  Result<HttpResponse> health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
}

TEST_F(HttpE2eTest, ConcurrentClients) {
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(80, 32, 123);
  api::RegisterDatasetRequest reg;
  reg.name = "walk";
  reg.data = data;
  ASSERT_EQ(Post("register_dataset", reg.ToJsonString()).status, 200);

  // Two indexes so the service-level parallelism across indexes is real.
  for (const char* name : {"a", "b"}) {
    api::BuildIndexRequest build;
    build.index = name;
    build.dataset = "walk";
    build.spec.sax = TestSax();
    build.spec.family =
        name[0] == 'a' ? IndexFamily::kCTree : IndexFamily::kClsm;
    ASSERT_EQ(Post("build_index", build.ToJsonString()).status, 200);
  }

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &data, &failures] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        api::QueryRequest query;
        query.index = (c + i) % 2 == 0 ? "a" : "b";
        query.query = testutil::NoisyCopy(
            data, static_cast<size_t>((c * 31 + i * 7) % 80), 0.3,
            static_cast<uint64_t>(c * 100 + i));
        Result<HttpResponse> response =
            client.Post("/api/v1/query", query.ToJsonString());
        if (!response.ok() || response.value().status != 200) {
          failures.fetch_add(1);
          continue;
        }
        auto report = api::QueryReport::FromJson(
            JsonParse(response.value().body).TakeValue());
        if (!report.ok() || !report.value().found) failures.fetch_add(1);
        // Interleave a list to cross the registry's shared lock.
        if (i % 3 == 0) {
          Result<HttpResponse> list =
              client.Post("/api/v1/list_indexes", "");
          if (!list.ok() || list.value().status != 200) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(HttpE2eTest, SlowButHonestBodyUploadSurvivesBeyondIdleTimeout) {
  // The ROADMAP-flagged open item: an *absolute* body-read deadline made
  // the 64 MiB body cap unreachable on slow-but-honest links. The
  // replacement is size-aware — the idle deadline restarts on every
  // received chunk and only a throughput-floor violation (or a genuine
  // stall) kills the transfer. Drive it with a drip-feeding client whose
  // total transfer takes several times the idle timeout while every
  // inter-chunk gap stays inside it.
  HttpServerOptions options;
  options.port = 0;
  options.threads = 2;
  options.keep_alive_timeout_ms = 400;
  auto slow_server = HttpServer::Start(service_.get(), options).TakeValue();

  api::RegisterDatasetRequest reg;
  reg.name = "drip";
  reg.data = testutil::RandomWalkCollection(40, 32, 5);
  const std::string body = reg.ToJsonString();
  ASSERT_GT(body.size(), 2000u);

  TestClient client(slow_server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client
                  .SendAll("POST /api/v1/register_dataset HTTP/1.1\r\n"
                           "Host: x\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n")
                  .ok());
  // 8 slices, 150 ms apart: total ~1.05 s against a 400 ms idle deadline
  // — the pre-fix server killed this transfer at 400 ms.
  constexpr size_t kSlices = 8;
  for (size_t i = 0; i < kSlices; ++i) {
    const size_t begin = body.size() * i / kSlices;
    const size_t end = body.size() * (i + 1) / kSlices;
    ASSERT_TRUE(client.SendAll(body.substr(begin, end - begin)).ok());
    if (i + 1 < kSlices) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  }
  Result<HttpResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200) << response.value().body;

  // A genuinely stalled upload (headers, then silence) still dies at the
  // idle deadline — the fix relaxed progressing transfers, not stalls.
  TestClient stalled(slow_server->port());
  ASSERT_TRUE(stalled.connected());
  ASSERT_TRUE(stalled
                  .SendAll("POST /api/v1/list_indexes HTTP/1.1\r\n"
                           "Host: x\r\nContent-Length: 2\r\n\r\n")
                  .ok());
  Result<HttpResponse> dead = stalled.ReadResponse();
  EXPECT_FALSE(dead.ok());  // server closed without a response
}

TEST_F(HttpE2eTest, GracefulShutdown) {
  // A connected idle client must not wedge Stop().
  TestClient idle(server_->port());
  ASSERT_TRUE(idle.connected());
  EXPECT_EQ(Post("list_indexes", "").status, 200);
  const uint16_t port = server_->port();
  server_->Stop();
  server_.reset();
  // The port is released: a fresh connect must fail (or be refused on
  // first use).
  TestClient late(port);
  if (late.connected()) {
    Result<HttpResponse> response = late.Post("/api/v1/list_indexes", "");
    EXPECT_FALSE(response.ok());
  }
}

}  // namespace
}  // namespace palm
}  // namespace coconut
