// Corruption matrix for the write-ahead log: take a small real log, then
// for EVERY byte offset flip a bit, and for EVERY length truncate, and
// assert the reader never crashes and never invents data — each mangled
// log either fails to open with a structured error or recovers an exact
// prefix of whole acknowledged batches (CRC-32C framing makes every
// frame all-or-nothing, and scanning stops at the first bad frame).
// The ASan/UBSan CI job runs this same matrix to prove the bounded
// reader cannot be driven out of bounds by any length field.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/raw_store.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"
#include "stream/wal.h"

namespace coconut {
namespace stream {
namespace {

constexpr uint32_t kLen = 8;

/// Replay sink; RestoreFromManifest is unsupported, which exercises the
/// full-replay fallback whenever a checkpoint survives the mangling.
class CapturingIndex : public StreamingIndex {
 public:
  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    (void)timestamp;
    ids.push_back(series_id);
    values.emplace_back(znorm_values.begin(), znorm_values.end());
    return Status::OK();
  }
  Status FlushAll() override { return Status::OK(); }
  Result<core::SearchResult> ApproxSearch(std::span<const float>,
                                          const core::SearchOptions&,
                                          core::QueryCounters*) override {
    return core::SearchResult{};
  }
  Result<core::SearchResult> ExactSearch(std::span<const float>,
                                         const core::SearchOptions&,
                                         core::QueryCounters*) override {
    return core::SearchResult{};
  }
  uint64_t num_entries() const override { return ids.size(); }
  size_t num_partitions() const override { return 0; }
  uint64_t index_bytes() const override { return 0; }
  std::string describe() const override { return "capturing"; }

  std::vector<uint64_t> ids;
  std::vector<std::vector<float>> values;
};

class WalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/wal_corruption_test";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    // The pristine log: 2 commits of 2 admits each, with a (count-valid)
    // checkpoint between them, so the matrix mangles every frame type the
    // writer emits on the hot path.
    auto storage = storage::StorageManager::Create(root_ + "/orig");
    ASSERT_TRUE(storage.ok());
    auto opened = Wal::Open(storage.value().get(), "wal", kLen);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Wal> wal = opened.TakeValue();
    uint64_t ordinal = 0;
    for (int commit = 0; commit < 2; ++commit) {
      for (int i = 0; i < 2; ++i) {
        std::vector<float> v(kLen);
        for (uint32_t k = 0; k < kLen; ++k) {
          v[k] = static_cast<float>(ordinal) * 16.0f + static_cast<float>(k);
        }
        admits_.push_back(v);
        wal->AppendAdmit(ordinal, static_cast<int64_t>(ordinal) * 10, v);
        ++ordinal;
      }
      ASSERT_TRUE(wal->Commit().ok());
      if (commit == 0) {
        const std::vector<uint8_t> manifest{'m'};
        ASSERT_TRUE(wal->AppendCheckpoint(1, manifest).ok());
      }
    }

    auto file = storage.value()->OpenFile("wal");
    ASSERT_TRUE(file.ok());
    pristine_.resize(file.value()->size_bytes());
    ASSERT_TRUE(
        file.value()->ReadAt(0, pristine_.data(), pristine_.size()).ok());
    ASSERT_GT(pristine_.size(), kWalFrameHeaderBytes);
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Opens `bytes` as a stream's log in a fresh directory and, when the
  /// open succeeds, recovers it. Every outcome is checked against the
  /// never-crash / exact-prefix contract.
  void CheckMangledLog(const std::vector<uint8_t>& bytes,
                       const std::string& what) {
    SCOPED_TRACE(what);
    const std::string dir = root_ + "/mangled";
    std::filesystem::remove_all(dir);
    auto storage = storage::StorageManager::Create(dir);
    ASSERT_TRUE(storage.ok());
    {
      auto file = storage.value()->CreateFile("wal");
      ASSERT_TRUE(file.ok());
      if (!bytes.empty()) {
        ASSERT_TRUE(file.value()->Append(bytes.data(), bytes.size()).ok());
      }
      ASSERT_TRUE(file.value()->DataSync().ok());
    }

    auto opened = Wal::Open(storage.value().get(), "wal", kLen);
    if (!opened.ok()) {
      const StatusCode code = opened.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kNotSupported ||
                  code == StatusCode::kInvalidArgument)
          << "unstructured failure: " << opened.status().ToString();
      return;
    }

    std::unique_ptr<Wal> wal = opened.TakeValue();
    CapturingIndex index;
    auto raw = core::RawSeriesStore::OpenTruncated(
        storage.value().get(), "raw", kLen, wal->base_ordinals());
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    WalRecoverOutcome outcome;
    const Status recovered = wal->Recover(&index, raw.value().get(), &outcome);
    if (!recovered.ok()) {
      EXPECT_EQ(recovered.code(), StatusCode::kDataLoss)
          << "unstructured failure: " << recovered.ToString();
      return;
    }

    // A single mangling can only drop a frame (and everything after it):
    // what survives must be an exact prefix of whole committed batches.
    ASSERT_LE(index.ids.size(), admits_.size());
    EXPECT_EQ(index.ids.size() % 2, 0u)
        << "recovered a partial batch (commits held 2 admits each)";
    std::vector<float> fetched(kLen);
    for (size_t i = 0; i < index.ids.size(); ++i) {
      EXPECT_EQ(index.ids[i], i);
      EXPECT_EQ(index.values[i], admits_[i]) << "admit " << i << " mutated";
      ASSERT_TRUE(raw.value()->Get(i, fetched).ok());
      EXPECT_EQ(fetched, admits_[i]) << "raw series " << i << " mutated";
    }
    EXPECT_EQ(outcome.ordinals, index.ids.size());
  }

  std::string root_;
  std::vector<uint8_t> pristine_;
  std::vector<std::vector<float>> admits_;
};

TEST_F(WalCorruptionTest, PristineLogRecoversEverything) {
  // Sanity-check the fixture itself: unmangled, all 4 admits come back
  // (via full replay — the capture index cannot restore the manifest, and
  // nothing was truncated, so the fallback replays the whole log).
  CheckMangledLog(pristine_, "pristine");
}

TEST_F(WalCorruptionTest, BitFlipAtEveryOffset) {
  for (size_t at = 0; at < pristine_.size(); ++at) {
    std::vector<uint8_t> bytes = pristine_;
    bytes[at] ^= 0x01;
    CheckMangledLog(bytes, "bit flip at offset " + std::to_string(at));
  }
}

TEST_F(WalCorruptionTest, HighBitFlipAtEveryOffset) {
  // The sign/top bit catches different field corruption (huge lengths,
  // negative-looking counts) than the low bit does.
  for (size_t at = 0; at < pristine_.size(); ++at) {
    std::vector<uint8_t> bytes = pristine_;
    bytes[at] ^= 0x80;
    CheckMangledLog(bytes, "high-bit flip at offset " + std::to_string(at));
  }
}

TEST_F(WalCorruptionTest, TruncationAtEveryLength) {
  for (size_t len = 0; len <= pristine_.size(); ++len) {
    std::vector<uint8_t> bytes(pristine_.begin(),
                               pristine_.begin() + static_cast<long>(len));
    CheckMangledLog(bytes, "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST_F(WalCorruptionTest, GarbageTail) {
  // A torn tail of pure garbage after valid frames: dropped silently.
  std::vector<uint8_t> bytes = pristine_;
  for (int i = 0; i < 40; ++i) {
    bytes.push_back(static_cast<uint8_t>(0xDE ^ (i * 37)));
  }
  CheckMangledLog(bytes, "40 garbage bytes appended");
}

}  // namespace
}  // namespace stream
}  // namespace coconut
