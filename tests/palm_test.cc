#include <gtest/gtest.h>

#include <filesystem>

#include "palm/comparison.h"
#include "palm/factory.h"
#include "palm/heatmap.h"
#include "palm/recommender.h"
#include "palm/server.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace coconut {
namespace palm {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

// ---------------------------------------------------------------- factory

TEST(FactoryTest, VariantNamesMatchFigureOne) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = IndexFamily::kAds;
  EXPECT_EQ(VariantName(spec), "ADS+");
  spec.materialized = true;
  EXPECT_EQ(VariantName(spec), "ADSFull");
  spec.family = IndexFamily::kCTree;
  spec.materialized = false;
  spec.mode = StreamMode::kPP;
  EXPECT_EQ(VariantName(spec), "CTree-PP");
  spec.mode = StreamMode::kTP;
  spec.materialized = true;
  EXPECT_EQ(VariantName(spec), "CTreeFull-TP");
  spec.family = IndexFamily::kClsm;
  spec.mode = StreamMode::kBTP;
  spec.materialized = false;
  EXPECT_EQ(VariantName(spec), "CLSM-BTP");
}

TEST(FactoryTest, MatrixValidation) {
  VariantSpec spec;
  spec.sax = TestSax();
  std::string why;
  // BTP requires CLSM.
  spec.family = IndexFamily::kAds;
  spec.mode = StreamMode::kBTP;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  EXPECT_FALSE(why.empty());
  // TP over CLSM is not a matrix cell.
  spec.family = IndexFamily::kClsm;
  spec.mode = StreamMode::kTP;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  // Valid cells.
  spec.mode = StreamMode::kBTP;
  EXPECT_TRUE(SpecIsValid(spec, &why));
  spec.family = IndexFamily::kCTree;
  spec.mode = StreamMode::kTP;
  EXPECT_TRUE(SpecIsValid(spec, &why));
}

class FactoryBuildTest : public ::testing::TestWithParam<
                             std::tuple<IndexFamily, bool>> {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("factory_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_P(FactoryBuildTest, EveryStaticVariantBuildsAndAnswersExactly) {
  auto [family, materialized] = GetParam();
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = family;
  spec.materialized = materialized;
  spec.buffer_entries = 128;

  auto collection = testutil::RandomWalkCollection(400, 64, 11);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  auto index =
      CreateStaticIndex(spec, mgr_.get(), "idx", nullptr, raw_.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(index->Insert(i, collection[i], 0).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());
  EXPECT_EQ(index->num_entries(), 400u);
  EXPECT_GT(index->index_bytes(), 0u);

  for (int q = 0; q < 5; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 79 % 400, 0.4, q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = index->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6)
        << index->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FactoryBuildTest,
    ::testing::Combine(::testing::Values(IndexFamily::kAds,
                                         IndexFamily::kCTree,
                                         IndexFamily::kClsm),
                       ::testing::Bool()));

class FactoryStreamTest
    : public ::testing::TestWithParam<std::tuple<IndexFamily, StreamMode>> {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("factory_stream_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_P(FactoryStreamTest, EveryStreamingVariantIngestsAndAnswers) {
  auto [family, mode] = GetParam();
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = family;
  spec.mode = mode;
  spec.buffer_entries = 64;
  std::string why;
  if (!SpecIsValid(spec, &why)) GTEST_SKIP() << why;

  auto collection = testutil::RandomWalkCollection(300, 64, 13);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  auto stream =
      CreateStreamingIndex(spec, mgr_.get(), "s", nullptr, raw_.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        stream->Ingest(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  EXPECT_EQ(stream->num_entries(), 300u);

  core::SearchOptions opts;
  opts.window = core::TimeWindow{100, 250};
  auto query = testutil::NoisyCopy(collection, 180, 0.4, 3);
  auto got = stream->ExactSearch(query, opts, nullptr).TakeValue();
  ASSERT_TRUE(got.found) << stream->describe();
  EXPECT_GE(got.timestamp, 100);
  EXPECT_LE(got.timestamp, 250);

  double truth = std::numeric_limits<double>::infinity();
  for (size_t i = 100; i <= 250; ++i) {
    truth = std::min(truth, series::EuclideanSquared(query, collection[i]));
  }
  EXPECT_NEAR(got.distance_sq, truth, 1e-6) << stream->describe();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FactoryStreamTest,
    ::testing::Combine(::testing::Values(IndexFamily::kAds,
                                         IndexFamily::kCTree,
                                         IndexFamily::kClsm),
                       ::testing::Values(StreamMode::kPP, StreamMode::kTP,
                                         StreamMode::kBTP)));

// ------------------------------------------------------------ recommender

TEST(RecommenderTest, StaticFewQueriesGetsNonMaterializedCTree) {
  Scenario s;
  s.sax = TestSax();
  s.streaming = false;
  s.dataset_size = 1'000'000;
  s.expected_queries = 5;
  Recommendation rec = Recommend(s);
  EXPECT_EQ(rec.spec.family, IndexFamily::kCTree);
  EXPECT_FALSE(rec.spec.materialized);
  EXPECT_EQ(rec.spec.mode, StreamMode::kStatic);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(RecommenderTest, ManyQueriesFlipToMaterialized) {
  // The Scenario-1 narrative: increasing the projected query count flips
  // the recommendation to a materialized CTree.
  Scenario s;
  s.sax = TestSax();
  s.dataset_size = 100'000;
  s.expected_queries = 5;
  EXPECT_FALSE(Recommend(s).spec.materialized);
  s.expected_queries = 1'000'000;
  EXPECT_TRUE(Recommend(s).spec.materialized);
}

TEST(RecommenderTest, StreamingWindowsGetClsmBtp) {
  // The Scenario-2 recommendation: non-materialized CLSM with BTP.
  Scenario s;
  s.sax = TestSax();
  s.streaming = true;
  s.window_queries = true;
  s.expected_queries = 20;
  s.dataset_size = 10'000'000;
  Recommendation rec = Recommend(s);
  EXPECT_EQ(rec.spec.family, IndexFamily::kClsm);
  EXPECT_EQ(rec.spec.mode, StreamMode::kBTP);
  EXPECT_FALSE(rec.spec.materialized);
  EXPECT_EQ(rec.variant_name(), "CLSM-BTP");
}

TEST(RecommenderTest, UpdateHeavyStaticGetsClsm) {
  Scenario s;
  s.sax = TestSax();
  s.update_ratio = 0.6;
  EXPECT_EQ(Recommend(s).spec.family, IndexFamily::kClsm);
}

TEST(RecommenderTest, LightUpdatesReserveFillFactorSlack) {
  Scenario s;
  s.sax = TestSax();
  s.update_ratio = 0.1;
  Recommendation rec = Recommend(s);
  EXPECT_EQ(rec.spec.family, IndexFamily::kCTree);
  EXPECT_LT(rec.spec.fill_factor, 1.0);
}

TEST(RecommenderTest, RecommendationsAreValidSpecs) {
  // Property: whatever scenario, the recommended spec must be a valid
  // matrix cell.
  for (bool streaming : {false, true}) {
    for (bool windows : {false, true}) {
      for (double updates : {0.0, 0.1, 0.5}) {
        for (uint64_t queries : {1ull, 100ull, 1000000ull}) {
          Scenario s;
          s.sax = TestSax();
          s.streaming = streaming;
          s.window_queries = windows;
          s.update_ratio = updates;
          s.expected_queries = queries;
          Recommendation rec = Recommend(s);
          std::string why;
          EXPECT_TRUE(SpecIsValid(rec.spec, &why))
              << rec.variant_name() << ": " << why;
          EXPECT_FALSE(rec.rationale.empty());
        }
      }
    }
  }
}

// ---------------------------------------------------------------- heatmap

TEST(HeatMapTest, SequentialScanIsLocal) {
  std::vector<storage::AccessEvent> events;
  for (uint64_t i = 0; i < 100; ++i) {
    events.push_back({0, i, false, i});
  }
  EXPECT_DOUBLE_EQ(AccessLocality(events), 1.0);
  HeatMap map = BuildHeatMap(events, 10, 10);
  EXPECT_EQ(map.total_events, 100u);
  EXPECT_EQ(map.distinct_pages, 100u);
  EXPECT_EQ(map.distinct_files, 1u);
  // A sequential scan over time forms a diagonal: cell (t, t) is hot.
  for (size_t t = 0; t < 10; ++t) {
    EXPECT_GT(map.at(t, t), 0u);
  }
}

TEST(HeatMapTest, RandomScatterHasLowLocality) {
  Rng rng(5);
  std::vector<storage::AccessEvent> events;
  for (uint64_t i = 0; i < 200; ++i) {
    events.push_back({static_cast<uint32_t>(rng.NextBounded(20)),
                      rng.NextBounded(50), false, i});
  }
  EXPECT_LT(AccessLocality(events), 0.2);
  HeatMap map = BuildHeatMap(events, 8, 16);
  EXPECT_EQ(map.total_events, 200u);
  EXPECT_EQ(map.distinct_files, 20u);
}

TEST(HeatMapTest, EmptyEventsProduceEmptyMap) {
  HeatMap map = BuildHeatMap({}, 4, 4);
  EXPECT_EQ(map.total_events, 0u);
  EXPECT_EQ(map.max_count, 0u);
  EXPECT_DOUBLE_EQ(AccessLocality({}), 1.0);
}

TEST(HeatMapTest, TextAndJsonRender) {
  std::vector<storage::AccessEvent> events;
  for (uint64_t i = 0; i < 50; ++i) events.push_back({0, i % 5, false, i});
  HeatMap map = BuildHeatMap(events, 4, 8);
  std::string text = RenderHeatMapText(map);
  EXPECT_NE(text.find('@'), std::string::npos);  // Hot cells rendered.
  JsonWriter w;
  HeatMapToJson(map, &w);
  std::string json = w.TakeString();
  EXPECT_NE(json.find("\"cells\":[["), std::string::npos);
  EXPECT_NE(json.find("\"total_events\":50"), std::string::npos);
}

TEST(ComparisonTest, BarChartScalesBars) {
  std::string chart = RenderBarChart(
      "Construction", "s",
      {{"ADS+", 10.0}, {"CTree", 2.5}, {"CLSM", 5.0}}, 40);
  EXPECT_NE(chart.find("ADS+"), std::string::npos);
  // ADS+ bar (max) has 40 hashes; CTree has 10.
  EXPECT_NE(chart.find(std::string(40, '#')), std::string::npos);
  EXPECT_NE(chart.find(std::string(10, '#') + " 2.5"), std::string::npos);
}

// ---------------------------------------------------------------- server

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/coconut_server_test_" + std::to_string(::getpid());
    server_ = Server::Create(root_).TakeValue();
    workload::RandomWalkGenerator gen(64, 21);
    collection_ = gen.Generate(300);
    ASSERT_TRUE(server_->RegisterDataset("walk", collection_, nullptr).ok());
  }
  void TearDown() override {
    server_.reset();
    std::filesystem::remove_all(root_);
  }

  VariantSpec CTreeSpec() {
    VariantSpec spec;
    spec.sax = TestSax();
    spec.family = IndexFamily::kCTree;
    return spec;
  }

  std::string root_;
  std::unique_ptr<Server> server_;
  series::SeriesCollection collection_{64};
};

TEST_F(ServerTest, BuildReportsMetricsAsJson) {
  auto report = server_->BuildIndex("ct", CTreeSpec(), "walk").TakeValue();
  EXPECT_NE(report.find("\"variant\":\"CTree\""), std::string::npos);
  EXPECT_NE(report.find("\"entries\":300"), std::string::npos);
  EXPECT_NE(report.find("\"build_seconds\":"), std::string::npos);
  EXPECT_NE(report.find("\"sequential_writes\":"), std::string::npos);
}

TEST_F(ServerTest, QueryFindsPlantedSeries) {
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  QueryRequest req;
  req.index = "ct";
  req.query.assign(collection_[42].begin(), collection_[42].end());
  req.exact = true;
  auto response = server_->Query(req).TakeValue();
  EXPECT_NE(response.find("\"found\":true"), std::string::npos);
  EXPECT_NE(response.find("\"series_id\":42"), std::string::npos);
}

TEST_F(ServerTest, QueryWithHeatmapEmbedsAccessPattern) {
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  QueryRequest req;
  req.index = "ct";
  req.query.assign(collection_[1].begin(), collection_[1].end());
  req.capture_heatmap = true;
  auto response = server_->Query(req).TakeValue();
  EXPECT_NE(response.find("\"heatmap\":{"), std::string::npos);
  EXPECT_NE(response.find("\"access_locality\":"), std::string::npos);
}

TEST_F(ServerTest, DuplicateNamesRejected) {
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  EXPECT_EQ(server_->BuildIndex("ct", CTreeSpec(), "walk").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server_->RegisterDataset("walk", collection_, nullptr).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ServerTest, UnknownTargetsRejected) {
  EXPECT_EQ(server_->BuildIndex("x", CTreeSpec(), "nope").status().code(),
            StatusCode::kNotFound);
  QueryRequest req;
  req.index = "missing";
  req.query.assign(64, 0.0f);
  EXPECT_EQ(server_->Query(req).status().code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, StreamingLifecycle) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = IndexFamily::kClsm;
  spec.mode = StreamMode::kBTP;
  spec.buffer_entries = 64;
  ASSERT_TRUE(server_->CreateStream("live", spec).ok());

  workload::RandomWalkGenerator gen(64, 31);
  auto batch = gen.Generate(100);
  std::vector<int64_t> timestamps(100);
  for (size_t i = 0; i < 100; ++i) timestamps[i] = static_cast<int64_t>(i);
  auto report = server_->IngestBatch("live", batch, timestamps).TakeValue();
  EXPECT_NE(report.find("\"ingested\":100"), std::string::npos);

  QueryRequest req;
  req.index = "live";
  req.query.assign(batch[50].begin(), batch[50].end());
  req.window = core::TimeWindow{0, 99};
  auto response = server_->Query(req).TakeValue();
  EXPECT_NE(response.find("\"found\":true"), std::string::npos);
}

TEST_F(ServerTest, ListIndexesEnumeratesAll) {
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  VariantSpec lsm_spec;
  lsm_spec.sax = TestSax();
  lsm_spec.family = IndexFamily::kClsm;
  lsm_spec.mode = StreamMode::kPP;
  ASSERT_TRUE(server_->CreateStream("live", lsm_spec).ok());
  std::string list = server_->ListIndexes();
  EXPECT_NE(list.find("\"name\":\"ct\""), std::string::npos);
  EXPECT_NE(list.find("\"name\":\"live\""), std::string::npos);
  EXPECT_NE(list.find("\"streaming\":true"), std::string::npos);
}

TEST_F(ServerTest, QueryBatchMatchesSequentialQueries) {
  // Three indexes of different families over the same dataset; a batch
  // mixing targets must return, positionally, exactly what sequential
  // Query calls return.
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  VariantSpec ads = CTreeSpec();
  ads.family = IndexFamily::kAds;
  ASSERT_TRUE(server_->BuildIndex("ads", ads, "walk").ok());
  VariantSpec lsm = CTreeSpec();
  lsm.family = IndexFamily::kClsm;
  ASSERT_TRUE(server_->BuildIndex("lsm", lsm, "walk").ok());

  std::vector<QueryRequest> requests;
  for (int q = 0; q < 12; ++q) {
    QueryRequest req;
    req.index = q % 3 == 0 ? "ct" : (q % 3 == 1 ? "ads" : "lsm");
    req.query.assign(collection_[(q * 29) % 300].begin(),
                     collection_[(q * 29) % 300].end());
    requests.push_back(std::move(req));
  }

  auto batched = server_->QueryBatch(requests, 4);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batched[i].ok()) << i << ": " << batched[i].status().ToString();
    // Every query plants an exact member of the dataset: found at ~0.
    EXPECT_NE(batched[i].value().find("\"found\":true"), std::string::npos)
        << i;
    // Same index + same query sequentially must find the same series.
    auto solo = server_->Query(requests[i]).TakeValue();
    auto id_of = [](const std::string& json) {
      auto pos = json.find("\"series_id\":");
      return json.substr(pos, json.find(',', pos) - pos);
    };
    EXPECT_EQ(id_of(batched[i].value()), id_of(solo)) << i;
  }
}

TEST_F(ServerTest, QueryBatchReportsPerRequestErrors) {
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  std::vector<QueryRequest> requests(3);
  requests[0].index = "ct";
  requests[0].query.assign(collection_[5].begin(), collection_[5].end());
  requests[1].index = "missing";
  requests[1].query.assign(64, 0.0f);
  requests[2].index = "ct";
  requests[2].query.assign(collection_[7].begin(), collection_[7].end());

  auto results = server_->QueryBatch(requests, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
}

TEST_F(ServerTest, QueryBatchEmptyAndDefaultThreads) {
  EXPECT_TRUE(server_->QueryBatch({}).empty());
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  std::vector<QueryRequest> one(1);
  one[0].index = "ct";
  one[0].query.assign(collection_[0].begin(), collection_[0].end());
  auto results = server_->QueryBatch(one);  // threads = 0 -> hardware pick.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

TEST_F(ServerTest, AsyncStreamIngestsAndDrains) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = IndexFamily::kClsm;
  spec.mode = StreamMode::kBTP;
  spec.buffer_entries = 64;
  spec.async_ingest = true;  // Defaults to the shared background pool.
  auto created = server_->CreateStream("alive", spec).TakeValue();
  EXPECT_NE(created.find("\"variant\":\"CLSM-BTP-async\""),
            std::string::npos);

  workload::RandomWalkGenerator gen(64, 33);
  auto batch = gen.Generate(300);
  std::vector<int64_t> timestamps(300);
  for (size_t i = 0; i < 300; ++i) timestamps[i] = static_cast<int64_t>(i);
  auto report = server_->IngestBatch("alive", batch, timestamps).TakeValue();
  EXPECT_NE(report.find("\"ingested\":300"), std::string::npos);
  EXPECT_NE(report.find("\"pending_tasks\":"), std::string::npos);
  EXPECT_NE(report.find("\"seals_completed\":"), std::string::npos);

  // The drain barrier quiesces the stream: everything sealed, nothing
  // pending, and the answer over the full batch is exact.
  auto drained = server_->DrainStream("alive").TakeValue();
  EXPECT_NE(drained.find("\"drained\":true"), std::string::npos);
  EXPECT_NE(drained.find("\"total_entries\":300"), std::string::npos);
  EXPECT_NE(drained.find("\"buffered\":0"), std::string::npos);
  EXPECT_NE(drained.find("\"pending_tasks\":0"), std::string::npos);

  QueryRequest req;
  req.index = "alive";
  req.query.assign(batch[123].begin(), batch[123].end());
  auto response = server_->Query(req).TakeValue();
  EXPECT_NE(response.find("\"found\":true"), std::string::npos);
  EXPECT_NE(response.find("\"series_id\":123"), std::string::npos);

  EXPECT_EQ(server_->DrainStream("nope").status().code(),
            StatusCode::kNotFound);
  // Draining a static index is equally a NotFound: it is not a stream.
  ASSERT_TRUE(server_->BuildIndex("ct", CTreeSpec(), "walk").ok());
  EXPECT_EQ(server_->DrainStream("ct").status().code(),
            StatusCode::kNotFound);
}

TEST(FactoryAsyncSpecTest, AsyncValidationFollowsBufferingRule) {
  VariantSpec spec;
  spec.sax = series::SaxConfig{.series_length = 64, .num_segments = 8,
                               .bits_per_segment = 8};
  spec.async_ingest = true;
  std::string why;
  // Static builds don't take the async knob.
  spec.mode = StreamMode::kStatic;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  // A live ADS+ tree cannot be sealed behind ingestion's back.
  spec.mode = StreamMode::kTP;
  spec.family = IndexFamily::kAds;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  // PP only buffers for CLSM.
  spec.mode = StreamMode::kPP;
  spec.family = IndexFamily::kCTree;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  // The buffering cells are valid, and the name advertises the mode.
  spec.family = IndexFamily::kClsm;
  EXPECT_TRUE(SpecIsValid(spec, &why)) << why;
  EXPECT_EQ(VariantName(spec), "CLSM-PP-async");
  spec.mode = StreamMode::kBTP;
  EXPECT_TRUE(SpecIsValid(spec, &why)) << why;
  spec.mode = StreamMode::kTP;
  spec.family = IndexFamily::kCTree;
  EXPECT_TRUE(SpecIsValid(spec, &why)) << why;
  EXPECT_EQ(VariantName(spec), "CTree-TP-async");
}

TEST_F(ServerTest, RecommendJsonCarriesRationale) {
  Scenario s;
  s.sax = TestSax();
  s.streaming = true;
  s.window_queries = true;
  std::string json = server_->RecommendJson(s);
  EXPECT_NE(json.find("\"variant\":\"CLSM"), std::string::npos);
  EXPECT_NE(json.find("\"rationale\":["), std::string::npos);
}

}  // namespace
}  // namespace palm
}  // namespace coconut
