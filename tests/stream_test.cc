#include <gtest/gtest.h>

#include "core/adapters.h"
#include "stream/btp.h"
#include "stream/pp.h"
#include "stream/tp.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

using core::SearchOptions;
using core::TimeWindow;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("stream_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  // Ingests `collection` with timestamp = ordinal into `index`.
  void IngestAll(StreamingIndex* index,
                 const series::SeriesCollection& collection) {
    ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
    for (size_t i = 0; i < collection.size(); ++i) {
      ASSERT_TRUE(
          index->Ingest(i, collection[i], static_cast<int64_t>(i)).ok());
    }
  }

  // Ground truth restricted to a window (timestamps = ordinals).
  double WindowTruth(const series::SeriesCollection& collection,
                     std::span<const float> query, const TimeWindow& window) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < collection.size(); ++i) {
      if (!window.Contains(static_cast<int64_t>(i))) continue;
      best = std::min(best, series::EuclideanSquared(query, collection[i]));
    }
    return best;
  }

  std::unique_ptr<TemporalPartitioningIndex> MakeTp(
      PartitionBackend backend, size_t buffer_entries) {
    TemporalPartitioningIndex::Options opts;
    opts.sax = TestSax();
    opts.backend = backend;
    opts.buffer_entries = buffer_entries;
    return TemporalPartitioningIndex::Create(mgr_.get(), "tp", opts, nullptr,
                                             raw_.get())
        .TakeValue();
  }

  std::unique_ptr<BoundedTemporalPartitioningIndex> MakeBtp(
      size_t buffer_entries, int merge_k) {
    BoundedTemporalPartitioningIndex::BtpOptions opts;
    opts.sax = TestSax();
    opts.buffer_entries = buffer_entries;
    opts.merge_k = merge_k;
    return BoundedTemporalPartitioningIndex::Create(mgr_.get(), "btp", opts,
                                                    nullptr, raw_.get())
        .TakeValue();
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

// ------------------------------------------------------------------ PP

TEST_F(StreamTest, PpOverClsmMatchesWindowedBruteForce) {
  auto collection = testutil::RandomWalkCollection(600, 64, 1);
  clsm::Clsm::Options copts;
  copts.sax = TestSax();
  copts.buffer_entries = 100;
  auto inner = core::ClsmIndexAdapter::Create(mgr_.get(), "lsm", copts,
                                              nullptr, raw_.get())
                   .TakeValue();
  PostProcessingIndex pp(std::move(inner));
  IngestAll(&pp, collection);
  EXPECT_EQ(pp.num_entries(), 600u);
  EXPECT_EQ(pp.num_partitions(), 1u);
  EXPECT_EQ(pp.describe(), "CLSM-PP");

  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 599}, {100, 300}, {550, 599}, {0, 50}}) {
    SearchOptions opts;
    opts.window = TimeWindow{lo, hi};
    std::vector<float> query = testutil::NoisyCopy(collection, 200, 0.5, 99);
    auto got = pp.ExactSearch(query, opts, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_GE(got.timestamp, lo);
    EXPECT_LE(got.timestamp, hi);
    EXPECT_NEAR(got.distance_sq,
                WindowTruth(collection, query, opts.window), 1e-6)
        << "window [" << lo << "," << hi << "]";
  }
}

// ------------------------------------------------------------------ TP

TEST_F(StreamTest, TpSealsPartitionsAndCountsEntries) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 2);
  auto tp = MakeTp(PartitionBackend::kSeqTable, 128);
  IngestAll(tp.get(), collection);
  EXPECT_EQ(tp->num_entries(), 1000u);
  // 1000/128 = 7 sealed partitions + a partial buffer.
  EXPECT_EQ(tp->num_partitions(), 7u);
  ASSERT_TRUE(tp->FlushAll().ok());
  EXPECT_EQ(tp->num_partitions(), 8u);
  EXPECT_EQ(tp->num_entries(), 1000u);
  EXPECT_EQ(tp->describe(), "CTree-TP");
}

TEST_F(StreamTest, TpExactMatchesWindowedBruteForce) {
  auto collection = testutil::RandomWalkCollection(800, 64, 3);
  auto tp = MakeTp(PartitionBackend::kSeqTable, 100);
  IngestAll(tp.get(), collection);
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 799}, {250, 450}, {700, 799}, {0, 99}, {95, 105}}) {
    SearchOptions opts;
    opts.window = TimeWindow{lo, hi};
    std::vector<float> query = testutil::NoisyCopy(collection, 400, 0.5, 7);
    auto got = tp->ExactSearch(query, opts, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_GE(got.timestamp, lo);
    EXPECT_LE(got.timestamp, hi);
    EXPECT_NEAR(got.distance_sq,
                WindowTruth(collection, query, opts.window), 1e-6);
  }
}

TEST_F(StreamTest, TpSkipsPartitionsOutsideWindow) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 4);
  auto tp = MakeTp(PartitionBackend::kSeqTable, 100);
  IngestAll(tp.get(), collection);
  ASSERT_TRUE(tp->FlushAll().ok());
  ASSERT_EQ(tp->num_partitions(), 10u);

  // Window covering only the newest partition.
  core::QueryCounters counters;
  SearchOptions opts;
  opts.window = TimeWindow{900, 999};
  std::vector<float> query(collection[950].begin(), collection[950].end());
  ASSERT_TRUE(tp->ExactSearch(query, opts, &counters).ok());
  EXPECT_EQ(counters.partitions_skipped, 9u);
  EXPECT_EQ(counters.partitions_visited, 1u);

  // Full-history window visits everything.
  counters.Reset();
  opts.window = TimeWindow::All();
  ASSERT_TRUE(tp->ExactSearch(query, opts, &counters).ok());
  EXPECT_EQ(counters.partitions_visited, 10u);
}

TEST_F(StreamTest, TpWithAdsBackendMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(500, 64, 5);
  auto tp = MakeTp(PartitionBackend::kAds, 100);
  IngestAll(tp.get(), collection);
  EXPECT_EQ(tp->describe(), "ADS+-TP");
  EXPECT_EQ(tp->num_entries(), 500u);
  SearchOptions opts;
  opts.window = TimeWindow{50, 450};
  std::vector<float> query = testutil::NoisyCopy(collection, 250, 0.4, 8);
  auto got = tp->ExactSearch(query, opts, nullptr).TakeValue();
  ASSERT_TRUE(got.found);
  EXPECT_NEAR(got.distance_sq, WindowTruth(collection, query, opts.window),
              1e-6);
}

// ------------------------------------------------------------------ BTP

TEST_F(StreamTest, BtpBoundsPartitionCount) {
  auto collection = testutil::RandomWalkCollection(3200, 64, 6);
  auto tp = MakeTp(PartitionBackend::kSeqTable, 100);
  // Fresh raw store contents shared; use separate indexes over the same
  // collection.
  auto btp = MakeBtp(100, 2);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        tp->Ingest(i, collection[i], static_cast<int64_t>(i)).ok());
    ASSERT_TRUE(
        btp->Ingest(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  // TP accumulates linearly: 32 partitions. BTP with merge_k=2 keeps at
  // most one partition per size class: <= log2(32)+1 = 6.
  EXPECT_EQ(tp->num_partitions(), 32u);
  EXPECT_LE(btp->num_partitions(), 6u);
  EXPECT_GT(btp->merges_performed(), 0u);
  EXPECT_EQ(btp->num_entries(), 3200u);
  EXPECT_EQ(btp->describe(), "CLSM-BTP");
}

TEST_F(StreamTest, BtpExactMatchesWindowedBruteForce) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 7);
  auto btp = MakeBtp(64, 2);
  IngestAll(btp.get(), collection);
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 999}, {300, 600}, {900, 999}, {0, 63}, {500, 510}}) {
    SearchOptions opts;
    opts.window = TimeWindow{lo, hi};
    std::vector<float> query = testutil::NoisyCopy(collection, 500, 0.5, 9);
    auto got = btp->ExactSearch(query, opts, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_GE(got.timestamp, lo);
    EXPECT_LE(got.timestamp, hi);
    EXPECT_NEAR(got.distance_sq,
                WindowTruth(collection, query, opts.window), 1e-6)
        << "window [" << lo << "," << hi << "]";
  }
}

TEST_F(StreamTest, BtpMergedPartitionsPreserveTimeRanges) {
  // 700 entries at buffer 100 = 7 seals -> partitions of sizes 4+2+1
  // (classes 2, 1, 0), covering disjoint contiguous time ranges.
  auto collection = testutil::RandomWalkCollection(700, 64, 8);
  auto btp = MakeBtp(100, 2);
  IngestAll(btp.get(), collection);
  ASSERT_TRUE(btp->FlushAll().ok());
  ASSERT_EQ(btp->num_partitions(), 3u);

  // A window over the newest 100 entries intersects only the newest
  // (class-0) partition; the two older ones are skipped.
  core::QueryCounters counters;
  SearchOptions opts;
  opts.window = TimeWindow{620, 699};
  std::vector<float> query(collection[650].begin(), collection[650].end());
  auto got = btp->ExactSearch(query, opts, &counters).TakeValue();
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.series_id, 650u);
  EXPECT_GT(counters.partitions_skipped, 0u);
}

TEST_F(StreamTest, BtpApproxTouchesBoundedPartitions) {
  auto collection = testutil::RandomWalkCollection(3200, 64, 10);
  auto btp = MakeBtp(100, 2);
  IngestAll(btp.get(), collection);
  core::QueryCounters counters;
  std::vector<float> query = testutil::NoisyCopy(collection, 100, 0.4, 11);
  ASSERT_TRUE(btp->ApproxSearch(query, {}, &counters).ok());
  // Approximate cost is one probe per live partition, which BTP bounds
  // logarithmically.
  EXPECT_LE(counters.partitions_visited, 6u);
}

TEST_F(StreamTest, BtpMergesAreSequentialIo) {
  auto collection = testutil::RandomWalkCollection(1600, 64, 12);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  auto btp = MakeBtp(100, 2);
  mgr_->io_stats()->Reset();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(btp->Ingest(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  const auto& io = *mgr_->io_stats();
  EXPECT_GT(io.sequential_writes, io.random_writes * 2);
}

TEST_F(StreamTest, RejectsBadOptions) {
  EXPECT_FALSE(BoundedTemporalPartitioningIndex::Create(
                   mgr_.get(), "x",
                   {.sax = TestSax(), .buffer_entries = 128, .merge_k = 1},
                   nullptr, raw_.get())
                   .ok());
  TemporalPartitioningIndex::Options bad;
  bad.sax = TestSax();
  bad.buffer_entries = 0;
  EXPECT_FALSE(TemporalPartitioningIndex::Create(mgr_.get(), "x", bad,
                                                 nullptr, raw_.get())
                   .ok());
}

TEST_F(StreamTest, EmptyStreamFindsNothing) {
  auto btp = MakeBtp(64, 2);
  std::vector<float> query(64, 0.0f);
  EXPECT_FALSE(btp->ApproxSearch(query, {}, nullptr).TakeValue().found);
  EXPECT_FALSE(btp->ExactSearch(query, {}, nullptr).TakeValue().found);
  EXPECT_EQ(btp->num_entries(), 0u);
}

}  // namespace
}  // namespace stream
}  // namespace coconut
