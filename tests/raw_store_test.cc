#include <gtest/gtest.h>

#include "core/raw_store.h"
#include "tests/test_util.h"

namespace coconut {
namespace core {
namespace {

class RawStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("raw_store_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<storage::StorageManager> mgr_;
};

TEST_F(RawStoreTest, AppendAssignsSequentialIds) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
  std::vector<float> s(8, 1.0f);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store->Append(s).TakeValue(), i);
  }
  EXPECT_EQ(store->count(), 10u);
}

TEST_F(RawStoreTest, GetReturnsExactValues) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 16).TakeValue();
  auto collection = testutil::RandomWalkCollection(200, 16, 1);
  ASSERT_TRUE(testutil::FillRawStore(store.get(), collection).ok());
  std::vector<float> out(16);
  for (size_t i = 0; i < 200; i += 17) {
    ASSERT_TRUE(store->Get(i, out).ok());
    for (size_t j = 0; j < 16; ++j) EXPECT_EQ(out[j], collection[i][j]);
  }
}

TEST_F(RawStoreTest, GetServesUnflushedFromBuffer) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 4).TakeValue();
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> b{5, 6, 7, 8};
  ASSERT_TRUE(store->Append(a).ok());
  ASSERT_TRUE(store->Append(b).ok());
  // Not flushed: still readable.
  std::vector<float> out(4);
  ASSERT_TRUE(store->Get(1, out).ok());
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[3], 8.0f);
}

TEST_F(RawStoreTest, PersistsAcrossReopen) {
  auto collection = testutil::RandomWalkCollection(100, 32, 2);
  {
    auto store = RawSeriesStore::Create(mgr_.get(), "raw", 32).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(store.get(), collection).ok());
  }
  auto reopened = RawSeriesStore::Open(mgr_.get(), "raw").TakeValue();
  EXPECT_EQ(reopened->count(), 100u);
  EXPECT_EQ(reopened->series_length(), 32);
  std::vector<float> out(32);
  ASSERT_TRUE(reopened->Get(99, out).ok());
  for (size_t j = 0; j < 32; ++j) EXPECT_EQ(out[j], collection[99][j]);
}

TEST_F(RawStoreTest, RejectsBadArguments) {
  EXPECT_FALSE(RawSeriesStore::Create(mgr_.get(), "raw", 0).ok());
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
  std::vector<float> wrong(4, 0.0f);
  EXPECT_FALSE(store->Append(wrong).ok());
  std::vector<float> out(8);
  EXPECT_EQ(store->Get(0, out).code(), StatusCode::kNotFound);
  std::vector<float> small(4);
  ASSERT_TRUE(store->Append(std::vector<float>(8, 1.0f)).ok());
  EXPECT_FALSE(store->Get(0, small).ok());
}

TEST_F(RawStoreTest, OpenRejectsForeignFile) {
  auto f = mgr_->CreateFile("junk").TakeValue();
  storage::Page p;
  ASSERT_TRUE(f->WritePage(0, p).ok());
  EXPECT_FALSE(RawSeriesStore::Open(mgr_.get(), "junk").ok());
}

TEST_F(RawStoreTest, SteadyStateIngestionIsSequential) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  auto collection = testutil::RandomWalkCollection(1000, 64, 3);
  mgr_->io_stats()->Reset();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(store->Append(collection[i]).ok());
  }
  // No Flush yet: data drains in buffered appends, zero random writes.
  EXPECT_EQ(mgr_->io_stats()->random_writes, 0u);
  ASSERT_TRUE(store->Flush().ok());
  // The explicit flush pays exactly one header write.
  EXPECT_LE(mgr_->io_stats()->random_writes, 1u);
}

TEST_F(RawStoreTest, SyncPersistsWithoutExplicitFlush) {
  auto collection = testutil::RandomWalkCollection(10, 8, 4);
  {
    auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      ASSERT_TRUE(store->Append(collection[i]).ok());
    }
    // Sync alone must imply a flush: buffered series + header hit disk.
    ASSERT_TRUE(store->Sync().ok());
  }
  auto reopened = RawSeriesStore::Open(mgr_.get(), "raw").TakeValue();
  ASSERT_EQ(reopened->count(), 10u);
  std::vector<float> out(8);
  ASSERT_TRUE(reopened->Get(9, out).ok());
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(out[j], collection[9][j]);
}

// OpenTruncated is the WAL's recovery entry point: whatever a crashed
// process left behind, the file must come back holding exactly the
// durable count the log proved, ready for replay to re-append the rest.

TEST_F(RawStoreTest, OpenTruncatedCutsLongerFile) {
  auto collection = testutil::RandomWalkCollection(20, 8, 5);
  {
    auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(store.get(), collection).ok());
  }
  auto cut =
      RawSeriesStore::OpenTruncated(mgr_.get(), "raw", 8, 12).TakeValue();
  EXPECT_EQ(cut->count(), 12u);
  std::vector<float> out(8);
  for (size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(cut->Get(i, out).ok());
    for (size_t j = 0; j < 8; ++j) EXPECT_EQ(out[j], collection[i][j]);
  }
  EXPECT_EQ(cut->Get(12, out).code(), StatusCode::kNotFound)
      << "series past the durable count must be gone";

  // Replay re-appends: ids continue from the durable count.
  EXPECT_EQ(cut->Append(collection[12]).TakeValue(), 12u);
}

TEST_F(RawStoreTest, OpenTruncatedSurvivesStaleHeader) {
  // A crash can leave the header behind the appended tail (count written
  // before the dying flush) — the truncated reopen must trust the
  // requested count, not the stale header.
  auto collection = testutil::RandomWalkCollection(6, 8, 6);
  {
    auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(store->Append(collection[i]).ok());
    }
    ASSERT_TRUE(store->Sync().ok());  // Header says 4.
    for (size_t i = 4; i < 6; ++i) {
      ASSERT_TRUE(store->Append(collection[i]).ok());
    }
    ASSERT_TRUE(store->Flush().ok());  // 6 series on disk.
  }
  auto cut =
      RawSeriesStore::OpenTruncated(mgr_.get(), "raw", 8, 5).TakeValue();
  EXPECT_EQ(cut->count(), 5u);
  std::vector<float> out(8);
  ASSERT_TRUE(cut->Get(4, out).ok());
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(out[j], collection[4][j]);

  // The cut is durable in the header too: a plain reopen agrees.
  ASSERT_TRUE(cut->Sync().ok());
  cut.reset();
  auto reopened = RawSeriesStore::Open(mgr_.get(), "raw").TakeValue();
  EXPECT_EQ(reopened->count(), 5u);
}

TEST_F(RawStoreTest, OpenTruncatedCreatesMissingFileEmpty) {
  ASSERT_FALSE(mgr_->Exists("raw"));
  auto store =
      RawSeriesStore::OpenTruncated(mgr_.get(), "raw", 8, 0).TakeValue();
  EXPECT_EQ(store->count(), 0u);
  EXPECT_EQ(store->series_length(), 8);
  EXPECT_TRUE(mgr_->Exists("raw"));
  std::vector<float> out(8);
  EXPECT_EQ(store->Get(0, out).code(), StatusCode::kNotFound);
}

TEST_F(RawStoreTest, OpenTruncatedZeroExtendsShorterFile) {
  // A crash can also lose the buffered tail the log proved durable: the
  // file comes back *shorter* than `count`. The store is extended with
  // zeros — replay overwrites the range from the log — and existing
  // series stay intact.
  auto collection = testutil::RandomWalkCollection(3, 8, 7);
  {
    auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(store.get(), collection).ok());
  }
  auto store =
      RawSeriesStore::OpenTruncated(mgr_.get(), "raw", 8, 6).TakeValue();
  EXPECT_EQ(store->count(), 6u);
  std::vector<float> out(8);
  ASSERT_TRUE(store->Get(0, out).ok());
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(out[j], collection[0][j]);
  ASSERT_TRUE(store->Get(5, out).ok());
  for (size_t j = 0; j < 8; ++j) EXPECT_EQ(out[j], 0.0f);
}

}  // namespace
}  // namespace core
}  // namespace coconut
