#include <gtest/gtest.h>

#include "core/raw_store.h"
#include "tests/test_util.h"

namespace coconut {
namespace core {
namespace {

class RawStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("raw_store_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<storage::StorageManager> mgr_;
};

TEST_F(RawStoreTest, AppendAssignsSequentialIds) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
  std::vector<float> s(8, 1.0f);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store->Append(s).TakeValue(), i);
  }
  EXPECT_EQ(store->count(), 10u);
}

TEST_F(RawStoreTest, GetReturnsExactValues) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 16).TakeValue();
  auto collection = testutil::RandomWalkCollection(200, 16, 1);
  ASSERT_TRUE(testutil::FillRawStore(store.get(), collection).ok());
  std::vector<float> out(16);
  for (size_t i = 0; i < 200; i += 17) {
    ASSERT_TRUE(store->Get(i, out).ok());
    for (size_t j = 0; j < 16; ++j) EXPECT_EQ(out[j], collection[i][j]);
  }
}

TEST_F(RawStoreTest, GetServesUnflushedFromBuffer) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 4).TakeValue();
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> b{5, 6, 7, 8};
  ASSERT_TRUE(store->Append(a).ok());
  ASSERT_TRUE(store->Append(b).ok());
  // Not flushed: still readable.
  std::vector<float> out(4);
  ASSERT_TRUE(store->Get(1, out).ok());
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[3], 8.0f);
}

TEST_F(RawStoreTest, PersistsAcrossReopen) {
  auto collection = testutil::RandomWalkCollection(100, 32, 2);
  {
    auto store = RawSeriesStore::Create(mgr_.get(), "raw", 32).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(store.get(), collection).ok());
  }
  auto reopened = RawSeriesStore::Open(mgr_.get(), "raw").TakeValue();
  EXPECT_EQ(reopened->count(), 100u);
  EXPECT_EQ(reopened->series_length(), 32);
  std::vector<float> out(32);
  ASSERT_TRUE(reopened->Get(99, out).ok());
  for (size_t j = 0; j < 32; ++j) EXPECT_EQ(out[j], collection[99][j]);
}

TEST_F(RawStoreTest, RejectsBadArguments) {
  EXPECT_FALSE(RawSeriesStore::Create(mgr_.get(), "raw", 0).ok());
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 8).TakeValue();
  std::vector<float> wrong(4, 0.0f);
  EXPECT_FALSE(store->Append(wrong).ok());
  std::vector<float> out(8);
  EXPECT_EQ(store->Get(0, out).code(), StatusCode::kNotFound);
  std::vector<float> small(4);
  ASSERT_TRUE(store->Append(std::vector<float>(8, 1.0f)).ok());
  EXPECT_FALSE(store->Get(0, small).ok());
}

TEST_F(RawStoreTest, OpenRejectsForeignFile) {
  auto f = mgr_->CreateFile("junk").TakeValue();
  storage::Page p;
  ASSERT_TRUE(f->WritePage(0, p).ok());
  EXPECT_FALSE(RawSeriesStore::Open(mgr_.get(), "junk").ok());
}

TEST_F(RawStoreTest, SteadyStateIngestionIsSequential) {
  auto store = RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  auto collection = testutil::RandomWalkCollection(1000, 64, 3);
  mgr_->io_stats()->Reset();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(store->Append(collection[i]).ok());
  }
  // No Flush yet: data drains in buffered appends, zero random writes.
  EXPECT_EQ(mgr_->io_stats()->random_writes, 0u);
  ASSERT_TRUE(store->Flush().ok());
  // The explicit flush pays exactly one header write.
  EXPECT_LE(mgr_->io_stats()->random_writes, 1u);
}

}  // namespace
}  // namespace core
}  // namespace coconut
