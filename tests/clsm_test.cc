#include <gtest/gtest.h>

#include "clsm/clsm.h"
#include "tests/test_util.h"

namespace coconut {
namespace clsm {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class ClsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("clsm_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<Clsm> MakeLsm(Clsm::Options options,
                                const series::SeriesCollection& collection,
                                const std::string& prefix = "lsm") {
    raw_ = core::RawSeriesStore::Create(mgr_.get(), prefix + ".raw", 64)
               .TakeValue();
    EXPECT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
    auto lsm =
        Clsm::Create(mgr_.get(), prefix, options, nullptr, raw_.get())
            .TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      EXPECT_TRUE(lsm->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
    }
    return lsm;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_F(ClsmTest, RejectsBadOptions) {
  EXPECT_FALSE(Clsm::Create(mgr_.get(), "x",
                            {.sax = TestSax(), .growth_factor = 1},
                            nullptr, nullptr)
                   .ok());
  EXPECT_FALSE(Clsm::Create(mgr_.get(), "x",
                            {.sax = TestSax(), .buffer_entries = 0},
                            nullptr, nullptr)
                   .ok());
  // Non-materialized without raw store.
  EXPECT_FALSE(
      Clsm::Create(mgr_.get(), "x", {.sax = TestSax()}, nullptr, nullptr)
          .ok());
}

TEST_F(ClsmTest, CountsAcrossBufferAndLevels) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 1);
  auto lsm = MakeLsm({.sax = TestSax(), .growth_factor = 3,
                      .buffer_entries = 128},
                     collection);
  EXPECT_EQ(lsm->num_entries(), 1000u);
  EXPECT_GT(lsm->num_active_levels(), 0u);
  ASSERT_TRUE(lsm->FlushBuffer().ok());
  EXPECT_EQ(lsm->buffered_entries(), 0u);
  EXPECT_EQ(lsm->num_entries(), 1000u);
}

TEST_F(ClsmTest, LevelSizesRespectCapacity) {
  auto collection = testutil::RandomWalkCollection(3000, 64, 2);
  const int T = 3;
  const size_t B = 100;
  auto lsm = MakeLsm({.sax = TestSax(), .growth_factor = T,
                      .buffer_entries = B},
                     collection);
  for (size_t level = 0; level + 1 < 8; ++level) {
    uint64_t cap = B;
    for (size_t i = 0; i <= level; ++i) cap *= T;
    EXPECT_LE(lsm->level_entries(level), cap) << "level " << level;
  }
}

TEST_F(ClsmTest, ExactSearchMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(1200, 64, 3);
  auto lsm = MakeLsm({.sax = TestSax(), .growth_factor = 4,
                      .buffer_entries = 150},
                     collection);
  for (int q = 0; q < 20; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 61 % 1200, 0.4, 10 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = lsm->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6) << "query " << q;
  }
}

TEST_F(ClsmTest, ExactSearchSeesUnflushedBuffer) {
  auto collection = testutil::RandomWalkCollection(200, 64, 4);
  auto lsm = MakeLsm({.sax = TestSax(), .buffer_entries = 1000},
                     collection);
  // Everything is still in the memtable.
  EXPECT_EQ(lsm->buffered_entries(), 200u);
  std::vector<float> query(collection[77].begin(), collection[77].end());
  auto got = lsm->ExactSearch(query, {}, nullptr).TakeValue();
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.series_id, 77u);
  EXPECT_NEAR(got.distance_sq, 0.0, 1e-9);
}

TEST_F(ClsmTest, MaterializedExactMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(800, 64, 5);
  auto lsm = MakeLsm({.sax = TestSax(), .materialized = true,
                      .growth_factor = 3, .buffer_entries = 100},
                     collection);
  for (int q = 0; q < 10; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 71 % 800, 0.4, 30 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = lsm->ExactSearch(query, {}, nullptr).TakeValue();
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6);
  }
}

TEST_F(ClsmTest, GrowthFactorTradesWriteAmpForLevels) {
  auto collection = testutil::RandomWalkCollection(2000, 64, 6);
  auto lsm_small_t = MakeLsm({.sax = TestSax(), .growth_factor = 2,
                              .buffer_entries = 100},
                             collection, "t2");
  auto lsm_big_t = MakeLsm({.sax = TestSax(), .growth_factor = 8,
                            .buffer_entries = 100},
                           collection, "t8");
  // Bigger T: fewer active levels (reads touch fewer runs)...
  EXPECT_LE(lsm_big_t->num_active_levels(),
            lsm_small_t->num_active_levels());
  // ...but more rewriting per entry (write amplification).
  EXPECT_GT(lsm_big_t->entries_rewritten(),
            lsm_small_t->entries_rewritten());
}

TEST_F(ClsmTest, IngestionIsSequentialIo) {
  auto collection = testutil::RandomWalkCollection(2000, 64, 7);
  raw_ =
      core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  mgr_->io_stats()->Reset();
  auto lsm = Clsm::Create(mgr_.get(), "lsm",
                          {.sax = TestSax(), .growth_factor = 3,
                           .buffer_entries = 128},
                          nullptr, raw_.get())
                 .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(lsm->Insert(i, collection[i], 0).ok());
  }
  ASSERT_TRUE(lsm->FlushBuffer().ok());
  const auto& io = *mgr_->io_stats();
  // Log-structured ingestion: sequential writes dominate. Random writes are
  // one header per run built.
  EXPECT_GT(io.sequential_writes, io.random_writes * 3);
}

TEST_F(ClsmTest, WindowQueriesFilterByTimestamp) {
  auto collection = testutil::RandomWalkCollection(500, 64, 8);
  auto lsm = MakeLsm({.sax = TestSax(), .growth_factor = 3,
                      .buffer_entries = 64},
                     collection);
  // Exact copy of series 400, but the window excludes timestamp 400.
  std::vector<float> query(collection[400].begin(), collection[400].end());
  core::SearchOptions opts;
  opts.window = core::TimeWindow{0, 399};
  auto got = lsm->ExactSearch(query, opts, nullptr).TakeValue();
  ASSERT_TRUE(got.found);
  EXPECT_NE(got.series_id, 400u);
  EXPECT_LE(got.timestamp, 399);

  double truth = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < 400; ++i) {
    truth = std::min(truth, series::EuclideanSquared(query, collection[i]));
  }
  EXPECT_NEAR(got.distance_sq, truth, 1e-6);
}

TEST_F(ClsmTest, EmptyLsmFindsNothing) {
  raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  auto lsm = Clsm::Create(mgr_.get(), "lsm", {.sax = TestSax()}, nullptr,
                          raw_.get())
                 .TakeValue();
  std::vector<float> query(64, 0.0f);
  EXPECT_FALSE(lsm->ApproxSearch(query, {}, nullptr).TakeValue().found);
  EXPECT_FALSE(lsm->ExactSearch(query, {}, nullptr).TakeValue().found);
}

}  // namespace
}  // namespace clsm
}  // namespace coconut
