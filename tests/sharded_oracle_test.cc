// The sharding equivalence harness: for every static factory variant and
// shard count K, the sharded index's exact search must be *exactly* equal —
// same id, same distance — to the unsharded index and to the brute-force
// oracle, unconstrained and under time windows, including queries whose
// nearest neighbor lives in a different shard than the query itself routes
// to (the scatter-gather exactness argument: shards partition the dataset
// disjointly, each shard answers exactly over its partition, and the gather
// keeps the global minimum).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "palm/factory.h"
#include "palm/sharded_index.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace {

series::SaxConfig ShardSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

struct ShardCase {
  IndexFamily family;
  bool materialized;
  size_t num_shards;
};

std::string CaseName(const ::testing::TestParamInfo<ShardCase>& info) {
  VariantSpec spec;
  spec.family = info.param.family;
  spec.materialized = info.param.materialized;
  std::string name = VariantName(spec);
  for (char& c : name) {
    if (c == '+' || c == '-') c = 'x';
  }
  return name + "_K" + std::to_string(info.param.num_shards);
}

class ShardedOracleTest : public ::testing::TestWithParam<ShardCase> {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("sharded_oracle");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  VariantSpec BaseSpec() const {
    const ShardCase& c = GetParam();
    VariantSpec spec;
    spec.sax = ShardSax();
    spec.family = c.family;
    spec.materialized = c.materialized;
    spec.buffer_entries = 128;
    // Small enough that CTree shards actually spill and merge runs, so the
    // parallel merge phase inside shard builds is exercised too.
    spec.memory_budget_bytes = 64 << 10;
    spec.construction_threads = c.family == IndexFamily::kCTree ? 2 : 1;
    return spec;
  }

  /// Builds an index over `collection` (ids = ordinals, timestamps =
  /// ordinals) and finalizes it.
  std::unique_ptr<core::DataSeriesIndex> Build(
      const VariantSpec& spec, const std::string& name,
      const series::SeriesCollection& collection) {
    auto r = CreateStaticIndex(spec, mgr_.get(), name, nullptr, raw_.get());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto index = r.TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      EXPECT_TRUE(
          index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
    }
    EXPECT_TRUE(index->Finalize().ok());
    return index;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_P(ShardedOracleTest, ShardedEqualsUnshardedEqualsBruteForce) {
  const ShardCase& c = GetParam();
  auto collection = testutil::RandomWalkCollection(240, 64, 91);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  VariantSpec unsharded_spec = BaseSpec();
  auto unsharded = Build(unsharded_spec, "flat", collection);

  VariantSpec sharded_spec = BaseSpec();
  sharded_spec.num_shards = c.num_shards;
  auto sharded = Build(sharded_spec, "sharded", collection);

  ASSERT_EQ(sharded->num_entries(), collection.size());
  ASSERT_EQ(unsharded->num_entries(), collection.size());

  auto* impl = dynamic_cast<ShardedIndex*>(sharded.get());
  if (c.num_shards > 1) {
    ASSERT_NE(impl, nullptr);
    ASSERT_EQ(impl->num_shards(), c.num_shards);
    // Shards partition the dataset: entries sum to the collection size.
    uint64_t total = 0;
    for (size_t s = 0; s < impl->num_shards(); ++s) {
      total += impl->shard_entries(s);
    }
    EXPECT_EQ(total, collection.size());
  }

  // Low-noise queries route to their neighbor's shard (similar series,
  // similar key); high-noise ones land wherever their own summarization
  // says while the true neighbor sits in another shard — the
  // boundary-straddling case the gather must get right. The high-noise
  // seeds are chosen (verified against this collection/seed) so the set
  // straddles for every K in the parameter sweep.
  struct QuerySpec {
    int q;
    double noise;
  };
  const QuerySpec specs[] = {{0, 0.5},  {1, 0.5},  {2, 0.5},  {3, 0.5},
                             {4, 0.5},  {5, 0.5},  {6, 0.5},  {7, 0.5},
                             {0, 3.0},  {1, 3.0},  {5, 3.0},  {7, 3.0},
                             {12, 3.0}, {14, 3.0}, {17, 3.0}, {20, 3.0}};
  size_t straddling = 0;
  for (const QuerySpec& qs : specs) {
    const int q = qs.q;
    auto query = testutil::NoisyCopy(collection, (q * 53 + 11) % 240,
                                     qs.noise, 200 + q);
    auto oracle = testutil::BruteForceKnn(collection, query, 1);
    ASSERT_EQ(oracle.size(), 1u);

    auto flat = unsharded->ExactSearch(query, {}, nullptr).TakeValue();
    auto shard = sharded->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(flat.found);
    ASSERT_TRUE(shard.found) << sharded->describe();

    // Exact equivalence: same id and same distance as both the unsharded
    // index and the linear-scan oracle.
    EXPECT_EQ(shard.series_id, oracle[0].index) << "query " << q;
    EXPECT_EQ(shard.series_id, flat.series_id) << "query " << q;
    EXPECT_NEAR(shard.distance_sq, oracle[0].distance_sq, 1e-9)
        << sharded->describe() << " query " << q;
    EXPECT_NEAR(shard.distance_sq, flat.distance_sq, 1e-9) << "query " << q;
    // And the id really is at the reported distance.
    EXPECT_NEAR(
        series::EuclideanSquared(query, collection[shard.series_id]),
        shard.distance_sq, 1e-9);

    if (impl != nullptr && c.num_shards > 1 &&
        impl->ShardOf(query) !=
            impl->ShardOf(collection[oracle[0].index])) {
      ++straddling;
    }
  }
  if (c.num_shards > 1) {
    // The query set must include answers that cross shard boundaries —
    // otherwise this suite would never catch a broken gather.
    EXPECT_GT(straddling, 0u) << "no query straddled a shard boundary; "
                                 "weaken the routing or reseed";
  }
}

TEST_P(ShardedOracleTest, WindowedShardedSearchMatchesWindowedOracle) {
  const ShardCase& c = GetParam();
  auto collection = testutil::RandomWalkCollection(200, 64, 92);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  VariantSpec sharded_spec = BaseSpec();
  sharded_spec.num_shards = c.num_shards;
  auto sharded = Build(sharded_spec, "sharded", collection);

  const core::TimeWindow window{40, 160};
  core::SearchOptions options;
  options.window = window;
  for (int q = 0; q < 5; ++q) {
    auto query = testutil::NoisyCopy(collection, (q * 71 + 9) % 200, 0.5,
                                     300 + q);
    auto oracle = testutil::BruteForceKnn(collection, query, 1, window);
    ASSERT_EQ(oracle.size(), 1u);
    auto got = sharded->ExactSearch(query, options, nullptr).TakeValue();
    ASSERT_TRUE(got.found) << sharded->describe();
    EXPECT_GE(got.timestamp, window.begin);
    EXPECT_LE(got.timestamp, window.end);
    EXPECT_EQ(got.series_id, oracle[0].index) << "query " << q;
    EXPECT_NEAR(got.distance_sq, oracle[0].distance_sq, 1e-9)
        << sharded->describe() << " query " << q;
  }
}

TEST_P(ShardedOracleTest, ApproxSearchReturnsValidCandidate) {
  const ShardCase& c = GetParam();
  auto collection = testutil::RandomWalkCollection(150, 64, 93);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  VariantSpec sharded_spec = BaseSpec();
  sharded_spec.num_shards = c.num_shards;
  auto sharded = Build(sharded_spec, "sharded", collection);

  auto query = testutil::NoisyCopy(collection, 42, 0.4, 400);
  auto got = sharded->ApproxSearch(query, {}, nullptr).TakeValue();
  ASSERT_TRUE(got.found);
  ASSERT_LT(got.series_id, collection.size());
  // Approximate answers carry no exactness contract, but the reported
  // distance must be the true distance of the reported id.
  EXPECT_NEAR(series::EuclideanSquared(query, collection[got.series_id]),
              got.distance_sq, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllShardCounts, ShardedOracleTest,
    ::testing::Values(
        ShardCase{IndexFamily::kAds, false, 1},
        ShardCase{IndexFamily::kAds, false, 2},
        ShardCase{IndexFamily::kAds, false, 4},
        ShardCase{IndexFamily::kAds, false, 7},
        ShardCase{IndexFamily::kAds, true, 1},
        ShardCase{IndexFamily::kAds, true, 2},
        ShardCase{IndexFamily::kAds, true, 4},
        ShardCase{IndexFamily::kAds, true, 7},
        ShardCase{IndexFamily::kCTree, false, 1},
        ShardCase{IndexFamily::kCTree, false, 2},
        ShardCase{IndexFamily::kCTree, false, 4},
        ShardCase{IndexFamily::kCTree, false, 7},
        ShardCase{IndexFamily::kCTree, true, 1},
        ShardCase{IndexFamily::kCTree, true, 2},
        ShardCase{IndexFamily::kCTree, true, 4},
        ShardCase{IndexFamily::kCTree, true, 7},
        ShardCase{IndexFamily::kClsm, false, 1},
        ShardCase{IndexFamily::kClsm, false, 2},
        ShardCase{IndexFamily::kClsm, false, 4},
        ShardCase{IndexFamily::kClsm, false, 7},
        ShardCase{IndexFamily::kClsm, true, 1},
        ShardCase{IndexFamily::kClsm, true, 2},
        ShardCase{IndexFamily::kClsm, true, 4},
        ShardCase{IndexFamily::kClsm, true, 7}),
    CaseName);

// Shards may legitimately be empty (tiny dataset, many shards): searches
// must still gather the exact answer from the populated ones.
TEST(ShardedEdgeTest, MoreShardsThanDataStillExact) {
  auto mgr = storage::MakeTempStorage("sharded_edge").TakeValue();
  auto raw = core::RawSeriesStore::Create(mgr.get(), "raw", 64).TakeValue();
  auto collection = testutil::RandomWalkCollection(10, 64, 94);
  ASSERT_TRUE(testutil::FillRawStore(raw.get(), collection).ok());

  VariantSpec spec;
  spec.sax = ShardSax();
  spec.family = IndexFamily::kCTree;
  spec.num_shards = 7;
  auto index =
      CreateStaticIndex(spec, mgr.get(), "idx", nullptr, raw.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());
  ASSERT_EQ(index->num_entries(), collection.size());

  for (int q = 0; q < 3; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 3, 0.5, 500 + q);
    auto oracle = testutil::BruteForceKnn(collection, query, 1);
    auto got = index->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_EQ(got.series_id, oracle[0].index);
    EXPECT_NEAR(got.distance_sq, oracle[0].distance_sq, 1e-9);
  }
}

// The factory guards the sharding matrix: zero shards and sharded
// streaming modes are rejected, and names carry the shard count.
TEST(ShardedEdgeTest, FactoryValidationAndNaming) {
  VariantSpec spec;
  spec.sax = ShardSax();
  spec.family = IndexFamily::kCTree;
  spec.num_shards = 4;
  EXPECT_EQ(VariantName(spec), "CTree-S4");
  std::string why;
  EXPECT_TRUE(SpecIsValid(spec, &why)) << why;

  spec.num_shards = 0;
  EXPECT_FALSE(SpecIsValid(spec, &why));

  spec.num_shards = 2;
  spec.mode = StreamMode::kPP;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  spec.mode = StreamMode::kStatic;
  spec.num_shards = 1;
  EXPECT_EQ(VariantName(spec), "CTree");
}

}  // namespace
}  // namespace palm
}  // namespace coconut
