// Unit tests for the binary bulk-ingest framing (dist/binary_codec.h):
// bit-exact encode/decode round trips (including non-finite float
// payloads) and a corruption sweep hitting every decode error path —
// truncation at each boundary, bad magic, bad version, oversized
// declared shapes, torn tails, and CRC-detected bit flips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "common/crc32c.h"
#include "dist/binary_codec.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace dist {
namespace {

api::IngestBatchRequest MakeRequest(size_t count, size_t length,
                                    uint64_t seed) {
  api::IngestBatchRequest request;
  request.stream = "live";
  request.batch = testutil::RandomWalkCollection(count, length, seed);
  request.timestamps.resize(count);
  for (size_t i = 0; i < count; ++i) {
    request.timestamps[i] = static_cast<int64_t>(i * 10) - 5;
  }
  return request;
}

TEST(DistCodecTest, RoundTripIsBitExact) {
  const api::IngestBatchRequest request = MakeRequest(37, 64, 99);
  const std::string frame = EncodeIngestFrame(request);
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_EQ(decoded.value().stream, "live");
  ASSERT_EQ(decoded.value().batch.size(), request.batch.size());
  ASSERT_EQ(decoded.value().batch.length(), request.batch.length());
  EXPECT_EQ(decoded.value().timestamps, request.timestamps);
  // Bit-exact, not approximately-equal: the frame carries raw float bit
  // patterns, so what goes in must come out.
  EXPECT_EQ(std::memcmp(decoded.value().batch.data().data(),
                        request.batch.data().data(),
                        request.batch.size() * request.batch.length() *
                            sizeof(float)),
            0);
}

TEST(DistCodecTest, RoundTripPreservesNonFiniteBits) {
  api::IngestBatchRequest request;
  request.stream = "weird";
  series::SeriesCollection batch(4);
  batch.Append(std::vector<float>{std::numeric_limits<float>::quiet_NaN(),
                                  std::numeric_limits<float>::infinity(),
                                  -std::numeric_limits<float>::infinity(),
                                  -0.0f});
  request.batch = std::move(batch);
  request.timestamps = {std::numeric_limits<int64_t>::min()};
  const std::string frame = EncodeIngestFrame(request);
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(std::memcmp(decoded.value().batch.data().data(),
                        request.batch.data().data(), 4 * sizeof(float)),
            0);
  EXPECT_EQ(decoded.value().timestamps[0],
            std::numeric_limits<int64_t>::min());
}

TEST(DistCodecTest, RoundTripEmptyBatch) {
  api::IngestBatchRequest request;
  request.stream = "empty";
  request.batch = series::SeriesCollection(16);
  const std::string frame = EncodeIngestFrame(request);
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().stream, "empty");
  EXPECT_EQ(decoded.value().batch.size(), 0u);
  EXPECT_EQ(static_cast<int>(decoded.value().batch.length()), 16);
}

TEST(DistCodecTest, RejectsTruncationAtEveryLength) {
  // Every proper prefix of a valid frame must fail loudly — never decode
  // to a (wrong) batch. This sweeps all truncation branches at once.
  const std::string frame = EncodeIngestFrame(MakeRequest(3, 8, 7));
  for (size_t len = 0; len < frame.size(); ++len) {
    auto decoded = DecodeIngestFrame(frame.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(decoded.status().message().find("binary ingest frame"),
              std::string::npos)
        << decoded.status().message();
  }
}

TEST(DistCodecTest, RejectsTrailingGarbage) {
  std::string frame = EncodeIngestFrame(MakeRequest(3, 8, 7));
  frame += "x";
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("torn or truncated"),
            std::string::npos)
      << decoded.status().message();
}

TEST(DistCodecTest, RejectsBadMagic) {
  std::string frame = EncodeIngestFrame(MakeRequest(1, 4, 1));
  frame[0] ^= 0xFF;
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bad magic"), std::string::npos)
      << decoded.status().message();
}

TEST(DistCodecTest, RejectsUnsupportedVersion) {
  std::string frame = EncodeIngestFrame(MakeRequest(1, 4, 1));
  frame[4] = 0x7F;  // version word, little-endian low byte
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unsupported version"),
            std::string::npos)
      << decoded.status().message();
}

TEST(DistCodecTest, EveryBitFlipIsDetected) {
  // CRC-32C (or a header check) must catch any single-bit corruption —
  // the property the WAL relies on, reused here for frames in flight.
  const std::string frame = EncodeIngestFrame(MakeRequest(2, 8, 3));
  const auto original = DecodeIngestFrame(frame);
  ASSERT_TRUE(original.ok());
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto decoded = DecodeIngestFrame(corrupt);
      ASSERT_FALSE(decoded.ok())
          << "flip of byte " << byte << " bit " << bit << " went unnoticed";
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(DistCodecTest, RejectsOversizedDeclaredShapes) {
  // A frame whose header declares absurd shapes must be rejected by the
  // caps before any allocation is attempted (a hostile or corrupt header
  // must not OOM the shard). Rebuild a syntactically valid frame with a
  // huge count and a correct CRC so only the cap check can refuse it.
  std::string frame = EncodeIngestFrame(MakeRequest(1, 4, 1));
  // count lives after magic(4) + version(2) + reserved(2) + name_len(4) +
  // name(4 for "live") + series_length(4) = offset 20.
  const size_t count_offset = 20;
  const uint32_t huge = (1u << 24) + 1;
  std::memcpy(frame.data() + count_offset, &huge, sizeof(huge));
  std::string body = frame.substr(0, frame.size() - 4);
  const uint32_t crc = Crc32c(body.data(), body.size());
  std::memcpy(frame.data() + frame.size() - 4, &crc, sizeof(crc));
  auto decoded = DecodeIngestFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("count"), std::string::npos)
      << decoded.status().message();
}

}  // namespace
}  // namespace dist
}  // namespace palm
}  // namespace coconut
