// Cross-cutting invariants over the whole variant matrix: every index
// family must return the *same* exact nearest neighbor on the same data,
// whatever its internal structure — plus end-to-end properties that span
// modules (reopen cycles, mixed static+streaming workloads, SAX-shape
// sweeps).
#include <gtest/gtest.h>

#include "palm/factory.h"
#include "tests/test_util.h"
#include "workload/astronomy.h"
#include "workload/generator.h"

namespace coconut {
namespace {

using palm::IndexFamily;
using palm::StreamMode;
using palm::VariantSpec;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("integration_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<storage::StorageManager> mgr_;
};

TEST_F(IntegrationTest, AllFamiliesAgreeOnExactAnswers) {
  series::SaxConfig sax{.series_length = 128, .num_segments = 16,
                        .bits_per_segment = 8};
  auto collection = testutil::RandomWalkCollection(700, 128, 42);
  auto raw = core::RawSeriesStore::Create(mgr_.get(), "raw", 128).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw.get(), collection).ok());

  std::vector<std::unique_ptr<core::DataSeriesIndex>> indexes;
  for (auto family :
       {IndexFamily::kAds, IndexFamily::kCTree, IndexFamily::kClsm}) {
    for (bool materialized : {false, true}) {
      VariantSpec spec;
      spec.sax = sax;
      spec.family = family;
      spec.materialized = materialized;
      spec.buffer_entries = 128;
      auto index = palm::CreateStaticIndex(
                       spec, mgr_.get(),
                       "idx" + std::to_string(indexes.size()), nullptr,
                       raw.get())
                       .TakeValue();
      for (size_t i = 0; i < collection.size(); ++i) {
        ASSERT_TRUE(index->Insert(i, collection[i], 0).ok());
      }
      ASSERT_TRUE(index->Finalize().ok());
      indexes.push_back(std::move(index));
    }
  }

  auto queries = workload::MakeNoisyQueries(collection, 10, 0.5, 77);
  for (const auto& query : queries) {
    auto truth = testutil::BruteForceNearest(collection, query);
    for (auto& index : indexes) {
      auto got = index->ExactSearch(query, {}, nullptr).TakeValue();
      ASSERT_TRUE(got.found) << index->describe();
      EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6)
          << index->describe();
    }
  }
}

TEST_F(IntegrationTest, StreamingAndStaticAgreeOnFullWindow) {
  // A streaming BTP index over the whole history must answer full-window
  // queries identically to a static CTree over the same data.
  series::SaxConfig sax{.series_length = 64, .num_segments = 8,
                        .bits_per_segment = 8};
  auto collection = testutil::RandomWalkCollection(500, 64, 21);
  auto raw = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw.get(), collection).ok());

  VariantSpec static_spec;
  static_spec.sax = sax;
  static_spec.family = IndexFamily::kCTree;
  auto static_index =
      palm::CreateStaticIndex(static_spec, mgr_.get(), "static", nullptr,
                              raw.get())
          .TakeValue();
  VariantSpec stream_spec;
  stream_spec.sax = sax;
  stream_spec.family = IndexFamily::kClsm;
  stream_spec.mode = StreamMode::kBTP;
  stream_spec.buffer_entries = 64;
  auto stream_index =
      palm::CreateStreamingIndex(stream_spec, mgr_.get(), "stream", nullptr,
                                 raw.get())
          .TakeValue();

  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        static_index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
    ASSERT_TRUE(
        stream_index->Ingest(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(static_index->Finalize().ok());

  auto queries = workload::MakeNoisyQueries(collection, 8, 0.4, 5);
  for (const auto& query : queries) {
    auto a = static_index->ExactSearch(query, {}, nullptr).TakeValue();
    auto b = stream_index->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(a.found);
    ASSERT_TRUE(b.found);
    EXPECT_NEAR(a.distance_sq, b.distance_sq, 1e-9);
  }
}

// Shape sweep: the whole pipeline must be correct for any summarization
// configuration, not just the default 16x8.
class SaxShapeSweep
    : public IntegrationTest,
      public ::testing::WithParamInterface<std::tuple<int, int, int>> {};

TEST_P(SaxShapeSweep, CTreeExactMatchesBruteForce) {
  auto [length, segments, bits] = GetParam();
  series::SaxConfig sax{.series_length = length, .num_segments = segments,
                        .bits_per_segment = bits};
  ASSERT_TRUE(sax.Valid());
  auto collection = testutil::RandomWalkCollection(
      300, static_cast<size_t>(length), 97 + length + segments + bits);
  auto raw =
      core::RawSeriesStore::Create(mgr_.get(), "raw", length).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw.get(), collection).ok());

  VariantSpec spec;
  spec.sax = sax;
  spec.family = IndexFamily::kCTree;
  auto index =
      palm::CreateStaticIndex(spec, mgr_.get(), "idx", nullptr, raw.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(index->Insert(i, collection[i], 0).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());

  for (int q = 0; q < 5; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 51 % 300, 0.4, q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = index->ExactSearch(query, {}, nullptr).TakeValue();
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6)
        << "shape " << length << "/" << segments << "/" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SaxShapeSweep,
    ::testing::Values(std::make_tuple(64, 8, 8), std::make_tuple(64, 16, 4),
                      std::make_tuple(96, 12, 6), std::make_tuple(128, 16, 8),
                      std::make_tuple(32, 4, 8), std::make_tuple(40, 5, 3),
                      std::make_tuple(64, 16, 1)));

TEST_F(IntegrationTest, PlantedAstronomyPatternsAreRetrievedByAllFamilies) {
  // Scenario-1 semantics end to end: a supernova query template must
  // retrieve a supernova-labelled series through every index family.
  workload::AstronomyGenerator gen({.series_length = 128,
                                    .supernova_fraction = 0.1,
                                    .signal_to_noise = 8.0});
  auto collection = gen.Generate(1200);
  auto raw = core::RawSeriesStore::Create(mgr_.get(), "raw", 128).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw.get(), collection).ok());

  series::SaxConfig sax{.series_length = 128, .num_segments = 16,
                        .bits_per_segment = 8};
  auto query = gen.PatternTemplate(workload::AstronomyClass::kSupernova, 1);
  auto truth = testutil::BruteForceNearest(collection, query);
  ASSERT_EQ(gen.labels()[truth.index], workload::AstronomyClass::kSupernova);

  int family_id = 0;
  for (auto family :
       {IndexFamily::kAds, IndexFamily::kCTree, IndexFamily::kClsm}) {
    VariantSpec spec;
    spec.sax = sax;
    spec.family = family;
    spec.buffer_entries = 256;
    auto index = palm::CreateStaticIndex(
                     spec, mgr_.get(), "fam" + std::to_string(family_id++),
                     nullptr, raw.get())
                     .TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      ASSERT_TRUE(index->Insert(i, collection[i], 0).ok());
    }
    ASSERT_TRUE(index->Finalize().ok());
    auto got = index->ExactSearch(query, {}, nullptr).TakeValue();
    EXPECT_EQ(got.series_id, truth.index) << index->describe();
    EXPECT_EQ(gen.labels()[got.series_id],
              workload::AstronomyClass::kSupernova)
        << index->describe();
  }
}

TEST_F(IntegrationTest, QueryBeforeFinalizeFailsCleanly) {
  series::SaxConfig sax{.series_length = 64, .num_segments = 8,
                        .bits_per_segment = 8};
  auto raw = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  VariantSpec spec;
  spec.sax = sax;
  spec.family = IndexFamily::kCTree;
  auto index =
      palm::CreateStaticIndex(spec, mgr_.get(), "idx", nullptr, raw.get())
          .TakeValue();
  std::vector<float> query(64, 0.0f);
  EXPECT_FALSE(index->ExactSearch(query, {}, nullptr).ok());
  EXPECT_FALSE(index->ApproxSearch(query, {}, nullptr).ok());
}

}  // namespace
}  // namespace coconut
