// Batched exact search equivalence: DataSeriesIndex::ExactSearchBatch (the
// shared-leaf-scan path through the batched distance kernels for CTree, the
// sequential fallback for other families, and the sharded scatter-gather)
// must answer every query of a batch exactly like per-query ExactSearch and
// the brute-force oracle — unconstrained and under time windows. On top,
// Service::QueryBatch routes eligible same-index exact queries through one
// shared scan and its reports must match the per-request Query path. Also
// reruns scalar-pinned as batch_query_test_forced_scalar.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "palm/api.h"
#include "palm/factory.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace api {
namespace {

series::SaxConfig BatchSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

struct BatchCase {
  IndexFamily family;
  bool materialized;
  size_t num_shards;
};

std::string CaseName(const ::testing::TestParamInfo<BatchCase>& info) {
  VariantSpec spec;
  spec.family = info.param.family;
  spec.materialized = info.param.materialized;
  std::string name = VariantName(spec);
  for (char& c : name) {
    if (c == '+' || c == '-') c = 'x';
  }
  return name + "_K" + std::to_string(info.param.num_shards);
}

class BatchQueryTest : public ::testing::TestWithParam<BatchCase> {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("batch_query");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<core::DataSeriesIndex> Build(
      const series::SeriesCollection& collection) {
    const BatchCase& c = GetParam();
    VariantSpec spec;
    spec.sax = BatchSax();
    spec.family = c.family;
    spec.materialized = c.materialized;
    spec.buffer_entries = 128;
    spec.memory_budget_bytes = 64 << 10;
    spec.num_shards = c.num_shards;
    auto r = CreateStaticIndex(spec, mgr_.get(), "idx", nullptr, raw_.get());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto index = r.TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      EXPECT_TRUE(
          index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
    }
    EXPECT_TRUE(index->Finalize().ok());
    return index;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_P(BatchQueryTest, BatchEqualsSequentialAndBruteForce) {
  auto collection = testutil::RandomWalkCollection(300, 64, 17);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  auto index = Build(collection);

  const size_t nq = 9;
  std::vector<std::vector<float>> queries(nq);
  std::vector<std::span<const float>> spans(nq);
  for (size_t q = 0; q < nq; ++q) {
    // Mix near-duplicates with far-off queries so some abandon early.
    queries[q] = testutil::NoisyCopy(collection, (q * 37) % 300,
                                     q % 3 == 0 ? 0.2 : 2.0, 400 + q);
    spans[q] = queries[q];
  }

  core::SearchOptions options;
  std::vector<core::SearchResult> batch(nq);
  std::vector<core::QueryCounters> counters(nq);
  ASSERT_TRUE(index->ExactSearchBatch(spans, options, batch, counters).ok());

  for (size_t q = 0; q < nq; ++q) {
    const auto sequential =
        index->ExactSearch(queries[q], options, nullptr).TakeValue();
    const auto truth = testutil::BruteForceNearest(collection, queries[q]);
    ASSERT_TRUE(batch[q].found) << "query " << q;
    ASSERT_TRUE(sequential.found) << "query " << q;
    EXPECT_NEAR(batch[q].distance_sq, truth.distance_sq, 1e-6)
        << "query " << q;
    EXPECT_NEAR(batch[q].distance_sq, sequential.distance_sq, 1e-9)
        << "query " << q;
    // Both paths verified at least one candidate for this query.
    EXPECT_GT(counters[q].entries_examined, 0u) << "query " << q;
  }
}

TEST_P(BatchQueryTest, BatchRespectsTimeWindows) {
  auto collection = testutil::RandomWalkCollection(240, 64, 23);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  auto index = Build(collection);

  core::SearchOptions options;
  options.window = core::TimeWindow{40, 200};

  const size_t nq = 5;
  std::vector<std::vector<float>> queries(nq);
  std::vector<std::span<const float>> spans(nq);
  for (size_t q = 0; q < nq; ++q) {
    queries[q] = testutil::NoisyCopy(collection, q * 11, 0.5, 900 + q);
    spans[q] = queries[q];
  }
  std::vector<core::SearchResult> batch(nq);
  ASSERT_TRUE(index
                  ->ExactSearchBatch(spans, options, batch,
                                     std::span<core::QueryCounters>())
                  .ok());
  for (size_t q = 0; q < nq; ++q) {
    const auto truth = testutil::BruteForceKnn(collection, queries[q], 1,
                                               options.window);
    ASSERT_TRUE(batch[q].found) << "query " << q;
    ASSERT_FALSE(truth.empty());
    EXPECT_NEAR(batch[q].distance_sq, truth[0].distance_sq, 1e-6)
        << "query " << q;
    // The winner's timestamp (== ordinal here) must lie inside the window.
    EXPECT_GE(batch[q].timestamp, 40);
    EXPECT_LE(batch[q].timestamp, 200);
  }
}

TEST_P(BatchQueryTest, EmptyAndSingletonBatches) {
  auto collection = testutil::RandomWalkCollection(120, 64, 29);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  auto index = Build(collection);

  core::SearchOptions options;
  ASSERT_TRUE(index
                  ->ExactSearchBatch({}, options, {},
                                     std::span<core::QueryCounters>())
                  .ok());

  auto query = testutil::NoisyCopy(collection, 7, 0.3, 1000);
  std::span<const float> span(query);
  std::vector<core::SearchResult> one(1);
  ASSERT_TRUE(index
                  ->ExactSearchBatch(std::span<const std::span<const float>>(
                                         &span, 1),
                                     options, one,
                                     std::span<core::QueryCounters>())
                  .ok());
  const auto sequential = index->ExactSearch(query, options, nullptr)
                              .TakeValue();
  ASSERT_TRUE(one[0].found);
  EXPECT_NEAR(one[0].distance_sq, sequential.distance_sq, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, BatchQueryTest,
    ::testing::Values(
        BatchCase{IndexFamily::kCTree, false, 1},
        BatchCase{IndexFamily::kCTree, true, 1},
        BatchCase{IndexFamily::kCTree, false, 3},
        BatchCase{IndexFamily::kAds, false, 1}),
    CaseName);

// ------------------------------------------------- Service::QueryBatch

class ServiceBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/batch_query_service_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    auto created = Service::Create(root_);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    service_ = created.TakeValue();
  }
  void TearDown() override {
    service_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<Service> service_;
};

TEST_F(ServiceBatchTest, BatchedReportsMatchPerRequestQueries) {
  auto data = testutil::RandomWalkCollection(200, 64, 31);
  ASSERT_TRUE(service_->RegisterDataset("walk", data, nullptr).ok());
  VariantSpec spec;
  spec.sax = BatchSax();
  spec.family = IndexFamily::kCTree;
  spec.buffer_entries = 64;
  ASSERT_TRUE(service_->BuildIndex("idx", spec, "walk").ok());

  const size_t nq = 6;
  std::vector<QueryRequest> requests(nq);
  for (size_t q = 0; q < nq; ++q) {
    requests[q].index = "idx";
    requests[q].query = testutil::NoisyCopy(data, q * 13, 0.5, 700 + q);
    requests[q].exact = true;
  }

  // Reference: the per-request path, before the batch runs.
  std::vector<Result<QueryReport>> singles;
  for (const QueryRequest& r : requests) singles.push_back(service_->Query(r));

  auto batch = service_->QueryBatch(requests, 1);
  ASSERT_EQ(batch.size(), nq);
  for (size_t q = 0; q < nq; ++q) {
    ASSERT_TRUE(singles[q].ok()) << singles[q].status().ToString();
    ASSERT_TRUE(batch[q].ok()) << batch[q].status().ToString();
    const QueryReport& want = singles[q].value();
    const QueryReport& got = batch[q].value();
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.series_id, want.series_id) << "query " << q;
    EXPECT_NEAR(got.distance, want.distance, 1e-9) << "query " << q;
    EXPECT_EQ(got.exact, true);
    // All six shared one scan.
    EXPECT_EQ(got.batch_size, nq) << "query " << q;
    EXPECT_EQ(want.batch_size, 1u);
    // The marker is serialized only for batched reports, keeping
    // single-query JSON byte-identical to the legacy shape.
    EXPECT_NE(got.ToJsonString().find("\"batch_size\":6"), std::string::npos);
    EXPECT_EQ(want.ToJsonString().find("batch_size"), std::string::npos);
  }
}

TEST_F(ServiceBatchTest, MixedBatchFallsBackPerRequest) {
  auto data = testutil::RandomWalkCollection(150, 64, 37);
  ASSERT_TRUE(service_->RegisterDataset("walk", data, nullptr).ok());
  VariantSpec spec;
  spec.sax = BatchSax();
  spec.family = IndexFamily::kCTree;
  spec.buffer_entries = 64;
  ASSERT_TRUE(service_->BuildIndex("idx", spec, "walk").ok());

  std::vector<QueryRequest> requests(5);
  // Two batchable exact queries...
  requests[0].index = "idx";
  requests[0].query = testutil::NoisyCopy(data, 3, 0.4, 801);
  requests[1].index = "idx";
  requests[1].query = testutil::NoisyCopy(data, 50, 0.4, 802);
  // ...an approx query (ineligible, same index)...
  requests[2].index = "idx";
  requests[2].query = testutil::NoisyCopy(data, 70, 0.4, 803);
  requests[2].exact = false;
  // ...a wrong-length query (must keep its per-request validation error)...
  requests[3].index = "idx";
  requests[3].query = std::vector<float>(17, 1.0f);
  // ...and a missing index.
  requests[4].index = "nope";
  requests[4].query = testutil::NoisyCopy(data, 9, 0.4, 805);

  auto batch = service_->QueryBatch(requests, 2);
  ASSERT_EQ(batch.size(), 5u);

  for (int q : {0, 1}) {
    ASSERT_TRUE(batch[q].ok()) << batch[q].status().ToString();
    EXPECT_EQ(batch[q].value().batch_size, 2u);
    auto single = service_->Query(requests[q]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[q].value().series_id, single.value().series_id);
    EXPECT_NEAR(batch[q].value().distance, single.value().distance, 1e-9);
  }
  ASSERT_TRUE(batch[2].ok()) << batch[2].status().ToString();
  EXPECT_EQ(batch[2].value().batch_size, 1u);
  EXPECT_FALSE(batch[2].value().exact);
  EXPECT_FALSE(batch[3].ok());
  EXPECT_EQ(batch[3].status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(batch[4].ok());
  EXPECT_EQ(batch[4].status().code(), StatusCode::kNotFound);
}

TEST_F(ServiceBatchTest, WindowBucketsStaySeparate) {
  auto data = testutil::RandomWalkCollection(150, 64, 41);
  ASSERT_TRUE(service_->RegisterDataset("walk", data, nullptr).ok());
  VariantSpec spec;
  spec.sax = BatchSax();
  spec.family = IndexFamily::kCTree;
  spec.buffer_entries = 64;
  ASSERT_TRUE(service_->BuildIndex("idx", spec, "walk").ok());

  // Two windowed + two unconstrained queries: distinct SearchOptions must
  // not share one scan, and each answer must respect its own window.
  std::vector<QueryRequest> requests(4);
  for (size_t q = 0; q < 4; ++q) {
    requests[q].index = "idx";
    requests[q].query = testutil::NoisyCopy(data, q * 31, 0.5, 901 + q);
  }
  requests[0].window = core::TimeWindow{0, 60};
  requests[1].window = core::TimeWindow{0, 60};

  auto batch = service_->QueryBatch(requests, 1);
  ASSERT_EQ(batch.size(), 4u);
  for (size_t q = 0; q < 4; ++q) {
    ASSERT_TRUE(batch[q].ok()) << batch[q].status().ToString();
    EXPECT_EQ(batch[q].value().batch_size, 2u) << "query " << q;
    auto single = service_->Query(requests[q]);
    ASSERT_TRUE(single.ok());
    EXPECT_NEAR(batch[q].value().distance, single.value().distance, 1e-9);
    if (q < 2) {
      EXPECT_LE(batch[q].value().timestamp, 60);
    }
  }
}

}  // namespace
}  // namespace api
}  // namespace palm
}  // namespace coconut
