// Per-client admission at the front door, pinned at three layers: the
// token-bucket math of QuotaEnforcer under an injected clock, the
// Dispatch boundary (401 for missing/unknown tokens, 429 past the cap,
// admission before any parsing), and the real HTTP wire — Authorization:
// Bearer extraction, WWW-Authenticate on 401, and recovery after the
// bucket refills. Runs under TSan in CI (concurrent admission sweep).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "palm/api.h"
#include "palm/http_client.h"
#include "palm/http_server.h"
#include "palm/quota.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace api {
namespace {

// ------------------------------------------------------------ unit layer

TEST(QuotaEnforcerUnit, BurstThenPacedRefill) {
  double now = 1000.0;
  QuotaOptions options;
  options.clients["alice"] = ClientQuota{.requests_per_second = 10.0,
                                         .burst = 3.0};
  options.clock_seconds = [&now] { return now; };
  QuotaEnforcer enforcer(std::move(options));

  // The bucket starts full: the whole burst goes through back to back.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(enforcer.Admit("alice").ok()) << i;
  }
  Status throttled = enforcer.Admit("alice");
  EXPECT_EQ(throttled.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(throttled.message().find("retry in"), std::string::npos);

  // 0.1 s at 10 req/s refills exactly one token.
  now += 0.1;
  EXPECT_TRUE(enforcer.Admit("alice").ok());
  EXPECT_EQ(enforcer.Admit("alice").code(), StatusCode::kResourceExhausted);

  // A long idle stretch caps at burst, not unbounded credit.
  now += 3600.0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(enforcer.Admit("alice").ok()) << i;
  }
  EXPECT_EQ(enforcer.Admit("alice").code(), StatusCode::kResourceExhausted);

  const QuotaStats stats = enforcer.Snapshot();
  EXPECT_EQ(stats.admitted, 7u);
  EXPECT_EQ(stats.throttled, 3u);
  EXPECT_EQ(stats.unauthenticated, 0u);
}

TEST(QuotaEnforcerUnit, UnknownTokensAndAnonymousPolicy) {
  QuotaOptions locked;
  locked.clients["alice"] = ClientQuota{.requests_per_second = 0.0};
  QuotaEnforcer strict(std::move(locked));
  EXPECT_TRUE(strict.Admit("alice").ok());  // rate <= 0: unlimited
  EXPECT_EQ(strict.Admit("").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(strict.Admit("mallory").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(strict.Snapshot().unauthenticated, 2u);

  double now = 0.0;
  QuotaOptions open;
  open.allow_anonymous = true;
  open.anonymous_quota = ClientQuota{.requests_per_second = 1.0, .burst = 2.0};
  open.clock_seconds = [&now] { return now; };
  QuotaEnforcer relaxed(std::move(open));
  EXPECT_TRUE(relaxed.Admit("").ok());
  EXPECT_TRUE(relaxed.Admit("whoever").ok());  // same shared bucket
  EXPECT_EQ(relaxed.Admit("").code(), StatusCode::kResourceExhausted);
}

TEST(QuotaEnforcerUnit, ConcurrentAdmissionCountsExactly) {
  double now = 0.0;  // frozen clock: no refill during the sweep
  QuotaOptions options;
  options.clients["alice"] = ClientQuota{.requests_per_second = 1.0,
                                         .burst = 64.0};
  options.clock_seconds = [&now] { return now; };
  QuotaEnforcer enforcer(std::move(options));

  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 32; ++i) {
        if (enforcer.Admit("alice").ok()) ++admitted;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly the burst is admitted, no matter the interleaving.
  EXPECT_EQ(admitted.load(), 64u);
  EXPECT_EQ(enforcer.Snapshot().throttled, 8u * 32u - 64u);
}

// -------------------------------------------------------- dispatch layer

TEST(QuotaDispatch, EnforcedBeforeParsing) {
  const std::string root =
      std::filesystem::temp_directory_path().string() + "/quota_dispatch";
  std::filesystem::remove_all(root);
  std::unique_ptr<Service> service = Service::Create(root).TakeValue();
  QuotaOptions options;
  options.clients["alice"] = ClientQuota{.requests_per_second = 1000.0,
                                         .burst = 2.0};
  service->ConfigureQuotas(options);

  // No token / unknown token: 401-mapped, even for garbage params (the
  // bucket runs before the JSON parser).
  EXPECT_EQ(service->Dispatch("list_indexes", "{}").status().code(),
            StatusCode::kUnauthenticated);
  EXPECT_EQ(
      service->Dispatch("list_indexes", "not json", "mallory").status().code(),
      StatusCode::kUnauthenticated);

  // Known token: admitted until the burst is spent...
  EXPECT_TRUE(service->Dispatch("list_indexes", "{}", "alice").ok());
  EXPECT_TRUE(service->Dispatch("list_indexes", "{}", "alice").ok());
  // ...then throttled — and the refusal happens before method routing,
  // so even an unknown method reports the quota error.
  EXPECT_EQ(
      service->Dispatch("no_such_method", "{}", "alice").status().code(),
      StatusCode::kResourceExhausted);

  const ServerStatsResponse stats = service->ServerStats();
  EXPECT_TRUE(stats.quota_enabled);
  EXPECT_EQ(stats.quota_admitted, 2u);
  EXPECT_EQ(stats.quota_throttled, 1u);
  EXPECT_EQ(stats.quota_unauthenticated, 2u);

  service.reset();
  std::filesystem::remove_all(root);
}

// ------------------------------------------------------------ wire layer

class QuotaHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() + "/quota_http_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    service_ = Service::Create(root_).TakeValue();
    QuotaOptions options;
    // Real clock on the wire tests: 20 req/s refills one token per 50 ms
    // — slow enough that a sub-millisecond request sweep cannot refill
    // its way out of throttling, fast enough that recovery is a short
    // sleep.
    options.clients["alice"] = ClientQuota{.requests_per_second = 20.0,
                                           .burst = 4.0};
    options.clients["bob"] = ClientQuota{.requests_per_second = 0.0};
    service_->ConfigureQuotas(options);
    HttpServerOptions server_options;
    server_options.port = 0;
    auto started = HttpServer::Start(service_.get(), server_options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = started.TakeValue();
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(QuotaHttpTest, BearerTokensGateTheWire) {
  BlockingHttpClient anonymous("127.0.0.1", server_->port());
  auto response = anonymous.Post("/api/v1/list_indexes", "{}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 401);
  EXPECT_NE(response.value().body.find("\"code\":\"unauthenticated\""),
            std::string::npos)
      << response.value().body;

  BlockingHttpClient mallory("127.0.0.1", server_->port());
  response = mallory.Post("/api/v1/list_indexes", "{}",
                          {{"Authorization", "Bearer letmein"}});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 401);

  // bob is unlimited: any number of requests sails through.
  BlockingHttpClient bob("127.0.0.1", server_->port());
  for (int i = 0; i < 10; ++i) {
    response = bob.Post("/api/v1/list_indexes", "{}",
                        {{"Authorization", "Bearer bob"}});
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200) << response.value().body;
  }

  // Healthz stays open: quota guards the API dispatch, not liveness.
  // (Post to a non-API route does not consume alice's bucket either.)
  BlockingHttpClient alice("127.0.0.1", server_->port());
  int ok_count = 0;
  int throttled_count = 0;
  for (int i = 0; i < 12; ++i) {
    response = alice.Post("/api/v1/list_indexes", "{}",
                          {{"Authorization", "Bearer alice"}});
    ASSERT_TRUE(response.ok());
    if (response.value().status == 200) {
      ++ok_count;
    } else {
      EXPECT_EQ(response.value().status, 429);
      EXPECT_NE(response.value().body.find("\"code\":\"resource_exhausted\""),
                std::string::npos);
      ++throttled_count;
    }
  }
  // Burst of 4; a loopback sweep of 12 takes a few ms, during which at
  // most a token or two refills (one per 50 ms) — so both outcomes must
  // appear.
  EXPECT_GE(ok_count, 4);
  EXPECT_GE(throttled_count, 1);

  // After the bucket refills, alice recovers.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  response = alice.Post("/api/v1/list_indexes", "{}",
                        {{"Authorization", "Bearer alice"}});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200) << response.value().body;

  const ServerStatsResponse stats = service_->ServerStats();
  EXPECT_GE(stats.quota_throttled, 1u);
  EXPECT_GE(stats.quota_unauthenticated, 2u);
}

TEST_F(QuotaHttpTest, SchemeParsingIsCaseInsensitive) {
  BlockingHttpClient client("127.0.0.1", server_->port());
  // "bearer" lowercase and extra padding are both RFC-tolerated.
  auto response = client.Post("/api/v1/list_indexes", "{}",
                              {{"Authorization", "bearer  bob"}});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200) << response.value().body;
}

// ----------------------------------------------------- config-file layer

TEST(QuotaConfig, ParsesTokensBurstsCommentsAndAnonymous) {
  const std::string text =
      "# front-door quotas\n"
      "\n"
      "alice=10:25\n"
      "bob = 4   # trailing comment, burst defaults to 2*RPS\n"
      "*=2:3\n"
      "firehose=0\n";
  auto parsed = ParseQuotaConfig(text, "<inline>");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QuotaOptions& options = parsed.value();

  ASSERT_EQ(options.clients.count("alice"), 1u);
  EXPECT_EQ(options.clients.at("alice").requests_per_second, 10.0);
  EXPECT_EQ(options.clients.at("alice").burst, 25.0);
  ASSERT_EQ(options.clients.count("bob"), 1u);
  EXPECT_EQ(options.clients.at("bob").requests_per_second, 4.0);
  EXPECT_EQ(options.clients.at("bob").burst, 8.0);
  // RPS 0 = unlimited, still a recognized token.
  ASSERT_EQ(options.clients.count("firehose"), 1u);
  EXPECT_EQ(options.clients.at("firehose").requests_per_second, 0.0);
  EXPECT_TRUE(options.allow_anonymous);
  ASSERT_TRUE(options.anonymous_quota.has_value());
  EXPECT_EQ(options.anonymous_quota->requests_per_second, 2.0);
  EXPECT_EQ(options.anonymous_quota->burst, 3.0);
}

TEST(QuotaConfig, MalformedLinesNameTheLineAndTheSource) {
  const struct {
    const char* text;
    const char* expect;  // substring of the error message
  } kCases[] = {
      {"alice\n", "line 1: expected TOKEN=RPS[:BURST] in 'alice'"},
      {"=5\n", "line 1: expected TOKEN=RPS[:BURST]"},
      {"\n# c\nalice=fast\n", "line 3: RPS must be a non-negative number"},
      {"alice=5:-1\n", "BURST must be a non-negative number"},
      {"alice=5\nalice=6\n", "line 2: duplicate token"},
      {"*=1\n*=2\n", "line 2: duplicate anonymous ('*') entry"},
  };
  for (const auto& c : kCases) {
    auto parsed = ParseQuotaConfig(c.text, "quotas.conf");
    ASSERT_FALSE(parsed.ok()) << "accepted: " << c.text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("quota config quotas.conf"),
              std::string::npos)
        << parsed.status().message();
    EXPECT_NE(parsed.status().message().find(c.expect), std::string::npos)
        << parsed.status().message() << "\n  wanted: " << c.expect;
  }
}

TEST(QuotaConfig, LoadQuotaFileRoundTripsAndEnforces) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coconut_quota_test.conf")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("alice=1000:2\n", f);
    std::fclose(f);
  }
  auto loaded = LoadQuotaFile(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().allow_anonymous);

  // The loaded options drive a real enforcer: burst of 2 admits exactly
  // two back-to-back, and anonymous callers are locked out.
  QuotaOptions options = loaded.value();
  options.clock_seconds = [] { return 0.0; };
  QuotaEnforcer enforcer(options);
  EXPECT_TRUE(enforcer.Admit("alice").ok());
  EXPECT_TRUE(enforcer.Admit("alice").ok());
  EXPECT_EQ(enforcer.Admit("alice").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(enforcer.Admit("").code(), StatusCode::kUnauthenticated);

  auto missing = LoadQuotaFile(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace api
}  // namespace palm
}  // namespace coconut
