// Crash-recovery oracle for durable streams: fork a child that serves a
// real durable stream through the api::Service front door, SIGKILL it at
// an injected crash point on the WAL's commit / checkpoint / truncate
// path (the wal_test_hook seam), then recover in the parent by simply
// re-creating the stream over the same root — and assert the recovered
// stream is exactly the acknowledged prefix:
//
//   - no lost acks: every entry whose ingest_batch reply the client saw
//     is present and answers queries with the right values;
//   - no resurrected garbage: at most the one in-flight batch beyond the
//     acked prefix survives, and at torn-frame / truncation kill points
//     the recovered count equals the acked count exactly;
//   - the recovered stream keeps serving: further ingests, drains and
//     queries behave identically to an uninterrupted stream.
//
// Ground truth is the same brute-force scan oracle the rest of the suite
// uses. Fork-based cases are skipped under TSan (fork + sanitizer
// runtimes don't mix); the TSan matrix instead runs the in-process
// ingest-while-checkpoint + reopen cases at the bottom of this file.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "palm/api.h"
#include "series/series.h"
#include "tests/test_util.h"

#if defined(__SANITIZE_THREAD__)
#define COCONUT_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define COCONUT_TSAN_BUILD 1
#endif
#endif

namespace coconut {
namespace palm {
namespace {

constexpr size_t kSeriesLength = 32;
constexpr size_t kBatch = 8;
constexpr int kChildBatches = 12;  // 96 entries before the first drain

VariantSpec DurableSpec(IndexFamily family, StreamMode mode,
                        size_t shards) {
  VariantSpec spec;
  spec.sax = series::SaxConfig{.series_length = kSeriesLength,
                               .num_segments = 8, .bits_per_segment = 8};
  spec.family = family;
  spec.mode = mode;
  spec.buffer_entries = 16;  // a seal every 2 batches: checkpoints flow
  spec.async_ingest = true;
  spec.num_shards = shards;
  spec.durable = true;
  return spec;
}

/// The workload both the doomed child and every oracle sees. Rows are
/// z-normalized once here and again by the service on ingest, so the
/// oracle below re-normalizes to match the stored bytes.
series::SeriesCollection Workload() {
  return testutil::RandomWalkCollection(kChildBatches * kBatch + 3 * kBatch,
                                        kSeriesLength, /*seed=*/20260807);
}

std::vector<float> DoubleNormalized(std::span<const float> row) {
  std::vector<float> v(row.begin(), row.end());
  series::ZNormalize(v);
  return v;
}

struct KillPlan {
  /// wal_test_hook point to SIGKILL at (nullptr = use seal hook instead).
  const char* wal_point = nullptr;
  /// Fire on the Nth occurrence of the point.
  int countdown = 1;
  /// SIGKILL at the head of the Nth background seal (post-ack, pre-seal).
  bool kill_on_seal = false;
};

/// Forks; the child serves the stream until the planned SIGKILL, acking
/// progress through a pipe. Returns the last acknowledged entry count the
/// parent observed, or nullopt (with a test failure recorded) when the
/// child did not die by the planned kill.
std::optional<uint64_t> RunChildUntilKill(
    const std::string& root, const VariantSpec& spec_template,
    const series::SeriesCollection& collection, const KillPlan& plan) {
  int fds[2];
  if (::pipe(fds) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return std::nullopt;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed";
    return std::nullopt;
  }

  if (pid == 0) {
    // ---- child. No gtest from here on; every path ends in _exit or the
    // planned SIGKILL. The background pool is created post-fork (threads
    // do not survive fork), and all hooks live on this stack — the child
    // never unwinds it.
    ::close(fds[0]);
    ThreadPool pool(2);
    std::atomic<int> remaining(plan.countdown);
    VariantSpec spec = spec_template;
    spec.background_pool = &pool;
    if (plan.wal_point != nullptr) {
      const char* point = plan.wal_point;
      spec.wal_test_hook = [&remaining, point](const char* at) {
        if (std::strcmp(at, point) == 0 &&
            remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ::kill(::getpid(), SIGKILL);
        }
      };
    }
    if (plan.kill_on_seal) {
      spec.seal_test_hook = [&remaining]() {
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ::kill(::getpid(), SIGKILL);
        }
        return Status::OK();
      };
    }
    auto service = api::Service::Create(root);
    if (!service.ok()) _exit(43);
    if (!service.value()->CreateStream("s", spec).ok()) _exit(43);
    uint64_t sent = 0;
    for (int round = 0; round < 2; ++round) {
      const int batches = round == 0 ? kChildBatches : 2;
      for (int b = 0; b < batches; ++b) {
        series::SeriesCollection batch(collection.length());
        std::vector<int64_t> timestamps;
        for (size_t i = 0; i < kBatch; ++i) {
          batch.Append(collection[sent + i]);
          timestamps.push_back(static_cast<int64_t>(sent + i));
        }
        if (!service.value()->IngestBatch("s", batch, timestamps).ok()) {
          _exit(43);
        }
        sent += kBatch;
        if (::write(fds[1], &sent, sizeof(sent)) !=
            static_cast<ssize_t>(sizeof(sent))) {
          _exit(43);
        }
      }
      // Drain: background seals complete (checkpoint points fire) and the
      // durable logs are truncated (truncate points fire).
      if (!service.value()->DrainStream("s").ok()) _exit(43);
    }
    _exit(42);  // the planned kill never fired: the test will fail
  }

  // ---- parent.
  ::close(fds[1]);
  uint64_t acked = 0;
  uint64_t update = 0;
  while (::read(fds[0], &update, sizeof(update)) ==
         static_cast<ssize_t>(sizeof(update))) {
    acked = update;
  }
  ::close(fds[0]);
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    ADD_FAILURE() << "waitpid() failed";
    return std::nullopt;
  }
  if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGKILL) {
    ADD_FAILURE() << "child was not SIGKILLed as planned (exit status "
                  << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
                  << "; 42 = planned crash point never fired, 43 = child "
                     "setup or ingest error)";
    return std::nullopt;
  }
  return acked;
}

/// One service-front-door exact query against the recovered stream.
api::QueryReport MustQuery(api::Service* service, std::span<const float> q,
                           const core::TimeWindow& window =
                               core::TimeWindow::All()) {
  api::QueryRequest request;
  request.index = "s";
  request.query.assign(q.begin(), q.end());
  request.exact = true;
  request.window = window;
  auto report = service->Query(request);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? report.value() : api::QueryReport{};
}

/// Recovers the killed stream in this process and asserts the full
/// acked-prefix contract, then proves the stream still serves.
void VerifyRecovered(const std::string& root, const VariantSpec& spec,
                     const series::SeriesCollection& collection,
                     uint64_t acked, bool exact_prefix) {
  auto created = api::Service::Create(root);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<api::Service> service = created.TakeValue();
  auto response = service->CreateStream("s", spec);
  ASSERT_TRUE(response.ok())
      << "recovery failed: " << response.status().ToString();
  stream::StreamingIndex* index = service->stream_index("s");
  ASSERT_NE(index, nullptr);

  const uint64_t recovered = index->num_entries();
  if (exact_prefix) {
    EXPECT_EQ(recovered, acked)
        << "a torn or truncated log must recover exactly the acked prefix";
  } else {
    EXPECT_GE(recovered, acked) << "an acknowledged write was lost";
    EXPECT_LE(recovered, acked + kBatch)
        << "more than the one in-flight batch was resurrected";
  }
  ASSERT_GT(recovered, 0u);
  ASSERT_LE(recovered, collection.size() - 2 * kBatch);

  // Unsharded recovery is an exact ordinal prefix [0, recovered). Sharded
  // recovery is [0, acked) plus an arbitrary SUBSET of the in-flight
  // batch: each shard's log commits its own slice of the batch, so a kill
  // mid-fan-out keeps some slices and drops others (with global-id gaps —
  // next_series_id resumes past the largest survivor).
  const bool sequential_ids = spec.num_shards == 1;

  // The oracle sees exactly the bytes the service stored: its rows
  // z-normalized a second time on ingest.
  series::SeriesCollection oracle(kSeriesLength);
  for (uint64_t i = 0; i < acked; ++i) {
    oracle.Append(DoubleNormalized(collection[i]));
  }

  // No lost acks: every acknowledged entry answers its own query at
  // (numerically) zero distance under its own id.
  for (uint64_t id : {uint64_t{0}, acked / 2, acked - 1}) {
    const api::QueryReport report = MustQuery(service.get(), oracle[id]);
    EXPECT_TRUE(report.found);
    EXPECT_EQ(report.series_id, id) << "self-query missed its own series";
    EXPECT_LT(report.distance, 1e-3);
  }

  if (sequential_ids) {
    for (uint64_t i = acked; i < recovered; ++i) {
      oracle.Append(DoubleNormalized(collection[i]));
    }
    if (recovered > acked) {
      const api::QueryReport report =
          MustQuery(service.get(), oracle[recovered - 1]);
      EXPECT_TRUE(report.found);
      EXPECT_EQ(report.series_id, recovered - 1);
      EXPECT_LT(report.distance, 1e-3);
    }

    // Nothing beyond the prefix was resurrected: the first unrecovered
    // series must not be present (its true nearest neighbor is some
    // genuinely different series, far away).
    if (recovered < static_cast<uint64_t>(kChildBatches) * kBatch) {
      const api::QueryReport report =
          MustQuery(service.get(), DoubleNormalized(collection[recovered]));
      if (report.found) {
        EXPECT_GT(report.distance, 1e-2)
            << "an unacknowledged, unrecovered write was resurrected";
      }
    }

    // Nearest-neighbor answers match the brute-force oracle on the prefix.
    for (int q = 0; q < 2; ++q) {
      const size_t base = (static_cast<size_t>(recovered) * (q + 1)) / 3;
      const std::vector<float> query =
          testutil::NoisyCopy(oracle, base, 0.25, /*seed=*/900 + q);
      const auto truth = testutil::BruteForceKnn(oracle, query, 1);
      ASSERT_EQ(truth.size(), 1u);
      const api::QueryReport report = MustQuery(service.get(), query);
      EXPECT_TRUE(report.found);
      EXPECT_EQ(report.series_id, truth[0].index);
      EXPECT_NEAR(report.distance, std::sqrt(truth[0].distance_sq), 5e-3);
    }
  } else {
    // Sharded: the in-flight subset has unknowable membership, but its
    // timestamps (== ordinals) all sit past the acked prefix, so windowed
    // queries over the prefix must answer as if it did not exist.
    const core::TimeWindow prefix_window{
        std::numeric_limits<int64_t>::min(),
        static_cast<int64_t>(acked) - 1};
    for (int q = 0; q < 2; ++q) {
      const size_t base = (static_cast<size_t>(acked) * (q + 1)) / 3;
      const std::vector<float> query =
          testutil::NoisyCopy(oracle, base, 0.25, /*seed=*/900 + q);
      const auto truth =
          testutil::BruteForceKnn(oracle, query, 1, prefix_window);
      ASSERT_EQ(truth.size(), 1u);
      const api::QueryReport report =
          MustQuery(service.get(), query, prefix_window);
      EXPECT_TRUE(report.found);
      EXPECT_EQ(report.series_id, truth[0].index);
      EXPECT_NEAR(report.distance, std::sqrt(truth[0].distance_sq), 5e-3);
    }
  }

  // The recovered stream is live, not a read-only artifact: ingest two
  // more batches of fresh rows (past anything the child may have gotten
  // in flight), drain (exercising checkpoint + truncation on the
  // recovered log), and query the new entries.
  const uint64_t fresh_row = acked + kBatch;
  series::SeriesCollection continuation(kSeriesLength);
  std::vector<int64_t> continuation_ts;
  for (int b = 0; b < 2; ++b) {
    series::SeriesCollection batch(kSeriesLength);
    std::vector<int64_t> timestamps;
    for (size_t i = 0; i < kBatch; ++i) {
      const uint64_t row = fresh_row + b * kBatch + i;
      batch.Append(collection[row]);
      timestamps.push_back(static_cast<int64_t>(row));
      continuation.Append(DoubleNormalized(collection[row]));
      continuation_ts.push_back(static_cast<int64_t>(row));
    }
    auto ingested = service->IngestBatch("s", batch, timestamps);
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  }
  auto drained = service->DrainStream("s");
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(index->num_entries(), recovered + 2 * kBatch);

  const api::QueryReport self = MustQuery(service.get(), continuation[3]);
  EXPECT_TRUE(self.found);
  EXPECT_LT(self.distance, 1e-3);
  if (sequential_ids) {
    EXPECT_EQ(self.series_id, recovered + 3);
  }
  const core::TimeWindow cont_window{
      static_cast<int64_t>(fresh_row),
      static_cast<int64_t>(fresh_row + 2 * kBatch) - 1};
  const std::vector<float> query =
      testutil::NoisyCopy(continuation, 2 * kBatch - 2, 0.25, /*seed=*/77);
  const auto truth = testutil::BruteForceKnn(continuation, query, 1,
                                             cont_window, &continuation_ts);
  ASSERT_EQ(truth.size(), 1u);
  const api::QueryReport report =
      MustQuery(service.get(), query, cont_window);
  EXPECT_TRUE(report.found);
  EXPECT_NEAR(report.distance, std::sqrt(truth[0].distance_sq), 5e-3);
  if (sequential_ids) {
    EXPECT_EQ(report.series_id, recovered + truth[0].index);
  }
}

struct MatrixPoint {
  KillPlan plan;
  /// Whether recovery must equal the acked count exactly (torn frames
  /// are dropped whole; truncation runs with everything acked). Partial
  /// per-shard commit fan-out makes mid-frame non-exact when sharded.
  bool exact_prefix;
};

std::vector<MatrixPoint> KillMatrix(size_t shards) {
  return {
      {{.wal_point = "commit.mid_frame", .countdown = 5}, shards == 1},
      {{.wal_point = "commit.pre_sync", .countdown = 5}, false},
      {{.wal_point = "commit.post_sync", .countdown = 5}, false},
      {{.wal_point = "checkpoint.pre_write", .countdown = 2}, false},
      {{.wal_point = "checkpoint.mid_frame", .countdown = 2}, false},
      {{.wal_point = "checkpoint.post_sync", .countdown = 2}, false},
      {{.wal_point = "truncate.pre_rename", .countdown = 1}, true},
      {{.wal_point = "truncate.post_rename", .countdown = 1}, true},
  };
}

void RunKillMatrix(const std::string& tag, IndexFamily family,
                   StreamMode mode, size_t shards,
                   const std::vector<MatrixPoint>& matrix) {
#ifdef COCONUT_TSAN_BUILD
  GTEST_SKIP() << "fork-based kill tests are incompatible with TSan; the "
                  "TSan matrix runs the in-process recovery cases instead";
#else
  const series::SeriesCollection collection = Workload();
  const VariantSpec spec = DurableSpec(family, mode, shards);
  for (const MatrixPoint& point : matrix) {
    SCOPED_TRACE(std::string(point.plan.wal_point) + " x" +
                 std::to_string(point.plan.countdown));
    const std::string root = std::filesystem::temp_directory_path().string() +
                             "/crash_recovery_" + tag + "_" +
                             point.plan.wal_point;
    std::filesystem::remove_all(root);
    const std::optional<uint64_t> acked =
        RunChildUntilKill(root, spec, collection, point.plan);
    if (acked.has_value()) {
      VerifyRecovered(root, spec, collection, *acked, point.exact_prefix);
    }
    std::filesystem::remove_all(root);
  }
#endif
}

TEST(CrashRecovery, KillMatrixCTreeTP) {
  RunKillMatrix("ctree_tp", IndexFamily::kCTree, StreamMode::kTP, 1,
                KillMatrix(1));
}

TEST(CrashRecovery, KillMatrixClsmBTP) {
  RunKillMatrix("clsm_btp", IndexFamily::kClsm, StreamMode::kBTP, 1,
                KillMatrix(1));
}

TEST(CrashRecovery, KillMatrixClsmPP) {
  RunKillMatrix("clsm_pp", IndexFamily::kClsm, StreamMode::kPP, 1,
                KillMatrix(1));
}

// Sharded streams run a reduced point set (one per durability edge): the
// full matrix above already sweeps every point, and per-shard logs make
// the remaining points differ only in fan-out, which these four cover.
std::vector<MatrixPoint> ShardedKillMatrix() {
  return {
      {{.wal_point = "commit.mid_frame", .countdown = 5}, false},
      {{.wal_point = "commit.post_sync", .countdown = 5}, false},
      {{.wal_point = "checkpoint.post_sync", .countdown = 2}, false},
      {{.wal_point = "truncate.post_rename", .countdown = 1}, true},
  };
}

TEST(CrashRecovery, KillMatrixShardedCTreeTP) {
  RunKillMatrix("sh_ctree_tp", IndexFamily::kCTree, StreamMode::kTP,
                2, ShardedKillMatrix());
}

TEST(CrashRecovery, KillMatrixShardedClsmBTP) {
  RunKillMatrix("sh_clsm_btp", IndexFamily::kClsm, StreamMode::kBTP,
                2, ShardedKillMatrix());
}

TEST(CrashRecovery, KillBetweenAckAndSeal) {
#ifdef COCONUT_TSAN_BUILD
  GTEST_SKIP() << "fork-based kill tests are incompatible with TSan";
#else
  // The classic WAL-justifying window: entries acknowledged but still in
  // the in-memory buffer when the background seal (and the process) dies.
  // Only the log holds them; recovery must replay them.
  const series::SeriesCollection collection = Workload();
  const VariantSpec spec =
      DurableSpec(IndexFamily::kCTree, StreamMode::kTP, 1);
  const std::string root = std::filesystem::temp_directory_path().string() +
                           "/crash_recovery_seal_kill";
  std::filesystem::remove_all(root);
  KillPlan plan;
  plan.kill_on_seal = true;
  plan.countdown = 2;
  const std::optional<uint64_t> acked =
      RunChildUntilKill(root, spec, collection, plan);
  if (acked.has_value()) {
    EXPECT_GE(*acked, 2 * spec.buffer_entries - kBatch)
        << "the second seal fired before its buffer could have filled";
    VerifyRecovered(root, spec, collection, *acked, /*exact_prefix=*/false);
  }
  std::filesystem::remove_all(root);
#endif
}

// ---------------------------------------------------------------------
// In-process durability cases (no fork — these also run under TSan,
// where they pin concurrent ingest-while-checkpoint against recovery).

class DurableStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/durable_stream_test_" + ::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Ingests collection rows [from, to) in batches of kBatch (timestamps
  /// = ordinals) through the service front door.
  static void Ingest(api::Service* service,
                     const series::SeriesCollection& collection, size_t from,
                     size_t to) {
    for (size_t at = from; at < to; at += kBatch) {
      series::SeriesCollection batch(collection.length());
      std::vector<int64_t> timestamps;
      for (size_t i = at; i < at + kBatch && i < to; ++i) {
        batch.Append(collection[i]);
        timestamps.push_back(static_cast<int64_t>(i));
      }
      auto report = service->IngestBatch("s", batch, timestamps);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
  }

  std::string root_;
};

TEST_F(DurableStreamTest, DrainedRecoveredMatchesSyncReference) {
  const series::SeriesCollection collection = Workload();
  constexpr size_t kRows = 48;
  const struct {
    IndexFamily family;
    StreamMode mode;
    const char* tag;
  } variants[] = {
      {IndexFamily::kCTree, StreamMode::kTP, "ctree_tp"},
      {IndexFamily::kClsm, StreamMode::kBTP, "clsm_btp"},
      {IndexFamily::kClsm, StreamMode::kPP, "clsm_pp"},
  };
  for (const auto& variant : variants) {
    SCOPED_TRACE(variant.tag);
    const std::string durable_root = root_ + "/" + variant.tag + "_durable";
    const std::string sync_root = root_ + "/" + variant.tag + "_sync";
    const VariantSpec spec = DurableSpec(variant.family, variant.mode, 1);

    // Phase 1: serve durably, drain, remember the drained shape, close.
    uint64_t drained_partitions = 0;
    {
      auto service = api::Service::Create(durable_root);
      ASSERT_TRUE(service.ok());
      ASSERT_TRUE(service.value()->CreateStream("s", spec).ok());
      Ingest(service.value().get(), collection, 0, kRows);
      ASSERT_TRUE(service.value()->DrainStream("s").ok());
      drained_partitions = service.value()->stream_index("s")->num_partitions();
    }

    // Phase 2: recover from the truncated log (checkpoint manifest
    // restore, no replay tail).
    auto recovered = api::Service::Create(durable_root);
    ASSERT_TRUE(recovered.ok());
    ASSERT_TRUE(recovered.value()->CreateStream("s", spec).ok());
    stream::StreamingIndex* index = recovered.value()->stream_index("s");
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->num_entries(), kRows);
    EXPECT_EQ(index->num_partitions(), drained_partitions)
        << "manifest restore changed the drained partition shape";

    // Reference: the same data through a non-durable stream of the same
    // spec, drained — the acceptance bar: drained-recovered == sync.
    auto reference = api::Service::Create(sync_root);
    ASSERT_TRUE(reference.ok());
    VariantSpec sync_spec = spec;
    sync_spec.durable = false;
    ASSERT_TRUE(reference.value()->CreateStream("s", sync_spec).ok());
    Ingest(reference.value().get(), collection, 0, kRows);
    ASSERT_TRUE(reference.value()->DrainStream("s").ok());

    series::SeriesCollection oracle(kSeriesLength);
    for (size_t i = 0; i < kRows; ++i) {
      oracle.Append(DoubleNormalized(collection[i]));
    }
    for (int q = 0; q < 4; ++q) {
      const std::vector<float> query = testutil::NoisyCopy(
          oracle, (q * kRows) / 4, 0.25, /*seed=*/500 + q);
      const api::QueryReport a = MustQuery(recovered.value().get(), query);
      const api::QueryReport b = MustQuery(reference.value().get(), query);
      EXPECT_EQ(a.found, b.found);
      EXPECT_EQ(a.series_id, b.series_id);
      EXPECT_NEAR(a.distance, b.distance, 1e-6);
    }
  }
}

TEST_F(DurableStreamTest, CleanShutdownReopenRecoversEverything) {
  // Close WITHOUT draining: acked entries still in in-memory buffers are
  // only in the log; reopening must bring all of them back.
  const series::SeriesCollection collection = Workload();
  constexpr size_t kRows = 40;
  const VariantSpec spec =
      DurableSpec(IndexFamily::kClsm, StreamMode::kBTP, 1);
  {
    auto service = api::Service::Create(root_ + "/svc");
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(service.value()->CreateStream("s", spec).ok());
    Ingest(service.value().get(), collection, 0, kRows);
  }
  auto service = api::Service::Create(root_ + "/svc");
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service.value()->CreateStream("s", spec).ok());
  stream::StreamingIndex* index = service.value()->stream_index("s");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_entries(), kRows);

  series::SeriesCollection oracle(kSeriesLength);
  for (size_t i = 0; i < kRows; ++i) {
    oracle.Append(DoubleNormalized(collection[i]));
  }
  const api::QueryReport self = MustQuery(service.value().get(), oracle[17]);
  EXPECT_TRUE(self.found);
  EXPECT_EQ(self.series_id, 17u);
  EXPECT_LT(self.distance, 1e-3);
}

TEST_F(DurableStreamTest, DurabilityOffClearsLeftoverState) {
  // A non-durable create over a directory holding durable leftovers is a
  // fresh start (today's clear-on-create semantics are only bypassed when
  // durability is ON), and a durability=off stream leaves no log behind.
  const series::SeriesCollection collection = Workload();
  const VariantSpec durable =
      DurableSpec(IndexFamily::kCTree, StreamMode::kTP, 1);
  {
    auto service = api::Service::Create(root_ + "/svc");
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(service.value()->CreateStream("s", durable).ok());
    Ingest(service.value().get(), collection, 0, 2 * kBatch);
    EXPECT_TRUE(service.value()->index_storage("s")->Exists("wal"));
  }
  auto service = api::Service::Create(root_ + "/svc");
  ASSERT_TRUE(service.ok());
  VariantSpec off = durable;
  off.durable = false;
  ASSERT_TRUE(service.value()->CreateStream("s", off).ok());
  stream::StreamingIndex* index = service.value()->stream_index("s");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_entries(), 0u)
      << "durability=off must not recover leftover state";
  EXPECT_FALSE(service.value()->index_storage("s")->Exists("wal"));
  Ingest(service.value().get(), collection, 0, kBatch);
  EXPECT_EQ(index->num_entries(), kBatch);
}

TEST_F(DurableStreamTest, IngestWhileCheckpointingThenReopen) {
  // Concurrent ingest on this thread while background seals append
  // checkpoint frames to the same log — the TSan matrix runs this exact
  // case to pin the Wal's internal locking — then drain, close, recover.
  const series::SeriesCollection collection = Workload();
  constexpr size_t kRows = 80;
  const VariantSpec spec =
      DurableSpec(IndexFamily::kCTree, StreamMode::kTP, 1);
  {
    auto service = api::Service::Create(root_ + "/svc");
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(service.value()->CreateStream("s", spec).ok());
    Ingest(service.value().get(), collection, 0, kRows);
    ASSERT_TRUE(service.value()->DrainStream("s").ok());
  }
  auto service = api::Service::Create(root_ + "/svc");
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(service.value()->CreateStream("s", spec).ok());
  stream::StreamingIndex* index = service.value()->stream_index("s");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_entries(), kRows);

  series::SeriesCollection oracle(kSeriesLength);
  for (size_t i = 0; i < kRows; ++i) {
    oracle.Append(DoubleNormalized(collection[i]));
  }
  const std::vector<float> query =
      testutil::NoisyCopy(oracle, kRows / 2, 0.25, /*seed=*/31);
  const auto truth = testutil::BruteForceKnn(oracle, query, 1);
  const api::QueryReport report = MustQuery(service.value().get(), query);
  EXPECT_TRUE(report.found);
  EXPECT_EQ(report.series_id, truth[0].index);
  EXPECT_NEAR(report.distance, std::sqrt(truth[0].distance_sq), 5e-3);
}

}  // namespace
}  // namespace palm
}  // namespace coconut
