// Accounting under fire: while one thread ingests into an async streaming
// index and two threads query it, more threads continuously read every
// stats surface — StreamingStats snapshots, entry/partition/byte counts,
// and the storage manager's SnapshotIoStats — and per-query
// QueryCounters are merged across threads with QueryCounters::Add. Run
// under TSan in CI, this pins the satellite requirement that streaming
// stats reads are race-free mid-flight (no quiescing required).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "palm/factory.h"
#include "palm/sharded_streaming_index.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class StreamStatsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("stream_stats_stress");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(900, 64, 123);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  void Hammer(palm::VariantSpec spec, const std::string& name) {
    ThreadPool background(2);
    spec.async_ingest = true;
    spec.background_pool = &background;
    auto stream = palm::CreateStreamingIndex(spec, mgr_.get(), name,
                                             nullptr, raw_.get())
                      .TakeValue();
    ASSERT_NE(stream, nullptr);

    std::atomic<bool> stop{false};
    std::atomic<size_t> acknowledged{0};
    core::QueryCounters merged;  // Aggregated at join time via Add.
    std::mutex merged_mu;

    auto querier = [&](uint64_t seed) {
      Rng rng(seed);
      core::QueryCounters local;
      do {
        auto query = testutil::NoisyCopy(
            collection_, rng.NextBounded(collection_.size()), 0.5, seed);
        core::SearchOptions options;
        const size_t ack = acknowledged.load(std::memory_order_acquire);
        if (ack > 10 && rng.NextBounded(2) == 0) {
          options.window = core::TimeWindow{
              static_cast<int64_t>(rng.NextBounded(ack)),
              static_cast<int64_t>(ack)};
        }
        core::QueryCounters counters;
        auto result = stream->ExactSearch(query, options, &counters);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        local.Add(counters);
      } while (!stop.load(std::memory_order_acquire));
      std::lock_guard<std::mutex> lock(merged_mu);
      merged.Add(local);
    };

    auto stats_reader = [&] {
      uint64_t last_entries = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const StreamingStats stats = stream->SnapshotStats();
        // Entries acknowledged so far never shrink, and every component
        // of the snapshot is internally consistent.
        EXPECT_GE(stats.entries, last_entries);
        last_entries = stats.entries;
        EXPECT_GE(stats.entries, stats.buffered);
        (void)stream->num_entries();
        (void)stream->num_partitions();
        (void)stream->index_bytes();
        const storage::IoStats io = mgr_->SnapshotIoStats();
        EXPECT_GE(io.bytes_written, 0u);
        std::this_thread::yield();
      }
    };

    std::thread q1(querier, 7001);
    std::thread q2(querier, 7002);
    std::thread s1(stats_reader);
    std::thread s2(stats_reader);

    for (size_t i = 0; i < collection_.size(); ++i) {
      ASSERT_TRUE(raw_->Append(collection_[i]).ok());
      ASSERT_TRUE(
          stream->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
      acknowledged.store(i + 1, std::memory_order_release);
    }
    ASSERT_TRUE(stream->FlushAll().ok());
    stop.store(true, std::memory_order_release);
    q1.join();
    q2.join();
    s1.join();
    s2.join();

    // Quiesced: the snapshot agrees with the plain accessors, everything
    // is sealed, and the queriers did real work.
    const StreamingStats final_stats = stream->SnapshotStats();
    EXPECT_EQ(final_stats.entries, collection_.size());
    EXPECT_EQ(final_stats.buffered, 0u);
    EXPECT_EQ(final_stats.pending_tasks, 0u);
    EXPECT_EQ(stream->num_entries(), collection_.size());
    EXPECT_GT(final_stats.seals_completed, 0u);
    EXPECT_GT(merged.entries_examined, 0u);
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
};

TEST_F(StreamStatsStressTest, BtpAccountingRaceFree) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kClsm;
  spec.mode = palm::StreamMode::kBTP;
  spec.buffer_entries = 64;
  spec.btp_merge_k = 2;
  Hammer(spec, "btp_stress");
}

TEST_F(StreamStatsStressTest, TpAccountingRaceFree) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.mode = palm::StreamMode::kTP;
  spec.buffer_entries = 64;
  Hammer(spec, "tp_stress");
}

TEST_F(StreamStatsStressTest, ClsmAccountingRaceFree) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kClsm;
  spec.mode = palm::StreamMode::kPP;
  spec.buffer_entries = 64;
  Hammer(spec, "clsm_stress");
}

// The cross-shard satellite: SnapshotStats() on the sharded wrapper folds
// K per-shard snapshots via StreamingStats::Add. Each addend is taken
// under its shard's state lock and the shards are read in a fixed order,
// so consecutive aggregate reads are torn-free (TSan pins the reads) and
// entries never shrink. Backpressure is armed so the stall/inflight
// counters are live, not zero, while being hammered.
TEST_F(StreamStatsStressTest, ShardedAggregationRaceFree) {
  ThreadPool background(2);
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.mode = palm::StreamMode::kTP;
  spec.buffer_entries = 48;
  spec.async_ingest = true;
  spec.background_pool = &background;
  spec.max_inflight_seals = 2;  // kBlock: stall counters exercise too
  palm::ShardedStreamingIndex::Options opts;
  opts.spec = spec;
  opts.num_shards = 3;
  auto stream =
      palm::ShardedStreamingIndex::Create(mgr_.get(), "sharded_stress",
                                          opts)
          .TakeValue();
  ASSERT_NE(stream, nullptr);

  std::atomic<bool> stop{false};
  core::QueryCounters merged;
  std::mutex merged_mu;

  auto querier = [&](uint64_t seed) {
    Rng rng(seed);
    core::QueryCounters local;
    do {
      auto query = testutil::NoisyCopy(
          collection_, rng.NextBounded(collection_.size()), 0.5, seed);
      core::QueryCounters counters;
      auto result = stream->ExactSearch(query, {}, &counters);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      local.Add(counters);
    } while (!stop.load(std::memory_order_acquire));
    std::lock_guard<std::mutex> lock(merged_mu);
    merged.Add(local);
  };

  auto stats_reader = [&] {
    uint64_t last_entries = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const StreamingStats stats = stream->SnapshotStats();
      EXPECT_GE(stats.entries, last_entries);
      last_entries = stats.entries;
      EXPECT_GE(stats.entries, stats.buffered);
      // Ingest admission respects the cap; the FlushAll drain barrier
      // (racing these reads at the end of the stream) is allowed one
      // unconditional detach past it, hence cap + 1 per shard.
      EXPECT_LE(stats.seals_inflight, 3u * (2u + 1u));
      for (size_t s = 0; s < stream->num_shards(); ++s) {
        const StreamingStats shard = stream->ShardStats(s);
        EXPECT_GE(shard.entries, shard.buffered);
        EXPECT_LE(shard.seals_inflight, 2u + 1u);
      }
      const storage::IoStats io = stream->AggregateIoStats();
      EXPECT_GE(io.bytes_written, 0u);
      (void)stream->num_entries();
      (void)stream->num_partitions();
      (void)stream->index_bytes();
      std::this_thread::yield();
    }
  };

  std::thread q1(querier, 8001);
  std::thread q2(querier, 8002);
  std::thread s1(stats_reader);
  std::thread s2(stats_reader);

  for (size_t i = 0; i < collection_.size(); ++i) {
    ASSERT_TRUE(
        stream->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(stream->FlushAll().ok());
  stop.store(true, std::memory_order_release);
  q1.join();
  q2.join();
  s1.join();
  s2.join();

  const StreamingStats final_stats = stream->SnapshotStats();
  EXPECT_EQ(final_stats.entries, collection_.size());
  EXPECT_EQ(final_stats.buffered, 0u);
  EXPECT_EQ(final_stats.pending_tasks, 0u);
  EXPECT_EQ(final_stats.seals_inflight, 0u);
  EXPECT_EQ(stream->num_entries(), collection_.size());
  EXPECT_GT(final_stats.seals_completed, 0u);
  uint64_t per_shard_sum = 0;
  for (size_t s = 0; s < stream->num_shards(); ++s) {
    per_shard_sum += stream->ShardStats(s).entries;
  }
  EXPECT_EQ(per_shard_sum, collection_.size());
  EXPECT_GT(merged.entries_examined, 0u);
}

// Regression: StreamingStats::Add used to merge cross-shard stall
// percentiles as max(per-shard p50) / max(per-shard p99). A max of
// percentiles is not the percentile of anything — one shard with a single
// slow stall dragged the aggregate p50 to that outlier even when the
// other shard had hundreds of fast stalls. Add now concatenates the
// underlying sample windows and recomputes, so the aggregate is the exact
// percentile of the pooled multiset.
TEST(StreamingStatsMergeTest, PercentilesPoolSamplesAcrossShards) {
  StreamingStats busy;  // 100 fast stalls: 1..100 ms.
  for (int i = 1; i <= 100; ++i) {
    busy.stall_samples.push_back(static_cast<double>(i));
  }
  busy.stall_ms_p50 = StreamingStats::PercentileMs(busy.stall_samples, 0.50);
  busy.stall_ms_p99 = StreamingStats::PercentileMs(busy.stall_samples, 0.99);

  StreamingStats outlier;  // One pathological 1000 ms stall.
  outlier.stall_samples.push_back(1000.0);
  outlier.stall_ms_p50 = 1000.0;
  outlier.stall_ms_p99 = 1000.0;

  StreamingStats total;
  total.Add(busy);
  total.Add(outlier);

  // Pooled window: {1..100, 1000}, n=101. Nearest-rank index p*(n-1).
  EXPECT_DOUBLE_EQ(total.stall_ms_p50, 51.0);   // old code: max = 1000
  EXPECT_DOUBLE_EQ(total.stall_ms_p99, 100.0);  // old code: max = 1000
  ASSERT_EQ(total.stall_samples.size(), 101u);

  // Merge order must not matter for the percentile values.
  StreamingStats reversed;
  reversed.Add(outlier);
  reversed.Add(busy);
  EXPECT_DOUBLE_EQ(reversed.stall_ms_p50, total.stall_ms_p50);
  EXPECT_DOUBLE_EQ(reversed.stall_ms_p99, total.stall_ms_p99);

  // Folding an idle shard (no stalls) leaves the percentiles unchanged.
  StreamingStats idle;
  total.Add(idle);
  EXPECT_DOUBLE_EQ(total.stall_ms_p50, 51.0);
  EXPECT_DOUBLE_EQ(total.stall_ms_p99, 100.0);
}

}  // namespace
}  // namespace stream
}  // namespace coconut
