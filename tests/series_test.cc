#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>

#include "common/rng.h"
#include "series/breakpoints.h"
#include "series/distance.h"
#include "series/isax.h"
#include "series/paa.h"
#include "series/series.h"
#include "series/sortable.h"

namespace coconut {
namespace series {
namespace {

std::vector<Value> RandomWalk(Rng* rng, size_t n) {
  std::vector<Value> v(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng->NextGaussian();
    v[i] = static_cast<Value>(x);
  }
  return v;
}

// ---------------------------------------------------------------- znorm

TEST(ZNormalizeTest, ZeroMeanUnitVariance) {
  Rng rng(1);
  auto v = RandomWalk(&rng, 256);
  ZNormalize(v);
  double sum = std::accumulate(v.begin(), v.end(), 0.0);
  double sum_sq = 0.0;
  for (Value x : v) sum_sq += static_cast<double>(x) * x;
  EXPECT_NEAR(sum / v.size(), 0.0, 1e-4);
  EXPECT_NEAR(sum_sq / v.size(), 1.0, 1e-3);
}

TEST(ZNormalizeTest, ConstantSeriesBecomesZeros) {
  std::vector<Value> v(64, 5.0f);
  ZNormalize(v);
  for (Value x : v) EXPECT_EQ(x, 0.0f);
}

TEST(ZNormalizeTest, EmptyIsNoop) {
  std::vector<Value> v;
  ZNormalize(v);
  EXPECT_TRUE(v.empty());
}

TEST(SeriesCollectionTest, AppendAndAccess) {
  SeriesCollection c(4);
  c.Append(std::vector<Value>{1, 2, 3, 4});
  c.Append(std::vector<Value>{5, 6, 7, 8});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1][0], 5.0f);
  EXPECT_EQ(c[0][3], 4.0f);
}

// ---------------------------------------------------------------- PAA

TEST(PaaTest, MeanOfSegments) {
  std::vector<Value> v{1, 1, 3, 3, 5, 5, 7, 7};
  auto paa = ComputePaa(v, 4);
  ASSERT_EQ(paa.size(), 4u);
  EXPECT_FLOAT_EQ(paa[0], 1.0f);
  EXPECT_FLOAT_EQ(paa[1], 3.0f);
  EXPECT_FLOAT_EQ(paa[2], 5.0f);
  EXPECT_FLOAT_EQ(paa[3], 7.0f);
}

TEST(PaaTest, SingleSegmentIsGlobalMean) {
  std::vector<Value> v{2, 4, 6, 8};
  auto paa = ComputePaa(v, 1);
  EXPECT_FLOAT_EQ(paa[0], 5.0f);
}

TEST(PaaTest, NonDivisibleLengthUsesFractionalWeights) {
  // 3 points, 2 segments: seg0 = x0 + 0.5*x1, seg1 = 0.5*x1 + x2 (each /1.5).
  std::vector<Value> v{2, 4, 6};
  auto paa = ComputePaa(v, 2);
  EXPECT_NEAR(paa[0], (2 + 0.5 * 4) / 1.5, 1e-5);
  EXPECT_NEAR(paa[1], (0.5 * 4 + 6) / 1.5, 1e-5);
}

TEST(PaaTest, PreservesGlobalMean) {
  Rng rng(3);
  auto v = RandomWalk(&rng, 96);
  auto paa = ComputePaa(v, 8);
  double series_mean = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
  double paa_mean = std::accumulate(paa.begin(), paa.end(), 0.0) / paa.size();
  EXPECT_NEAR(series_mean, paa_mean, 1e-4);
}

// Regression: an empty input used to divide by a zero segment width and
// fill the output with NaN, which then poisoned every downstream
// comparison (NaN SAX symbols, NaN MINDIST). The contract is all-zero
// segments, the PAA of nothing.
TEST(PaaTest, EmptyInputYieldsZerosNotNan) {
  auto paa = ComputePaa(std::span<const Value>(), 8);
  ASSERT_EQ(paa.size(), 8u);
  for (float v : paa) EXPECT_EQ(v, 0.0f);

  std::vector<float> out(8, -1.0f);
  ComputePaa(std::span<const Value>(), 8, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(PaaTest, FewerPointsThanSegmentsUsesFractionalWidths) {
  // 2 points into 4 segments: each segment covers half a point; the means
  // are finite and the global mean is preserved.
  std::vector<Value> v{2, 6};
  auto paa = ComputePaa(v, 4);
  ASSERT_EQ(paa.size(), 4u);
  EXPECT_FLOAT_EQ(paa[0], 2.0f);
  EXPECT_FLOAT_EQ(paa[3], 6.0f);
  double mean = 0.0;
  for (float x : paa) {
    EXPECT_TRUE(std::isfinite(x));
    mean += x;
  }
  EXPECT_NEAR(mean / 4, 4.0, 1e-5);
}

TEST(PaaTest, NonPositiveSegmentCountWritesNothing) {
  EXPECT_TRUE(ComputePaa(std::vector<Value>{1, 2, 3}, 0).empty());
  EXPECT_TRUE(ComputePaa(std::vector<Value>{1, 2, 3}, -3).empty());
  std::vector<float> out(4, 7.0f);
  ComputePaa(std::vector<Value>{1, 2, 3}, 0, out);
  for (float v : out) EXPECT_EQ(v, 7.0f);  // untouched
}

// ---------------------------------------------------------------- Breakpoints

TEST(BreakpointsTest, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(Breakpoints::InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(Breakpoints::InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(Breakpoints::InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(Breakpoints::InverseNormalCdf(0.841344746), 1.0, 1e-6);
}

TEST(BreakpointsTest, TableSizesAndMonotonicity) {
  for (int bits = 1; bits <= 8; ++bits) {
    const auto& t = Breakpoints::ForBits(bits);
    ASSERT_EQ(t.size(), static_cast<size_t>((1 << bits) - 1));
    for (size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i - 1], t[i]);
  }
}

TEST(BreakpointsTest, OneBitSplitsAtZero) {
  const auto& t = Breakpoints::ForBits(1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_NEAR(t[0], 0.0, 1e-9);
  EXPECT_EQ(Breakpoints::Quantize(-0.5, 1), 0);
  EXPECT_EQ(Breakpoints::Quantize(0.5, 1), 1);
}

TEST(BreakpointsTest, QuantizeIsMonotone) {
  for (int bits : {2, 4, 8}) {
    uint8_t prev = 0;
    for (double x = -4.0; x <= 4.0; x += 0.01) {
      uint8_t s = Breakpoints::Quantize(x, bits);
      EXPECT_GE(s, prev);
      prev = s;
    }
    EXPECT_EQ(prev, (1 << bits) - 1);
  }
}

TEST(BreakpointsTest, RegionsContainTheirValues) {
  for (int bits : {3, 8}) {
    for (double x = -3.0; x <= 3.0; x += 0.1) {
      uint8_t s = Breakpoints::Quantize(x, bits);
      EXPECT_GE(x, Breakpoints::RegionLower(s, bits));
      EXPECT_LT(x, Breakpoints::RegionUpper(s, bits));
    }
  }
}

// ---------------------------------------------------------------- iSAX

TEST(SaxTest, SymbolsTrackPaaMagnitude) {
  SaxConfig cfg{.series_length = 64, .num_segments = 4, .bits_per_segment = 8};
  // Strongly decreasing staircase: symbols must strictly decrease.
  std::vector<Value> v(64);
  for (int i = 0; i < 64; ++i) v[i] = static_cast<Value>(-i);
  auto norm = ZNormalized(v);
  SaxWord w = ComputeSax(norm, cfg);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
  EXPECT_GT(w[2], w[3]);
}

TEST(SaxTest, ValidConfigBounds) {
  SaxConfig good;
  EXPECT_TRUE(good.Valid());
  SaxConfig bad1{.series_length = 8, .num_segments = 16, .bits_per_segment = 8};
  EXPECT_FALSE(bad1.Valid());
  SaxConfig bad2{.series_length = 256, .num_segments = 17,
                 .bits_per_segment = 8};
  EXPECT_FALSE(bad2.Valid());
  SaxConfig bad3{.series_length = 256, .num_segments = 16,
                 .bits_per_segment = 9};
  EXPECT_FALSE(bad3.Valid());
}

// ---------------------------------------------------------------- Sortable keys

class SortableKeyRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SortableKeyRoundTrip, InterleaveIsLossless) {
  auto [segments, bits] = GetParam();
  SaxConfig cfg{.series_length = 256, .num_segments = segments,
                .bits_per_segment = bits};
  Rng rng(segments * 31 + bits);
  for (int trial = 0; trial < 200; ++trial) {
    SaxWord w{};
    for (int s = 0; s < segments; ++s) {
      w[s] = static_cast<uint8_t>(rng.NextBounded(1u << bits));
    }
    SortableKey key = InterleaveSax(w, cfg);
    SaxWord back = DeinterleaveKey(key, cfg);
    EXPECT_EQ(w, back);
  }
}

TEST_P(SortableKeyRoundTrip, SegmentMajorIsLossless) {
  auto [segments, bits] = GetParam();
  SaxConfig cfg{.series_length = 256, .num_segments = segments,
                .bits_per_segment = bits};
  Rng rng(segments * 17 + bits);
  for (int trial = 0; trial < 200; ++trial) {
    SaxWord w{};
    for (int s = 0; s < segments; ++s) {
      w[s] = static_cast<uint8_t>(rng.NextBounded(1u << bits));
    }
    SortableKey key = SegmentMajorKey(w, cfg);
    SaxWord back = SegmentMajorToSax(key, cfg);
    EXPECT_EQ(w, back);
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, SortableKeyRoundTrip,
                         ::testing::Values(std::make_tuple(4, 2),
                                           std::make_tuple(8, 4),
                                           std::make_tuple(16, 8),
                                           std::make_tuple(16, 1),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(16, 4)));

TEST(SortableKeyTest, OrderingMatchesBitInterleaving) {
  SaxConfig cfg{.series_length = 16, .num_segments = 2, .bits_per_segment = 2};
  // Symbols (a, b): interleaved bits are a1 b1 a0 b0 (MSB first).
  // (0,0) -> 0000, (0,1) -> 0101? No: a=0,b=1 -> bits a1=0,b1=0,a0=0,b0=1 = 0001.
  // Highest: (3,3) -> 1111.
  auto key = [&](uint8_t a, uint8_t b) {
    SaxWord w{};
    w[0] = a;
    w[1] = b;
    return InterleaveSax(w, cfg);
  };
  EXPECT_LT(key(0, 0), key(0, 1));
  EXPECT_LT(key(0, 1), key(1, 0));  // a's MSB round comes before b's LSB.
  EXPECT_LT(key(1, 3), key(2, 0));  // MSB of a dominates.
  EXPECT_LT(key(2, 2), key(3, 3));
  EXPECT_EQ(key(3, 3), SortableKey({0xF000000000000000ULL, 0}));
}

TEST(SortableKeyTest, InterleavedOrderClustersAllSegments) {
  // The core property: series similar in *all* segments sort nearby, while
  // segment-major order can place them far apart. Construct three words:
  //   q  = (128, 128, ..., 128)
  //   near = q with every symbol +1 (similar in all segments)
  //   far  = (128, 0, 0, ..., 0) (same first segment, wildly off elsewhere)
  SaxConfig cfg;  // 16 x 8 bits.
  SaxWord q{};
  SaxWord near_w{};
  SaxWord far_w{};
  for (int s = 0; s < 16; ++s) {
    q[s] = 128;
    near_w[s] = 129;
    far_w[s] = s == 0 ? 128 : 0;
  }
  auto dist = [](const SortableKey& a, const SortableKey& b) {
    // Compare by the more significant differing word, as a coarse "distance
    // along the sorted order".
    auto hi = [](const SortableKey& k) {
      return static_cast<double>(k.words[0]);
    };
    return std::abs(hi(a) - hi(b));
  };
  SortableKey kq = InterleaveSax(q, cfg);
  SortableKey kn = InterleaveSax(near_w, cfg);
  SortableKey kf = InterleaveSax(far_w, cfg);
  EXPECT_LT(dist(kq, kn), dist(kq, kf));

  // Segment-major puts far_w right next to q (same first byte) even though
  // it differs maximally in 15 of 16 segments.
  SortableKey mq = SegmentMajorKey(q, cfg);
  SortableKey mn = SegmentMajorKey(near_w, cfg);
  SortableKey mf = SegmentMajorKey(far_w, cfg);
  EXPECT_LT(dist(mq, mf), dist(mq, mn));
}

TEST(SortableKeyTest, MinMaxAndHex) {
  EXPECT_LT(SortableKey::Min(), SortableKey::Max());
  EXPECT_EQ(SortableKey::Min().ToHex(), std::string(32, '0'));
  EXPECT_EQ(SortableKey::Max().ToHex(), std::string(32, 'f'));
}

// ---------------------------------------------------------------- distances

TEST(DistanceTest, EuclideanSquaredBasics) {
  std::vector<Value> a{0, 0, 0};
  std::vector<Value> b{1, 2, 2};
  EXPECT_DOUBLE_EQ(EuclideanSquared(a, b), 9.0);
  EXPECT_DOUBLE_EQ(EuclideanSquared(a, a), 0.0);
}

TEST(DistanceTest, EarlyAbandonMatchesWhenUnderThreshold) {
  Rng rng(5);
  auto a = RandomWalk(&rng, 256);
  auto b = RandomWalk(&rng, 256);
  double full = EuclideanSquared(a, b);
  EXPECT_DOUBLE_EQ(EuclideanSquaredEarlyAbandon(a, b, full + 1.0), full);
  // Abandoned result must still exceed the threshold.
  EXPECT_GT(EuclideanSquaredEarlyAbandon(a, b, full / 4), full / 4);
}

// Regression: mismatched span lengths used to read past the end of the
// shorter operand (the loop trusted a.size()). The kernel boundary now
// clamps to the common prefix; two spans sharing a prefix but differing in
// tail length must agree with the explicit prefix comparison, and an empty
// operand contributes distance zero.
TEST(DistanceTest, MismatchedLengthsCompareCommonPrefix) {
  Rng rng(11);
  auto a = RandomWalk(&rng, 100);
  auto b = RandomWalk(&rng, 64);
  const std::span<const Value> a64(a.data(), 64);
  EXPECT_DOUBLE_EQ(EuclideanSquared(a, b), EuclideanSquared(a64, b));
  EXPECT_DOUBLE_EQ(EuclideanSquared(b, a), EuclideanSquared(b, a64));
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(EuclideanSquaredEarlyAbandon(a, b, inf),
                   EuclideanSquared(a64, b));
  EXPECT_DOUBLE_EQ(EuclideanSquared(a, std::span<const Value>()), 0.0);
  EXPECT_DOUBLE_EQ(
      EuclideanSquaredEarlyAbandon(std::span<const Value>(), b, inf), 0.0);
}

class MinDistLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(MinDistLowerBound, HoldsForRandomPairs) {
  const int bits = GetParam();
  SaxConfig cfg{.series_length = 128, .num_segments = 8,
                .bits_per_segment = bits};
  Rng rng(77 + bits);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = ZNormalized(RandomWalk(&rng, 128));
    auto b = ZNormalized(RandomWalk(&rng, 128));
    auto query_paa = ComputePaa(a, cfg.num_segments);
    SaxWord wb = ComputeSax(b, cfg);
    const double lb = MinDistSquaredToSax(query_paa, wb, cfg);
    const double actual = EuclideanSquared(a, b);
    EXPECT_LE(lb, actual + 1e-6)
        << "lower bound violated at trial " << trial << " bits " << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, MinDistLowerBound,
                         ::testing::Values(1, 2, 4, 8));

TEST(DistanceTest, MinDistZeroWhenPaaInsideRegion) {
  SaxConfig cfg{.series_length = 64, .num_segments = 4, .bits_per_segment = 4};
  Rng rng(9);
  auto a = ZNormalized(RandomWalk(&rng, 64));
  auto paa = ComputePaa(a, 4);
  SaxWord w = ComputeSaxFromPaa(paa, cfg);
  EXPECT_DOUBLE_EQ(MinDistSquaredToSax(paa, w, cfg), 0.0);
}

TEST(DistanceTest, RegionFromSymbolRangeContainsBoth) {
  SaxConfig cfg{.series_length = 64, .num_segments = 4, .bits_per_segment = 8};
  SaxWord lo{};
  SaxWord hi{};
  for (int s = 0; s < 4; ++s) {
    lo[s] = 10;
    hi[s] = 200;
  }
  SaxRegion r = RegionFromSymbolRange(lo, hi, cfg);
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(r.lower[s], Breakpoints::RegionLower(10, 8));
    EXPECT_GE(r.upper[s], Breakpoints::RegionUpper(200, 8));
  }
}

TEST(DistanceTest, RegionFromPrefixWidensWithFewerBits) {
  SaxConfig cfg{.series_length = 64, .num_segments = 2, .bits_per_segment = 8};
  SaxWord prefix{};
  prefix[0] = 2;  // Top 2 bits = binary 10.
  prefix[1] = 0;
  std::vector<uint8_t> bits2{2, 0};
  std::vector<uint8_t> bits4{2, 0};
  SaxRegion wide = RegionFromPrefix(prefix, bits2, cfg);
  // Unconstrained segment 1 must be infinite.
  EXPECT_EQ(wide.lower[1], -HUGE_VALF);
  EXPECT_EQ(wide.upper[1], HUGE_VALF);
  // Prefix "10" at 2 bits covers symbols [128, 191] at 8 bits.
  EXPECT_FLOAT_EQ(wide.lower[0],
                  static_cast<float>(Breakpoints::RegionLower(128, 8)));
  EXPECT_FLOAT_EQ(wide.upper[0],
                  static_cast<float>(Breakpoints::RegionUpper(191, 8)));
}

TEST(DistanceTest, PrefixRegionLowerBoundHolds) {
  // MINDIST through a prefix region must also lower-bound the true distance.
  SaxConfig cfg{.series_length = 128, .num_segments = 8,
                .bits_per_segment = 8};
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = ZNormalized(RandomWalk(&rng, 128));
    auto b = ZNormalized(RandomWalk(&rng, 128));
    auto query_paa = ComputePaa(a, cfg.num_segments);
    SaxWord wb = ComputeSax(b, cfg);
    // Keep only the top 3 bits of each symbol as prefix.
    SaxWord prefix{};
    std::vector<uint8_t> pbits(8, 3);
    for (int s = 0; s < 8; ++s) prefix[s] = wb[s] >> 5;
    SaxRegion region = RegionFromPrefix(prefix, pbits, cfg);
    const double lb = MinDistSquared(query_paa, region, cfg);
    EXPECT_LE(lb, EuclideanSquared(a, b) + 1e-6);
  }
}

}  // namespace
}  // namespace series
}  // namespace coconut
