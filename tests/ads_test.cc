#include <gtest/gtest.h>

#include "ads/ads_index.h"
#include "tests/test_util.h"

namespace coconut {
namespace ads {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class AdsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("ads_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<AdsIndex> MakeAds(AdsIndex::Options options,
                                    const series::SeriesCollection& collection,
                                    const std::string& prefix = "ads") {
    raw_ = core::RawSeriesStore::Create(mgr_.get(), prefix + ".raw", 64)
               .TakeValue();
    EXPECT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
    auto ads =
        AdsIndex::Create(mgr_.get(), prefix, options, raw_.get()).TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      EXPECT_TRUE(ads->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
    }
    return ads;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_F(AdsTest, InsertAndCount) {
  auto collection = testutil::RandomWalkCollection(500, 64, 1);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 64,
                      .global_buffer_entries = 128},
                     collection);
  EXPECT_EQ(ads->num_entries(), 500u);
  EXPECT_GT(ads->num_leaves(), 1u);
  EXPECT_GE(ads->num_nodes(), ads->num_leaves());
}

TEST_F(AdsTest, SplitsKeepLeavesBounded) {
  auto collection = testutil::RandomWalkCollection(2000, 64, 2);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 50,
                      .global_buffer_entries = 100},
                     collection);
  // With capacity 50, 2000 entries need >= 40 leaves.
  EXPECT_GE(ads->num_leaves(), 40u);
}

TEST_F(AdsTest, ExactSearchMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 3);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 128,
                      .global_buffer_entries = 256},
                     collection);
  for (int q = 0; q < 20; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 47 % 1000, 0.4, 60 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = ads->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6) << "query " << q;
  }
}

TEST_F(AdsTest, MaterializedExactMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(600, 64, 4);
  auto ads = MakeAds({.sax = TestSax(), .materialized = true,
                      .leaf_capacity = 64, .global_buffer_entries = 128},
                     collection);
  for (int q = 0; q < 10; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 83 % 600, 0.4, 70 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = ads->ExactSearch(query, {}, nullptr).TakeValue();
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6);
  }
}

TEST_F(AdsTest, FindsPlantedSeries) {
  auto collection = testutil::RandomWalkCollection(400, 64, 5);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 64,
                      .global_buffer_entries = 512},
                     collection);
  std::vector<float> query(collection[123].begin(), collection[123].end());
  auto got = ads->ExactSearch(query, {}, nullptr).TakeValue();
  EXPECT_EQ(got.series_id, 123u);
  EXPECT_NEAR(got.distance_sq, 0.0, 1e-9);
}

TEST_F(AdsTest, ConstructionCausesRandomWrites) {
  // The headline structural difference vs Coconut: ADS+ construction
  // scatters writes across many per-leaf files.
  auto collection = testutil::RandomWalkCollection(2000, 64, 6);
  raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  mgr_->io_stats()->Reset();
  auto ads = AdsIndex::Create(mgr_.get(), "ads",
                              {.sax = TestSax(), .leaf_capacity = 100,
                               .global_buffer_entries = 200},
                              raw_.get())
                 .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(ads->Insert(i, collection[i], 0).ok());
  }
  ASSERT_TRUE(ads->FlushAll().ok());
  const auto& io = *mgr_->io_stats();
  // Flushes hop between leaf files: a large share of writes is random.
  EXPECT_GT(io.random_writes, io.total_writes() / 4);
}

TEST_F(AdsTest, GlobalBufferCapRespected) {
  auto collection = testutil::RandomWalkCollection(1500, 64, 7);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 200,
                      .global_buffer_entries = 100},
                     collection);
  // Buffered entries can exceed the cap only transiently within an insert.
  EXPECT_LE(ads->buffered_entries(), 100u + 1u);
}

TEST_F(AdsTest, FlushAllEmptiesBuffers) {
  auto collection = testutil::RandomWalkCollection(300, 64, 8);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 64,
                      .global_buffer_entries = 1024},
                     collection);
  EXPECT_GT(ads->buffered_entries(), 0u);
  ASSERT_TRUE(ads->FlushAll().ok());
  EXPECT_EQ(ads->buffered_entries(), 0u);
  EXPECT_GT(ads->total_file_bytes(), 0u);

  // Data still searchable after the flush.
  std::vector<float> query(collection[9].begin(), collection[9].end());
  auto got = ads->ExactSearch(query, {}, nullptr).TakeValue();
  EXPECT_EQ(got.series_id, 9u);
}

TEST_F(AdsTest, WindowFilteringWorks) {
  auto collection = testutil::RandomWalkCollection(500, 64, 9);
  auto ads = MakeAds({.sax = TestSax(), .leaf_capacity = 64,
                      .global_buffer_entries = 128},
                     collection);
  std::vector<float> query(collection[450].begin(), collection[450].end());
  core::SearchOptions opts;
  opts.window = core::TimeWindow{0, 200};
  auto got = ads->ExactSearch(query, opts, nullptr).TakeValue();
  ASSERT_TRUE(got.found);
  EXPECT_LE(got.timestamp, 200);
  double truth = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i <= 200; ++i) {
    truth = std::min(truth, series::EuclideanSquared(query, collection[i]));
  }
  EXPECT_NEAR(got.distance_sq, truth, 1e-6);
}

TEST_F(AdsTest, EmptyIndexFindsNothing) {
  raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  auto ads =
      AdsIndex::Create(mgr_.get(), "ads", {.sax = TestSax()}, raw_.get())
          .TakeValue();
  std::vector<float> query(64, 0.0f);
  EXPECT_FALSE(ads->ApproxSearch(query, {}, nullptr).TakeValue().found);
  EXPECT_FALSE(ads->ExactSearch(query, {}, nullptr).TakeValue().found);
}

TEST_F(AdsTest, RejectsBadOptions) {
  EXPECT_FALSE(AdsIndex::Create(mgr_.get(), "x",
                                {.sax = TestSax(), .leaf_capacity = 0},
                                nullptr)
                   .ok());
  EXPECT_FALSE(
      AdsIndex::Create(mgr_.get(), "x", {.sax = TestSax()}, nullptr).ok());
}

}  // namespace
}  // namespace ads
}  // namespace coconut
