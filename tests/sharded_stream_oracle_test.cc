// The cross-shard stream oracle: ShardedStreamingIndex fuses PR 2's
// key-range sharding with PR 3's async streaming, and this suite pins the
// fusion three ways. (1) Concurrent ingest+query against K shards stays
// well-formed mid-flight and, at every quiesce checkpoint (FlushAll, the
// cross-shard drain barrier), exact results equal testutil::BruteForceKnn
// over the acknowledged prefix. (2) For every supported async variant ×
// K ∈ {1, 2, 4, 7}, a drained sharded-async stream is bit-for-bit
// equivalent — per shard key range — to unsharded synchronous indexes
// built over the routed subsequences: same partition sets, same entry
// orders, same query bits. Routing, not scheduling, decides shard
// contents. (3) All three timestamp policies hold against the *global*
// watermark, including regressions that straddle shard boundaries.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "palm/factory.h"
#include "palm/sharded_streaming_index.h"
#include "series/distance.h"
#include "stream/btp.h"
#include "stream/pp.h"
#include "stream/tp.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace {

using core::SearchOptions;
using core::TimeWindow;
using stream::StreamingIndex;

constexpr size_t kSeries = 480;
constexpr size_t kLength = 64;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

VariantSpec BaseSpec(IndexFamily family, StreamMode mode, bool materialized) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = family;
  spec.mode = mode;
  spec.materialized = materialized;
  spec.buffer_entries = 24;  // Many per-shard seals (and merges) over 480.
  spec.btp_merge_k = 2;
  return spec;
}

/// The streaming cells that support background ingestion (and therefore
/// sharding).
std::vector<VariantSpec> AsyncSpecs() {
  return {
      BaseSpec(IndexFamily::kCTree, StreamMode::kTP, false),
      BaseSpec(IndexFamily::kCTree, StreamMode::kTP, true),
      BaseSpec(IndexFamily::kClsm, StreamMode::kBTP, false),
      BaseSpec(IndexFamily::kClsm, StreamMode::kBTP, true),
      BaseSpec(IndexFamily::kClsm, StreamMode::kPP, false),
  };
}

const size_t kShardCounts[] = {1, 2, 4, 7};

class ShardedStreamOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("sharded_stream_oracle");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(kSeries, kLength, 41);
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  /// Creates a sharded async stream (the wrapper owns per-shard storage,
  /// pools and raw stores under mgr_'s directory). Constructed directly so
  /// K = 1 also goes through the wrapper — the factory routes K = 1 to the
  /// plain unsharded index (FactoryDispatchesShardedStreaming pins the
  /// dispatch itself).
  std::unique_ptr<ShardedStreamingIndex> MakeSharded(
      VariantSpec spec, size_t shards, ThreadPool* background,
      const std::string& name) {
    spec.async_ingest = true;
    spec.background_pool = background;
    ShardedStreamingIndex::Options opts;
    opts.spec = spec;
    opts.num_shards = shards;
    auto r = ShardedStreamingIndex::Create(mgr_.get(), name, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.TakeValue() : nullptr;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  series::SeriesCollection collection_{kLength};
};

// (1) Concurrent ingest+query race, quiesce checkpoints ≡ brute force.
// Non-materialized variants carry the sweep (materialized twins share the
// code paths and are pinned exhaustively by the equivalence test below).
TEST_F(ShardedStreamOracleTest, ConcurrentIngestQueryQuiesceExactness) {
  ThreadPool background(3);
  const std::vector<VariantSpec> specs = {
      BaseSpec(IndexFamily::kCTree, StreamMode::kTP, false),
      BaseSpec(IndexFamily::kClsm, StreamMode::kBTP, false),
      BaseSpec(IndexFamily::kClsm, StreamMode::kPP, false),
  };
  int ordinal = 0;
  for (const VariantSpec& base : specs) {
    for (size_t shards : kShardCounts) {
      VariantSpec spec = base;
      spec.num_shards = shards;
      spec.async_ingest = true;
      const std::string what = VariantName(spec);
      SCOPED_TRACE(what);
      {
        auto stream = MakeSharded(base, shards, &background,
                                  "cc" + std::to_string(ordinal++));
        ASSERT_NE(stream, nullptr);

        std::atomic<size_t> acknowledged{0};
        std::atomic<bool> stop{false};

        auto querier = [&](uint64_t seed) {
          Rng rng(seed);
          while (!stop.load(std::memory_order_acquire)) {
            const size_t ack_before =
                acknowledged.load(std::memory_order_acquire);
            const size_t base_id = rng.NextBounded(collection_.size());
            auto query =
                testutil::NoisyCopy(collection_, base_id, 0.4, seed + base_id);
            SearchOptions options;
            const bool windowed = rng.NextBounded(2) == 0;
            if (windowed && ack_before > 0) {
              const int64_t lo =
                  static_cast<int64_t>(rng.NextBounded(ack_before));
              options.window = TimeWindow{lo, lo + 100};
            }
            auto result = stream->ExactSearch(query, options, nullptr);
            ASSERT_TRUE(result.ok()) << result.status().ToString();
            const core::SearchResult match = result.value();
            if (!windowed && ack_before > 0) {
              // Everything acknowledged before the query started is in
              // the per-shard snapshots the scatter evaluates.
              EXPECT_TRUE(match.found);
            }
            if (!match.found) continue;
            // Whatever the race interleaving, an answer is a real series
            // at its true distance, inside the window, with the *global*
            // id (the gather translated the shard-local ordinal).
            ASSERT_LT(match.series_id, collection_.size());
            EXPECT_TRUE(options.window.Contains(match.timestamp));
            EXPECT_EQ(match.timestamp,
                      static_cast<int64_t>(match.series_id));
            const double true_d = series::EuclideanSquared(
                query, collection_[match.series_id]);
            EXPECT_NEAR(match.distance_sq, true_d, 1e-3);
          }
        };
        std::thread q1(querier, 5000 + ordinal);
        std::thread q2(querier, 6000 + ordinal);

        const std::vector<size_t> checkpoints = {120, 300, kSeries};
        size_t next = 0;
        for (size_t checkpoint : checkpoints) {
          for (size_t i = next; i < checkpoint; ++i) {
            ASSERT_TRUE(stream
                            ->Ingest(i, collection_[i],
                                     static_cast<int64_t>(i))
                            .ok());
            acknowledged.store(i + 1, std::memory_order_release);
          }
          next = checkpoint;
          // Quiesce: drain every shard's strand, then demand brute-force
          // exactness over the acknowledged prefix while the query
          // threads keep hammering away.
          ASSERT_TRUE(stream->FlushAll().ok());
          EXPECT_EQ(stream->num_entries(), checkpoint);
          const std::vector<TimeWindow> windows = {
              TimeWindow::All(),
              TimeWindow{0, static_cast<int64_t>(checkpoint / 2)},
              TimeWindow{static_cast<int64_t>(checkpoint / 3),
                         static_cast<int64_t>(checkpoint + 50)}};
          for (size_t w = 0; w < windows.size(); ++w) {
            for (int q = 0; q < 3; ++q) {
              auto query = testutil::NoisyCopy(
                  collection_, (q * 97 + 13) % checkpoint, 0.5, w * 10 + q);
              TimeWindow prefix = windows[w];
              prefix.end =
                  std::min(prefix.end, static_cast<int64_t>(checkpoint - 1));
              auto oracle =
                  testutil::BruteForceKnn(collection_, query, 1, prefix);
              SearchOptions options;
              options.window = windows[w];
              auto got = stream->ExactSearch(query, options, nullptr);
              ASSERT_TRUE(got.ok());
              ASSERT_EQ(got.value().found, !oracle.empty())
                  << what << " checkpoint " << checkpoint << " window " << w;
              if (!oracle.empty()) {
                EXPECT_NEAR(got.value().distance_sq, oracle[0].distance_sq,
                            1e-6)
                    << what << " checkpoint " << checkpoint << " window "
                    << w << " query " << q;
              }
            }
          }
        }
        stop.store(true, std::memory_order_release);
        q1.join();
        q2.join();
      }
      TearDown();
      SetUp();
    }
  }
}

// (2) The tentpole equivalence, for EVERY supported async variant ×
// K ∈ {1, 2, 4, 7}: after the drain barrier the sharded-async stream is
// bit-for-bit equivalent, per shard key range, to unsharded synchronous
// indexes built over the routed subsequences — and globally exact
// against brute force, boundary-straddling queries included.
TEST_F(ShardedStreamOracleTest, DrainedShardedEquivalentToUnshardedSyncPerKeyRange) {
  ThreadPool background(4);
  int ordinal = 0;
  for (const VariantSpec& base : AsyncSpecs()) {
    for (size_t shards : kShardCounts) {
      VariantSpec spec = base;
      spec.num_shards = shards;
      spec.async_ingest = true;
      const std::string what = VariantName(spec);
      SCOPED_TRACE(what);
      {
        auto stream = MakeSharded(base, shards, &background,
                                  "eq" + std::to_string(ordinal));
        ASSERT_NE(stream, nullptr);
        ShardedStreamingIndex* sharded = stream.get();
        ASSERT_EQ(sharded->num_shards(), shards);

        for (size_t i = 0; i < collection_.size(); ++i) {
          ASSERT_TRUE(stream
                          ->Ingest(i, collection_[i],
                                   static_cast<int64_t>(i))
                          .ok());
        }
        ASSERT_TRUE(stream->FlushAll().ok());
        EXPECT_EQ(stream->num_entries(), collection_.size());

        // Replay the routing: which global ordinals landed in which shard
        // depends only on values (ShardOf), never on scheduling.
        std::vector<std::vector<size_t>> routed(shards);
        for (size_t i = 0; i < collection_.size(); ++i) {
          routed[sharded->ShardOf(collection_[i])].push_back(i);
        }

        // Per shard key range: an unsharded *synchronous* reference built
        // over the routed subsequence (local ids = arrival ordinals, as
        // the wrapper assigns them) must match bit-for-bit.
        size_t nonempty = 0;
        for (size_t s = 0; s < shards; ++s) {
          SCOPED_TRACE("shard " + std::to_string(s));
          if (!routed[s].empty()) ++nonempty;
          VariantSpec ref_spec = base;  // sync, unsharded
          auto ref_raw =
              core::RawSeriesStore::Create(
                  mgr_.get(), "refraw" + std::to_string(ordinal) + "_" +
                                  std::to_string(s),
                  kLength)
                  .TakeValue();
          for (size_t i : routed[s]) {
            ASSERT_TRUE(ref_raw->Append(collection_[i]).ok());
          }
          ASSERT_TRUE(ref_raw->Flush().ok());
          auto ref = CreateStreamingIndex(
                         ref_spec, mgr_.get(),
                         "ref" + std::to_string(ordinal) + "_" +
                             std::to_string(s),
                         nullptr, ref_raw.get())
                         .TakeValue();
          for (size_t local = 0; local < routed[s].size(); ++local) {
            const size_t i = routed[s][local];
            ASSERT_TRUE(ref->Ingest(local, collection_[i],
                                    static_cast<int64_t>(i))
                            .ok());
          }
          ASSERT_TRUE(ref->FlushAll().ok());

          StreamingIndex* got = sharded->shard(s);
          EXPECT_EQ(got->num_entries(), routed[s].size());
          EXPECT_EQ(got->num_entries(), ref->num_entries());
          EXPECT_EQ(got->num_partitions(), ref->num_partitions());

          // TP/BTP shards: sealed partition sets — names (structural
          // suffix), sizes, classes, time ranges and exact entry order —
          // identical to the sync reference.
          auto* got_tp =
              dynamic_cast<stream::TemporalPartitioningIndex*>(got);
          auto* ref_tp =
              dynamic_cast<stream::TemporalPartitioningIndex*>(ref.get());
          ASSERT_EQ(got_tp != nullptr, ref_tp != nullptr);
          if (got_tp != nullptr) {
            const auto got_parts = got_tp->SnapshotPartitions();
            const auto ref_parts = ref_tp->SnapshotPartitions();
            ASSERT_EQ(got_parts.size(), ref_parts.size());
            for (size_t p = 0; p < ref_parts.size(); ++p) {
              EXPECT_EQ(
                  got_parts[p].name.substr(got_parts[p].name.find_last_of(
                      '.')),
                  ref_parts[p].name.substr(ref_parts[p].name.find_last_of(
                      '.')))
                  << what << " partition " << p;
              EXPECT_EQ(got_parts[p].entries, ref_parts[p].entries);
              EXPECT_EQ(got_parts[p].size_class, ref_parts[p].size_class);
              EXPECT_EQ(got_parts[p].t_min, ref_parts[p].t_min);
              EXPECT_EQ(got_parts[p].t_max, ref_parts[p].t_max);
              auto got_dump = got_tp->DumpPartitionEntries(p);
              auto ref_dump = ref_tp->DumpPartitionEntries(p);
              ASSERT_TRUE(got_dump.ok());
              ASSERT_TRUE(ref_dump.ok());
              ASSERT_EQ(got_dump.value().size(), ref_dump.value().size());
              for (size_t e = 0; e < ref_dump.value().size(); ++e) {
                ASSERT_TRUE(got_dump.value()[e] == ref_dump.value()[e])
                    << what << " partition " << p << " entry " << e;
              }
            }
          } else {
            // CLSM-PP shards: no partition dump; pin per-shard query
            // equivalence instead — same local ids, same distance bits.
            for (int q = 0; q < 4 && !routed[s].empty(); ++q) {
              auto query = testutil::NoisyCopy(
                  collection_, routed[s][q % routed[s].size()], 0.4,
                  900 + q);
              SearchOptions options;
              if (q % 2 == 1) options.window = TimeWindow{0, 250};
              auto from_got =
                  got->ExactSearch(query, options, nullptr).TakeValue();
              auto from_ref =
                  ref->ExactSearch(query, options, nullptr).TakeValue();
              EXPECT_EQ(from_got.found, from_ref.found);
              if (from_ref.found) {
                EXPECT_EQ(from_got.series_id, from_ref.series_id);
                EXPECT_EQ(from_got.distance_sq, from_ref.distance_sq);
                EXPECT_EQ(from_got.timestamp, from_ref.timestamp);
              }
            }
          }
        }
        if (shards > 1) {
          // The split must actually spread the key space for the
          // per-range comparison to mean anything.
          EXPECT_GT(nonempty, 1u) << what;
        }

        // Global exactness, straddling included: the gather must stitch
        // the per-shard answers back into the unsharded result.
        size_t cross_shard_answers = 0;
        const std::vector<TimeWindow> windows = {
            TimeWindow::All(), TimeWindow{100, 350}, TimeWindow{0, 50},
            TimeWindow{440, 999}};
        for (size_t w = 0; w < windows.size(); ++w) {
          SearchOptions options;
          options.window = windows[w];
          for (int q = 0; q < 4; ++q) {
            const size_t base_id = (q * 151 + 31) % kSeries;
            auto query =
                testutil::NoisyCopy(collection_, base_id, 0.5, w * 100 + q);
            auto oracle =
                testutil::BruteForceKnn(collection_, query, 2, windows[w]);
            auto got = stream->ExactSearch(query, options, nullptr);
            ASSERT_TRUE(got.ok());
            ASSERT_EQ(got.value().found, !oracle.empty())
                << what << " window " << w;
            if (!oracle.empty()) {
              // The id is pinned whenever the minimum is unique (the one
              // permitted divergence is which of two *exactly* equidistant
              // series wins — see ShardedIndex's gather contract).
              if (oracle.size() < 2 ||
                  oracle[0].distance_sq != oracle[1].distance_sq) {
                EXPECT_EQ(got.value().series_id, oracle[0].index)
                    << what << " window " << w << " query " << q;
              }
              EXPECT_NEAR(got.value().distance_sq, oracle[0].distance_sq,
                          1e-6);
              if (shards > 1 &&
                  sharded->ShardOf(query) !=
                      sharded->ShardOf(collection_[oracle[0].index])) {
                ++cross_shard_answers;  // the query straddled a boundary
              }
            }
          }
        }
        if (shards > 1) {
          // With 16 noisy queries over 7-way-split random walks, some
          // answers must come from a different shard than the query
          // itself routes to — i.e. the straddling cases are exercised,
          // not vacuously skipped.
          EXPECT_GT(cross_shard_answers, 0u) << what;
        }
      }
      ++ordinal;
      TearDown();
      SetUp();
    }
  }
}

// (3) Timestamp policies hold against the global watermark — a regression
// landing on a *different shard* than the current maximum is still
// rejected (kStrict) or clamped (kClamp), and kPermissive stays exact
// under out-of-order arrivals.
TEST_F(ShardedStreamOracleTest, TimestampPoliciesEnforcedAcrossShards) {
  ThreadPool background(2);
  VariantSpec base = BaseSpec(IndexFamily::kCTree, StreamMode::kTP, false);

  // Find two series routing to different shards under K=4.
  {
    base.timestamp_policy = stream::TimestampPolicy::kStrict;
    auto stream = MakeSharded(base, 4, &background, "strict");
    ASSERT_NE(stream, nullptr);
    ShardedStreamingIndex* sharded = stream.get();
    size_t a = 0;
    size_t b = 1;
    while (b < collection_.size() &&
           sharded->ShardOf(collection_[b]) ==
               sharded->ShardOf(collection_[a])) {
      ++b;
    }
    ASSERT_LT(b, collection_.size());
    ASSERT_TRUE(stream->Ingest(0, collection_[a], 100).ok());
    // Regression on another shard: the per-shard watermark alone would
    // admit it (that shard has seen nothing), the global one must not.
    const Status regressed = stream->Ingest(1, collection_[b], 50);
    EXPECT_FALSE(regressed.ok());
    EXPECT_EQ(regressed.code(), StatusCode::kInvalidArgument);
    // Equal timestamps stay admissible (non-decreasing contract), and the
    // refused entry must not have tightened the watermark.
    EXPECT_TRUE(stream->Ingest(2, collection_[b], 100).ok());
    ASSERT_TRUE(stream->FlushAll().ok());
    EXPECT_EQ(stream->num_entries(), 2u);
    TearDown();
    SetUp();
  }

  {
    base.timestamp_policy = stream::TimestampPolicy::kClamp;
    auto stream = MakeSharded(base, 4, &background, "clamp");
    ASSERT_NE(stream, nullptr);
    ASSERT_TRUE(stream->Ingest(0, collection_[0], 100).ok());
    ASSERT_TRUE(stream->Ingest(1, collection_[1], 40).ok());  // clamps to 100
    ASSERT_TRUE(stream->FlushAll().ok());
    SearchOptions early;
    early.window = TimeWindow{0, 99};
    auto before = stream->ExactSearch(collection_[1], early, nullptr);
    ASSERT_TRUE(before.ok());
    EXPECT_FALSE(before.value().found);  // nothing kept its pre-clamp time
    SearchOptions at;
    at.window = TimeWindow{100, 100};
    auto after = stream->ExactSearch(collection_[1], at, nullptr);
    ASSERT_TRUE(after.ok());
    ASSERT_TRUE(after.value().found);
    EXPECT_EQ(after.value().series_id, 1u);
    TearDown();
    SetUp();
  }

  {
    base.timestamp_policy = stream::TimestampPolicy::kPermissive;
    auto stream = MakeSharded(base, 4, &background, "permissive");
    ASSERT_NE(stream, nullptr);
    // Shuffled arrival times: permissive admits as-is and stays exact.
    std::vector<int64_t> timestamps(collection_.size());
    Rng rng(7);
    for (size_t i = 0; i < collection_.size(); ++i) {
      timestamps[i] = static_cast<int64_t>(rng.NextBounded(1000));
    }
    for (size_t i = 0; i < collection_.size(); ++i) {
      ASSERT_TRUE(stream->Ingest(i, collection_[i], timestamps[i]).ok());
    }
    ASSERT_TRUE(stream->FlushAll().ok());
    for (int q = 0; q < 5; ++q) {
      auto query = testutil::NoisyCopy(collection_, q * 83 % kSeries, 0.5,
                                       300 + q);
      SearchOptions options;
      options.window = TimeWindow{200, 700};
      auto oracle = testutil::BruteForceKnn(collection_, query, 1,
                                            options.window, &timestamps);
      auto got = stream->ExactSearch(query, options, nullptr);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().found, !oracle.empty());
      if (!oracle.empty()) {
        EXPECT_EQ(got.value().series_id, oracle[0].index) << q;
        EXPECT_NEAR(got.value().distance_sq, oracle[0].distance_sq, 1e-6);
      }
    }
  }
}

// The factory seam: num_shards > 1 on an async streaming spec dispatches
// to the wrapper (with the "-S<K>-async" name), requires async_ingest,
// and keeps rejecting the combinations the variant matrix forbids.
TEST_F(ShardedStreamOracleTest, FactoryDispatchesShardedStreaming) {
  ThreadPool background(2);
  VariantSpec spec = BaseSpec(IndexFamily::kClsm, StreamMode::kBTP, false);
  spec.num_shards = 4;
  spec.async_ingest = true;
  spec.background_pool = &background;
  EXPECT_EQ(VariantName(spec), "CLSM-BTP-S4-async");
  std::string why;
  EXPECT_TRUE(SpecIsValid(spec, &why)) << why;

  auto created =
      CreateStreamingIndex(spec, mgr_.get(), "disp", nullptr, nullptr);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto stream = created.TakeValue();
  auto* sharded = dynamic_cast<ShardedStreamingIndex*>(stream.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(stream->describe(), "ShardedStream[4xCLSM-BTP]");

  // A quick end-to-end pass through the factory-built wrapper.
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        stream->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(stream->FlushAll().ok());
  EXPECT_EQ(stream->num_entries(), 100u);

  // Sync sharded streaming stays off the matrix.
  spec.async_ingest = false;
  EXPECT_FALSE(SpecIsValid(spec, &why));
  EXPECT_FALSE(
      CreateStreamingIndex(spec, mgr_.get(), "bad", nullptr, nullptr).ok());
}

}  // namespace
}  // namespace palm
}  // namespace coconut
