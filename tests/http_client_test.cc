// Edge-case tests for BlockingHttpClient (palm/http_client.h), the
// channel under every loadgen worker and coordinator shard link:
// reconnecting after the server restarts, reassembling responses that
// arrive in many small TCP segments, and surfacing connect/request
// timeouts as structured kUnavailable statuses instead of hanging.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>
#include <thread>

#include "palm/api.h"
#include "palm/http_client.h"
#include "palm/http_server.h"

namespace coconut {
namespace palm {
namespace {

std::unique_ptr<api::Service> MakeService(const std::string& name) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "coconut_http_client" / name)
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  return api::Service::Create(root).TakeValue();
}

/// Hand-rolled one-shot TCP server for byte-level control of the
/// response: accepts one connection, reads until the request headers+body
/// are plausibly in, then runs `respond` on the raw fd.
class RawServer {
 public:
  explicit RawServer(std::function<void(int fd)> respond)
      : respond_(std::move(respond)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 1);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      // Drain the request (best effort — the tests send small bodies).
      char buf[4096];
      std::string request;
      while (request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        request.append(buf, static_cast<size_t>(n));
      }
      respond_(fd);
      ::close(fd);
    });
  }

  ~RawServer() {
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::function<void(int fd)> respond_;
  std::thread thread_;
};

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

TEST(HttpClientTest, ReconnectsAfterServerRestart) {
  auto service = MakeService("restart");
  auto server = HttpServer::Start(service.get(), {}).TakeValue();
  const uint16_t port = server->port();

  BlockingHttpClient client("127.0.0.1", port);
  auto first = client.Post("/api/v1/list_indexes", "");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200);

  // Bounce the server on the same port. The client's keep-alive socket
  // now points at a dead peer; the NEXT Post must fail cleanly (stale
  // connection, never a hang or a garbage response)...
  server->Stop();
  auto service2 = MakeService("restart2");
  HttpServerOptions reuse;
  reuse.port = port;
  auto reborn = HttpServer::Start(service2.get(), reuse);
  if (!reborn.ok()) {
    GTEST_SKIP() << "could not rebind port " << port << ": "
                 << reborn.status().ToString();
  }
  auto stale = client.Post("/api/v1/list_indexes", "");
  // ...and after Close() (what ShardClient's bounded retry does) the same
  // client object reaches the restarted server.
  if (!stale.ok()) {
    client.Close();
    stale = client.Post("/api/v1/list_indexes", "");
  }
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale.value().status, 200);
  EXPECT_EQ(stale.value().body, "[]");
}

TEST(HttpClientTest, ReassemblesResponseSplitAcrossManySegments) {
  // A response bigger than any single recv(), delivered in deliberately
  // tiny bursts: the client must reassemble exactly the declared
  // Content-Length bytes, no more, no less.
  std::string body;
  body.reserve(64 * 1024);
  for (int i = 0; body.size() < 64 * 1024; ++i) {
    body += "chunk " + std::to_string(i) + "|";
  }
  RawServer raw([&body](int fd) {
    const std::string head =
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
    SendAll(fd, head);
    for (size_t off = 0; off < body.size(); off += 1024) {
      SendAll(fd, body.substr(off, 1024));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  BlockingHttpClient client("127.0.0.1", raw.port());
  auto response = client.Post("/api/v1/anything", "{}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body.size(), body.size());
  EXPECT_EQ(response.value().body, body);
}

TEST(HttpClientTest, RequestTimeoutIsAStructuredStatus) {
  // The server accepts and never answers: an armed request timeout must
  // surface as kUnavailable within the budget.
  RawServer raw([](int fd) {
    std::this_thread::sleep_for(std::chrono::seconds(3));
    (void)fd;
  });
  BlockingHttpClientOptions options;
  options.request_timeout_ms = 200;
  BlockingHttpClient client("127.0.0.1", raw.port(), options);
  const auto before = std::chrono::steady_clock::now();
  auto response = client.Post("/api/v1/server_stats", "");
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - before)
                      .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(response.status().message().find("timed out"), std::string::npos)
      << response.status().message();
  EXPECT_LT(ms, 2000);
}

TEST(HttpClientTest, ConnectTimeoutIsAStructuredStatus) {
  // A listener whose accept queue is saturated drops further SYNs, so a
  // fresh connect() hangs in retransmission — the one way to make
  // connect stall deterministically on loopback.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 0), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval tv{0, 200000};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }

  BlockingHttpClientOptions options;
  options.connect_timeout_ms = 200;
  BlockingHttpClient client("127.0.0.1", ntohs(addr.sin_port), options);
  const auto before = std::chrono::steady_clock::now();
  auto response = client.Post("/api/v1/server_stats", "");
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - before)
                      .count();
  for (int fd : fillers) ::close(fd);
  ::close(listener);
  if (response.ok()) {
    GTEST_SKIP() << "kernel accepted past a full backlog; cannot stall "
                    "connect on this host";
  }
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(ms, 2000);
}

TEST(HttpClientTest, KeepAliveChurnReconnectsTransparently) {
  // A server that closes after every response (Connection: close) forces
  // the documented transparent reconnect between requests.
  auto service = MakeService("churn");
  auto server = HttpServer::Start(service.get(), {}).TakeValue();
  BlockingHttpClient client("127.0.0.1", server->port());
  for (int i = 0; i < 3; ++i) {
    auto response = client.Post("/api/v1/list_indexes", "",
                                {{"Connection", "close"}});
    ASSERT_TRUE(response.ok()) << "round " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
  }
}

}  // namespace
}  // namespace palm
}  // namespace coconut
