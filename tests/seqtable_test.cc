#include <gtest/gtest.h>

#include <algorithm>

#include "core/entry.h"
#include "seqtable/seq_table.h"
#include "seqtable/table_search.h"
#include "series/paa.h"
#include "tests/test_util.h"

namespace coconut {
namespace seqtable {
namespace {

using core::IndexEntry;
using series::SaxConfig;
using series::SortableKey;

class SeqTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("seqtable_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  // Builds a table from a z-normalized collection, sorted by key.
  std::unique_ptr<SeqTable> BuildFromCollection(
      const series::SeriesCollection& collection, const SeqTableOptions& opts,
      const std::string& name = "table") {
    struct Rec {
      IndexEntry entry;
      size_t ordinal;
    };
    std::vector<Rec> recs;
    for (size_t i = 0; i < collection.size(); ++i) {
      IndexEntry e;
      e.key = series::InterleaveSax(series::ComputeSax(collection[i], opts.sax),
                                    opts.sax);
      e.series_id = i;
      e.timestamp = static_cast<int64_t>(i);
      recs.push_back({e, i});
    }
    std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
      return core::EntryKeyLess()(a.entry, b.entry);
    });
    auto builder = SeqTableBuilder::Create(mgr_.get(), name, opts).TakeValue();
    for (const auto& rec : recs) {
      std::span<const float> payload;
      if (opts.materialized) payload = collection[rec.ordinal];
      EXPECT_TRUE(builder->Add(rec.entry, payload).ok());
    }
    EXPECT_TRUE(builder->Finish().ok());
    return SeqTable::Open(mgr_.get(), name, nullptr).TakeValue();
  }

  std::unique_ptr<storage::StorageManager> mgr_;
};

SaxConfig SmallSax() {
  return SaxConfig{.series_length = 64, .num_segments = 8,
                   .bits_per_segment = 8};
}

TEST_F(SeqTableTest, EmptyTableRoundTrip) {
  SeqTableOptions opts{.sax = SmallSax()};
  auto builder = SeqTableBuilder::Create(mgr_.get(), "t", opts).TakeValue();
  ASSERT_TRUE(builder->Finish().ok());
  auto table = SeqTable::Open(mgr_.get(), "t", nullptr).TakeValue();
  EXPECT_EQ(table->num_entries(), 0u);
  EXPECT_EQ(table->num_leaves(), 0u);
}

TEST_F(SeqTableTest, RejectsInvalidOptions) {
  SeqTableOptions bad{.sax = SmallSax(), .materialized = false,
                      .fill_factor = 0.0};
  EXPECT_FALSE(SeqTableBuilder::Create(mgr_.get(), "t", bad).ok());
  SeqTableOptions bad2{.sax = SmallSax(), .materialized = true,
                       .fill_factor = 1.0};
  bad2.sax.series_length = 2000;  // Too long to fit a page when materialized.
  bad2.sax.num_segments = 8;
  EXPECT_FALSE(SeqTableBuilder::Create(mgr_.get(), "t", bad2).ok());
}

TEST_F(SeqTableTest, RejectsOutOfOrderAdds) {
  SeqTableOptions opts{.sax = SmallSax()};
  auto builder = SeqTableBuilder::Create(mgr_.get(), "t", opts).TakeValue();
  IndexEntry hi{};
  hi.key = SortableKey{{10, 0}};
  IndexEntry lo{};
  lo.key = SortableKey{{5, 0}};
  ASSERT_TRUE(builder->Add(hi, {}).ok());
  EXPECT_FALSE(builder->Add(lo, {}).ok());
}

TEST_F(SeqTableTest, RejectsPayloadMismatch) {
  SeqTableOptions mat{.sax = SmallSax(), .materialized = true};
  auto builder = SeqTableBuilder::Create(mgr_.get(), "t", mat).TakeValue();
  IndexEntry e{};
  EXPECT_FALSE(builder->Add(e, {}).ok());  // Missing payload.

  SeqTableOptions nonmat{.sax = SmallSax(), .materialized = false};
  auto builder2 =
      SeqTableBuilder::Create(mgr_.get(), "t2", nonmat).TakeValue();
  std::vector<float> payload(64, 0.0f);
  EXPECT_FALSE(builder2->Add(e, payload).ok());  // Unexpected payload.
}

TEST_F(SeqTableTest, ScannerSeesAllEntriesInOrder) {
  auto collection = testutil::RandomWalkCollection(500, 64, 42);
  SeqTableOptions opts{.sax = SmallSax()};
  auto table = BuildFromCollection(collection, opts);
  EXPECT_EQ(table->num_entries(), 500u);

  auto scanner = table->NewScanner();
  IndexEntry entry;
  SortableKey prev = SortableKey::Min();
  size_t count = 0;
  std::vector<bool> seen(500, false);
  while (true) {
    auto has = scanner.Next(&entry, nullptr);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, entry.key);
    prev = entry.key;
    ASSERT_LT(entry.series_id, 500u);
    EXPECT_FALSE(seen[entry.series_id]);
    seen[entry.series_id] = true;
    ++count;
  }
  EXPECT_EQ(count, 500u);
}

TEST_F(SeqTableTest, MaterializedPayloadRoundTrip) {
  auto collection = testutil::RandomWalkCollection(100, 64, 7);
  SeqTableOptions opts{.sax = SmallSax(), .materialized = true};
  auto table = BuildFromCollection(collection, opts);

  auto scanner = table->NewScanner();
  IndexEntry entry;
  std::vector<float> payload;
  size_t checked = 0;
  while (true) {
    auto has = scanner.Next(&entry, &payload);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    ASSERT_EQ(payload.size(), 64u);
    auto original = collection[entry.series_id];
    for (size_t j = 0; j < 64; ++j) EXPECT_EQ(payload[j], original[j]);
    ++checked;
  }
  EXPECT_EQ(checked, 100u);
}

TEST_F(SeqTableTest, FillFactorControlsLeafCount) {
  auto collection = testutil::RandomWalkCollection(600, 64, 9);
  SeqTableOptions full{.sax = SmallSax(), .fill_factor = 1.0};
  SeqTableOptions half{.sax = SmallSax(), .fill_factor = 0.5};
  auto table_full = BuildFromCollection(collection, full, "full");
  auto table_half = BuildFromCollection(collection, half, "half");
  EXPECT_GE(table_half->num_leaves(), table_full->num_leaves() * 2 - 1);
  EXPECT_EQ(table_full->num_entries(), table_half->num_entries());
}

TEST_F(SeqTableTest, DirectoryMinKeysAreSorted) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 10);
  auto table = BuildFromCollection(collection, {.sax = SmallSax()});
  const auto& dir = table->directory();
  ASSERT_GT(dir.size(), 1u);
  for (size_t i = 1; i < dir.size(); ++i) {
    EXPECT_LE(dir[i - 1].min_key, dir[i].min_key);
  }
}

TEST_F(SeqTableTest, FindLeafForKeyLocatesContainingLeaf) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 11);
  auto table = BuildFromCollection(collection, {.sax = SmallSax()});
  // Every stored key must be found inside the leaf FindLeafForKey returns.
  auto scanner = table->NewScanner();
  IndexEntry entry;
  while (true) {
    auto has = scanner.Next(&entry, nullptr);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    const size_t leaf = table->FindLeafForKey(entry.key);
    LeafView view;
    ASSERT_TRUE(table->ReadLeaf(leaf, &view).ok());
    bool found = false;
    for (const auto& e : view.entries) {
      if (e.series_id == entry.series_id) found = true;
    }
    EXPECT_TRUE(found) << "series " << entry.series_id;
  }
}

TEST_F(SeqTableTest, LeafRegionContainsAllLeafEntries) {
  auto collection = testutil::RandomWalkCollection(400, 64, 12);
  SaxConfig sax = SmallSax();
  auto table = BuildFromCollection(collection, {.sax = sax});
  for (size_t leaf = 0; leaf < table->num_leaves(); ++leaf) {
    series::SaxRegion region = table->LeafRegion(leaf);
    LeafView view;
    ASSERT_TRUE(table->ReadLeaf(leaf, &view).ok());
    for (const auto& entry : view.entries) {
      // MINDIST from the entry's own PAA (reconstructed from its series)
      // to its leaf's region must be zero-ish: the region contains it.
      auto paa = series::ComputePaa(collection[entry.series_id],
                                    sax.num_segments);
      EXPECT_LT(series::MinDistSquared(paa, region, sax), 1e-9);
    }
  }
}

TEST_F(SeqTableTest, TimestampsTracked) {
  SeqTableOptions opts{.sax = SmallSax()};
  auto builder = SeqTableBuilder::Create(mgr_.get(), "t", opts).TakeValue();
  IndexEntry e{};
  e.key = SortableKey{{1, 0}};
  e.timestamp = 100;
  ASSERT_TRUE(builder->Add(e, {}).ok());
  e.key = SortableKey{{2, 0}};
  e.timestamp = 50;
  ASSERT_TRUE(builder->Add(e, {}).ok());
  ASSERT_TRUE(builder->Finish().ok());
  auto table = SeqTable::Open(mgr_.get(), "t", nullptr).TakeValue();
  EXPECT_EQ(table->min_timestamp(), 50);
  EXPECT_EQ(table->max_timestamp(), 100);
}

TEST_F(SeqTableTest, BuildIsSequentialIo) {
  auto collection = testutil::RandomWalkCollection(2000, 64, 13);
  mgr_->io_stats()->Reset();
  auto table = BuildFromCollection(collection, {.sax = SmallSax()});
  const auto& io = *mgr_->io_stats();
  // Construction writes leaves + directory with appends; only the header
  // rewrite (1) is random.
  EXPECT_LE(io.random_writes, 2u);
  EXPECT_GT(io.sequential_writes, table->num_leaves() - 1);
}

TEST_F(SeqTableTest, OpenRejectsForeignFile) {
  auto f = mgr_->CreateFile("junk").TakeValue();
  storage::Page p;
  ASSERT_TRUE(f->WritePage(0, p).ok());
  EXPECT_FALSE(SeqTable::Open(mgr_.get(), "junk", nullptr).ok());
}

// -------------------------------------------------------------- updates

TEST_F(SeqTableTest, UpdateLeafRewritesInPlace) {
  auto collection = testutil::RandomWalkCollection(300, 64, 14);
  auto table = BuildFromCollection(collection, {.sax = SmallSax(),
                                                .fill_factor = 0.5});
  LeafView view;
  ASSERT_TRUE(table->ReadLeaf(0, &view).ok());
  const size_t before = view.entries.size();
  const uint64_t entries_before = table->num_entries();

  // Duplicate the first entry (any key >= min works for leaf 0's slot).
  view.entries.insert(view.entries.begin(), view.entries.front());
  ASSERT_TRUE(table->UpdateLeaf(0, view).ok());
  EXPECT_EQ(table->num_entries(), entries_before + 1);
  EXPECT_EQ(table->directory()[0].count, before + 1);

  LeafView reread;
  ASSERT_TRUE(table->ReadLeaf(0, &reread).ok());
  EXPECT_EQ(reread.entries.size(), before + 1);
}

TEST_F(SeqTableTest, InsertLeafKeepsOrderAndPersists) {
  auto collection = testutil::RandomWalkCollection(300, 64, 15);
  auto table = BuildFromCollection(collection, {.sax = SmallSax()});
  const size_t leaves_before = table->num_leaves();

  // Split leaf 0 by hand: move its upper half into a new leaf.
  LeafView view;
  ASSERT_TRUE(table->ReadLeaf(0, &view).ok());
  const size_t mid = view.entries.size() / 2;
  LeafView right;
  right.entries.assign(view.entries.begin() + mid, view.entries.end());
  view.entries.resize(mid);
  ASSERT_TRUE(table->UpdateLeaf(0, view).ok());
  ASSERT_TRUE(table->InsertLeaf(1, right).ok());
  EXPECT_EQ(table->num_leaves(), leaves_before + 1);
  ASSERT_TRUE(table->PersistDirectory().ok());

  // Reopen: directory changes survive, scan order still sorted & complete.
  auto reopened = SeqTable::Open(mgr_.get(), "table", nullptr).TakeValue();
  EXPECT_EQ(reopened->num_leaves(), leaves_before + 1);
  EXPECT_EQ(reopened->num_entries(), 300u);
  auto scanner = reopened->NewScanner();
  IndexEntry entry;
  SortableKey prev = SortableKey::Min();
  size_t count = 0;
  while (true) {
    auto has = scanner.Next(&entry, nullptr);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, entry.key);
    prev = entry.key;
    ++count;
  }
  EXPECT_EQ(count, 300u);
}

// -------------------------------------------------------------- search

class TableSearchTest : public SeqTableTest {
 protected:
  void BuildWithRaw(size_t n, bool materialized, uint64_t seed) {
    collection_ = testutil::RandomWalkCollection(n, 64, seed);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());
    SeqTableOptions opts{.sax = SmallSax(), .materialized = materialized};
    table_ = BuildFromCollection(collection_, opts);
  }

  core::SearchResult Exact(std::span<const float> query) {
    std::vector<float> paa;
    auto ctx = MakeSearchContext(SmallSax(), query, &paa, raw_.get(),
                                 &counters_);
    auto approx = ApproxSearchTable(*table_, ctx, {}).TakeValue();
    EXPECT_TRUE(ExactScanTable(*table_, ctx, {}, &approx).ok());
    return approx;
  }

  series::SeriesCollection collection_{64};
  std::unique_ptr<core::RawSeriesStore> raw_;
  std::unique_ptr<SeqTable> table_;
  core::QueryCounters counters_;
};

TEST_F(TableSearchTest, ExactMatchesBruteForceNonMaterialized) {
  BuildWithRaw(800, /*materialized=*/false, 21);
  for (int q = 0; q < 20; ++q) {
    auto query = testutil::NoisyCopy(collection_, q * 37 % 800, 0.3, 100 + q);
    auto truth = testutil::BruteForceNearest(collection_, query);
    auto got = Exact(query);
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6)
        << "query " << q << ": got id " << got.series_id << " want "
        << truth.index;
  }
}

TEST_F(TableSearchTest, ExactMatchesBruteForceMaterialized) {
  BuildWithRaw(800, /*materialized=*/true, 22);
  for (int q = 0; q < 20; ++q) {
    auto query = testutil::NoisyCopy(collection_, q * 53 % 800, 0.3, 200 + q);
    auto truth = testutil::BruteForceNearest(collection_, query);
    auto got = Exact(query);
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6);
  }
}

TEST_F(TableSearchTest, ExactFindsPlantedIdenticalSeries) {
  BuildWithRaw(500, /*materialized=*/false, 23);
  // Query = an indexed series verbatim: distance must be ~0 and id right.
  std::vector<float> query(collection_[123].begin(), collection_[123].end());
  auto got = Exact(query);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.series_id, 123u);
  EXPECT_NEAR(got.distance_sq, 0.0, 1e-9);
}

TEST_F(TableSearchTest, ApproxIsReasonablyClose) {
  BuildWithRaw(1000, /*materialized=*/false, 24);
  double ratio_sum = 0;
  int found = 0;
  for (int q = 0; q < 30; ++q) {
    auto query = testutil::NoisyCopy(collection_, q * 31 % 1000, 0.5, 300 + q);
    std::vector<float> paa;
    auto ctx = MakeSearchContext(SmallSax(), query, &paa, raw_.get(), nullptr);
    auto approx = ApproxSearchTable(*table_, ctx, {}).TakeValue();
    ASSERT_TRUE(approx.found);
    auto truth = testutil::BruteForceNearest(collection_, query);
    EXPECT_GE(approx.distance_sq, truth.distance_sq - 1e-9);
    ratio_sum += std::sqrt(approx.distance_sq) /
                 std::max(1e-9, std::sqrt(truth.distance_sq));
    ++found;
  }
  // Approximate answers should be within ~2.5x of the true NN distance on
  // average for random walks at this scale.
  EXPECT_LT(ratio_sum / found, 2.5);
}

TEST_F(TableSearchTest, ExactScanPrunesLeaves) {
  BuildWithRaw(2000, /*materialized=*/false, 25);
  auto query = testutil::NoisyCopy(collection_, 42, 0.1, 999);
  counters_.Reset();
  auto got = Exact(query);
  ASSERT_TRUE(got.found);
  EXPECT_GT(counters_.leaves_pruned, 0u);
  EXPECT_LT(counters_.leaves_visited,
            counters_.leaves_pruned + counters_.leaves_visited);
}

TEST_F(TableSearchTest, WindowFilteringRestrictsResults) {
  BuildWithRaw(600, /*materialized=*/false, 26);
  // Timestamps in BuildFromCollection are the ordinals. Query for the exact
  // copy of series 500 but restrict the window to [0, 100]: series 500 is
  // excluded, so the answer must differ and respect the window.
  std::vector<float> query(collection_[500].begin(), collection_[500].end());
  core::SearchOptions opts;
  opts.window = core::TimeWindow{0, 100};
  std::vector<float> paa;
  auto ctx = MakeSearchContext(SmallSax(), query, &paa, raw_.get(), nullptr);
  auto best = ApproxSearchTable(*table_, ctx, opts).TakeValue();
  ASSERT_TRUE(ExactScanTable(*table_, ctx, opts, &best).ok());
  ASSERT_TRUE(best.found);
  EXPECT_LE(best.timestamp, 100);
  EXPECT_NE(best.series_id, 500u);

  // Brute force within the window agrees.
  double truth = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i <= 100; ++i) {
    truth = std::min(truth, series::EuclideanSquared(query, collection_[i]));
  }
  EXPECT_NEAR(best.distance_sq, truth, 1e-6);
}

TEST_F(TableSearchTest, EmptyWindowFindsNothing) {
  BuildWithRaw(100, /*materialized=*/false, 27);
  std::vector<float> query(collection_[0].begin(), collection_[0].end());
  core::SearchOptions opts;
  opts.window = core::TimeWindow{5000, 6000};  // No timestamps in range.
  std::vector<float> paa;
  auto ctx = MakeSearchContext(SmallSax(), query, &paa, raw_.get(), nullptr);
  auto best = ApproxSearchTable(*table_, ctx, opts).TakeValue();
  EXPECT_FALSE(best.found);
  ASSERT_TRUE(ExactScanTable(*table_, ctx, opts, &best).ok());
  EXPECT_FALSE(best.found);
}

}  // namespace
}  // namespace seqtable
}  // namespace coconut
