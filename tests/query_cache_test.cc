// The front-door answer cache, pinned three ways. (1) Unit: the LRU /
// stale-drop / invalidation mechanics of QueryCache itself. (2) Service:
// a cache hit re-serves the exact bytes of the original report, and every
// mutation edge — ingest, drop, rebuild under a reused name — makes the
// next lookup miss instead of serving a stale answer. (3) Oracle: a
// cached service and an uncached reference service walk the same
// ingest/query schedule in lockstep and must agree on every answer's
// semantic fields at every step; then a free-running concurrent run
// checks the growth invariant (an exact nearest-neighbor distance for a
// fixed query never increases as the index grows — a stale cached answer
// served after a closer series arrived would violate it). Runs under
// TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "palm/api.h"
#include "palm/query_cache.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace api {
namespace {

constexpr size_t kLength = 32;

VariantSpec TestSpec() {
  VariantSpec spec;
  spec.sax = series::SaxConfig{.series_length = kLength, .num_segments = 8,
                               .bits_per_segment = 8};
  return spec;
}

QueryRequest MakeRequest(const std::string& index,
                         const std::vector<float>& query) {
  QueryRequest request;
  request.index = index;
  request.query = query;
  return request;
}

QueryReport MakeReport(uint64_t series_id, double distance) {
  QueryReport report;
  report.found = true;
  report.series_id = series_id;
  report.distance = distance;
  return report;
}

// ------------------------------------------------------------ unit layer

TEST(QueryCacheUnit, KeyDiscriminatesEveryRequestDimension) {
  const std::vector<float> q(kLength, 0.5f);
  QueryRequest base = MakeRequest("idx", q);
  const std::string key = QueryCache::KeyFor(base);

  QueryRequest other = base;
  other.index = "idx2";
  EXPECT_NE(QueryCache::KeyFor(other), key);

  other = base;
  other.exact = false;
  EXPECT_NE(QueryCache::KeyFor(other), key);

  other = base;
  other.approx_candidates = 11;
  EXPECT_NE(QueryCache::KeyFor(other), key);

  other = base;
  other.window = core::TimeWindow{0, 100};
  EXPECT_NE(QueryCache::KeyFor(other), key);
  QueryRequest shifted = other;
  shifted.window = core::TimeWindow{0, 101};
  EXPECT_NE(QueryCache::KeyFor(shifted), QueryCache::KeyFor(other));

  other = base;
  other.query[7] += 1e-7f;
  EXPECT_NE(QueryCache::KeyFor(other), key);

  // Bit-exactness: +0.0f and -0.0f compare equal as floats but are
  // different queries to an exact byte-keyed cache.
  QueryRequest pos = base, neg = base;
  pos.query[0] = 0.0f;
  neg.query[0] = -0.0f;
  EXPECT_NE(QueryCache::KeyFor(pos), QueryCache::KeyFor(neg));

  // Same content, fresh vector: identical key.
  QueryRequest copy = MakeRequest("idx", std::vector<float>(kLength, 0.5f));
  EXPECT_EQ(QueryCache::KeyFor(copy), key);

  // Heatmap requests are not cacheable; plain ones are.
  EXPECT_TRUE(QueryCache::Cacheable(base));
  QueryRequest heat = base;
  heat.capture_heatmap = true;
  EXPECT_FALSE(QueryCache::Cacheable(heat));
}

TEST(QueryCacheUnit, HitMissAndVersionStaleness) {
  QueryCache cache({});
  const std::string key =
      QueryCache::KeyFor(MakeRequest("idx", std::vector<float>(kLength, 1.f)));

  EXPECT_FALSE(cache.Lookup(key, 5).has_value());
  cache.Insert(key, "idx", 5, MakeReport(42, 1.25));

  // Same version: hit with the stored payload.
  auto hit = cache.Lookup(key, 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->series_id, 42u);
  EXPECT_EQ(hit->distance, 1.25);

  // Any other version: stale — dropped, not served.
  EXPECT_FALSE(cache.Lookup(key, 6).has_value());
  EXPECT_FALSE(cache.Lookup(key, 5).has_value());  // entry is gone

  const QueryCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stale_drops, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(QueryCacheUnit, LruEvictsOldestFirst) {
  QueryCacheOptions options;
  options.max_entries = 3;
  QueryCache cache(options);
  auto key_of = [](int i) {
    return QueryCache::KeyFor(
        MakeRequest("idx", std::vector<float>(kLength, static_cast<float>(i))));
  };
  for (int i = 0; i < 3; ++i) {
    cache.Insert(key_of(i), "idx", 1, MakeReport(i, 0.0));
  }
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup(key_of(0), 1).has_value());
  cache.Insert(key_of(3), "idx", 1, MakeReport(3, 0.0));

  EXPECT_TRUE(cache.Lookup(key_of(0), 1).has_value());
  EXPECT_FALSE(cache.Lookup(key_of(1), 1).has_value());
  EXPECT_TRUE(cache.Lookup(key_of(2), 1).has_value());
  EXPECT_TRUE(cache.Lookup(key_of(3), 1).has_value());
  EXPECT_EQ(cache.Snapshot().evictions, 1u);
  EXPECT_EQ(cache.Snapshot().entries, 3u);
}

TEST(QueryCacheUnit, ByteBudgetBoundsOccupancy) {
  QueryCacheOptions options;
  options.max_bytes = 1500;  // a few entries' worth of fixed charge
  QueryCache cache(options);
  for (int i = 0; i < 64; ++i) {
    cache.Insert(QueryCache::KeyFor(MakeRequest(
                     "idx", std::vector<float>(kLength, static_cast<float>(i)))),
                 "idx", 1, MakeReport(i, 0.0));
    EXPECT_LE(cache.Snapshot().bytes, options.max_bytes);
  }
  EXPECT_GT(cache.Snapshot().evictions, 0u);
  EXPECT_GT(cache.Snapshot().entries, 0u);
}

TEST(QueryCacheUnit, InvalidateIndexIsSelective) {
  QueryCache cache({});
  const std::string a =
      QueryCache::KeyFor(MakeRequest("a", std::vector<float>(kLength, 1.f)));
  const std::string b =
      QueryCache::KeyFor(MakeRequest("b", std::vector<float>(kLength, 1.f)));
  cache.Insert(a, "a", 1, MakeReport(1, 0.0));
  cache.Insert(b, "b", 1, MakeReport(2, 0.0));

  cache.InvalidateIndex("a");
  EXPECT_FALSE(cache.Lookup(a, 1).has_value());
  EXPECT_TRUE(cache.Lookup(b, 1).has_value());
  EXPECT_EQ(cache.Snapshot().invalidations, 1u);
}

// --------------------------------------------------------- service layer

class QueryCacheServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() +
            "/query_cache_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    service_ = Service::Create(root_).TakeValue();
    service_->EnableQueryCache(QueryCacheOptions{});
  }

  void TearDown() override {
    service_.reset();
    std::filesystem::remove_all(root_);
  }

  /// The streaming mode the cache tests run against: synchronous TP, so
  /// every IngestBatch admits (and version-bumps) before returning.
  static StreamMode stream_mode() { return StreamMode::kTP; }

  /// Ingests `batch` into the "live" stream with timestamps t0, t0+1, ...
  bool Ingest(const series::SeriesCollection& batch, int64_t t0) {
    IngestBatchRequest ingest;
    ingest.stream = "live";
    ingest.batch = batch;
    for (size_t i = 0; i < batch.size(); ++i) {
      ingest.timestamps.push_back(t0 + static_cast<int64_t>(i));
    }
    Result<IngestBatchReport> report = service_->IngestBatch(ingest);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok();
  }

  static series::SeriesCollection Slice(const series::SeriesCollection& data,
                                        size_t begin, size_t count) {
    series::SeriesCollection out(data.length());
    for (size_t i = begin; i < begin + count; ++i) {
      std::vector<float> buf(data[i].begin(), data[i].end());
      out.Append(buf);
    }
    return out;
  }

  std::string root_;
  std::unique_ptr<Service> service_;
};

TEST_F(QueryCacheServiceTest, HitReplaysExactReportBytes) {
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(128, kLength, 3);
  RegisterDatasetRequest reg;
  reg.name = "walk";
  reg.data = data;
  ASSERT_TRUE(service_->RegisterDataset(reg).ok());
  BuildIndexRequest build;
  build.index = "idx";
  build.dataset = "walk";
  build.spec = TestSpec();
  ASSERT_TRUE(service_->BuildIndex(build).ok());

  const QueryRequest request =
      MakeRequest("idx", testutil::NoisyCopy(data, 5, 0.2, 17));
  Result<QueryReport> first = service_->Query(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<QueryReport> second = service_->Query(request);
  ASSERT_TRUE(second.ok());

  // A hit re-serves the stored report verbatim — including the measured
  // seconds/io of the original execution — so the wire bytes match.
  EXPECT_EQ(second.value().ToJsonString(), first.value().ToJsonString());
  const ServerStatsResponse stats = service_->ServerStats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST_F(QueryCacheServiceTest, IngestInvalidatesBySnapshotVersion) {
  CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec();
  create.spec.mode = stream_mode();
  ASSERT_TRUE(service_->CreateStream(create).ok());

  const series::SeriesCollection seed =
      testutil::RandomWalkCollection(64, kLength, 11);
  ASSERT_TRUE(Ingest(seed, 0));

  const std::vector<float> target = testutil::NoisyCopy(seed, 9, 0.0, 1);
  const QueryRequest request = MakeRequest("live", target);
  Result<QueryReport> before = service_->Query(request);
  ASSERT_TRUE(before.ok());
  const double d_before = before.value().distance;

  // Ingest the query vector itself: the exact answer must now be ~0.
  series::SeriesCollection exact(kLength);
  exact.Append(target);
  ASSERT_TRUE(Ingest(exact, 1000));

  Result<QueryReport> after = service_->Query(request);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().distance, 1e-4);
  EXPECT_LE(after.value().distance, d_before);
  EXPECT_GT(service_->ServerStats().cache_stale_drops +
                service_->ServerStats().cache_invalidations,
            0u);

  // With no further mutation, the refreshed answer is served from cache.
  Result<QueryReport> again = service_->Query(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ToJsonString(), after.value().ToJsonString());
}

TEST(QueryCacheUnit, NegativeAnswersNotCachedByDefault) {
  QueryCache cache({});
  EXPECT_FALSE(cache.negative_caching_enabled());
  const std::string key =
      QueryCache::KeyFor(MakeRequest("idx", std::vector<float>(kLength, 1.f)));

  QueryReport not_found;
  not_found.found = false;
  cache.Insert(key, "idx", 3, not_found);
  EXPECT_FALSE(cache.Lookup(key, 3).has_value());

  const QueryCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.inserts, 0u);
  EXPECT_EQ(stats.negative_inserts, 0u);
  EXPECT_EQ(stats.entries, 0u);

  // Positive answers are unaffected by the flag being off.
  cache.Insert(key, "idx", 3, MakeReport(7, 0.5));
  EXPECT_TRUE(cache.Lookup(key, 3).has_value());
  EXPECT_EQ(cache.Snapshot().negative_hits, 0u);
}

TEST(QueryCacheUnit, NegativeCachingCountsSeparatelyAndRespectsVersions) {
  QueryCacheOptions options;
  options.cache_negative_results = true;
  QueryCache cache(options);
  EXPECT_TRUE(cache.negative_caching_enabled());

  const std::string neg_key =
      QueryCache::KeyFor(MakeRequest("idx", std::vector<float>(kLength, 1.f)));
  const std::string pos_key =
      QueryCache::KeyFor(MakeRequest("idx", std::vector<float>(kLength, 2.f)));

  QueryReport not_found;
  not_found.found = false;
  cache.Insert(neg_key, "idx", 3, not_found);
  cache.Insert(pos_key, "idx", 3, MakeReport(7, 0.5));

  auto neg_hit = cache.Lookup(neg_key, 3);
  ASSERT_TRUE(neg_hit.has_value());
  EXPECT_FALSE(neg_hit->found);
  auto pos_hit = cache.Lookup(pos_key, 3);
  ASSERT_TRUE(pos_hit.has_value());
  EXPECT_TRUE(pos_hit->found);

  QueryCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.hits, 2u);
  // The negative subset is tallied apart, so operators can see how much
  // of the win comes from cached misses.
  EXPECT_EQ(stats.negative_inserts, 1u);
  EXPECT_EQ(stats.negative_hits, 1u);

  // A negative entry is only as good as its version stamp: after an
  // ingest bumps the snapshot, the cached "not found" must be dropped —
  // the key may well exist now.
  EXPECT_FALSE(cache.Lookup(neg_key, 4).has_value());
  EXPECT_EQ(cache.Snapshot().stale_drops, 1u);
}

TEST_F(QueryCacheServiceTest, NegativeCachingEndToEnd) {
  QueryCacheOptions options;
  options.cache_negative_results = true;
  service_->EnableQueryCache(options);

  CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec();
  create.spec.mode = stream_mode();
  ASSERT_TRUE(service_->CreateStream(create).ok());
  const series::SeriesCollection seed =
      testutil::RandomWalkCollection(32, kLength, 21);
  ASSERT_TRUE(Ingest(seed, 0));

  // An exact query whose window excludes every timestamp is a clean
  // deterministic "not found" — exactly the answer negative caching
  // stores.
  QueryRequest request = MakeRequest("live", testutil::NoisyCopy(seed, 3, 0.1, 5));
  request.window = core::TimeWindow{100000, 200000};
  Result<QueryReport> first = service_->Query(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().found);
  Result<QueryReport> second = service_->Query(request);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().found);

  ServerStatsResponse stats = service_->ServerStats();
  EXPECT_TRUE(stats.cache_negative_enabled);
  EXPECT_EQ(stats.cache_negative_inserts, 1u);
  EXPECT_EQ(stats.cache_negative_hits, 1u);

  // Ingesting into the window turns the cached miss stale; the fresh
  // answer finds the new series instead of re-serving "not found".
  series::SeriesCollection inside(kLength);
  inside.Append(request.query);
  IngestBatchRequest late;
  late.stream = "live";
  late.batch = inside;
  late.timestamps = {150000};
  ASSERT_TRUE(service_->IngestBatch(late).ok());
  Result<QueryReport> after = service_->Query(request);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().found);
  EXPECT_LT(after.value().distance, 1e-4);

  // The wire shape follows the flag: negative counters round-trip through
  // the server_stats JSON only when enabled.
  const std::string wire = service_->ServerStats().ToJsonString();
  EXPECT_NE(wire.find("\"negative_enabled\":true"), std::string::npos) << wire;
  EXPECT_NE(wire.find("\"negative_inserts\":1"), std::string::npos) << wire;
}

TEST_F(QueryCacheServiceTest, DropAndRebuildUnderReusedNameNeverStale) {
  const series::SeriesCollection a =
      testutil::RandomWalkCollection(64, kLength, 21);
  const series::SeriesCollection b =
      testutil::RandomWalkCollection(64, kLength, 22);
  {
    RegisterDatasetRequest reg;
    reg.name = "da";
    reg.data = a;
    ASSERT_TRUE(service_->RegisterDataset(reg).ok());
    reg.name = "db";
    reg.data = b;
    ASSERT_TRUE(service_->RegisterDataset(reg).ok());
  }
  BuildIndexRequest build;
  build.index = "idx";
  build.dataset = "da";
  build.spec = TestSpec();
  ASSERT_TRUE(service_->BuildIndex(build).ok());

  const QueryRequest request =
      MakeRequest("idx", testutil::NoisyCopy(a, 3, 0.2, 5));
  Result<QueryReport> on_a = service_->Query(request);
  ASSERT_TRUE(on_a.ok());
  ASSERT_TRUE(service_->Query(request).ok());  // now cached

  // Drop and rebuild the same name over a different dataset. The new
  // index's version counter restarts at zero — without explicit
  // invalidation the stale entry could match.
  DropIndexRequest drop;
  drop.index = "idx";
  ASSERT_TRUE(service_->DropIndex(drop).ok());
  build.dataset = "db";
  ASSERT_TRUE(service_->BuildIndex(build).ok());

  Result<QueryReport> on_b = service_->Query(request);
  ASSERT_TRUE(on_b.ok());
  // The answer must come from dataset b: brute-force the truth.
  series::SeriesCollection norm_b(kLength);
  for (size_t i = 0; i < b.size(); ++i) {
    std::vector<float> buf(b[i].begin(), b[i].end());
    series::ZNormalize(buf);
    norm_b.Append(buf);
  }
  std::vector<float> z = request.query;
  series::ZNormalize(z);
  const auto truth = testutil::BruteForceNearest(norm_b, z);
  EXPECT_EQ(on_b.value().series_id, truth.index);
  EXPECT_NEAR(on_b.value().distance * on_b.value().distance,
              truth.distance_sq, 1e-3);
}

// ---------------------------------------------------------- oracle layer

/// Semantic answer fields — everything except the execution artifacts
/// (seconds, io, counters) that legitimately differ between a cached
/// replay and a fresh scan.
std::string SemanticKey(const QueryReport& report) {
  std::string key = report.index + "|" + (report.found ? "1" : "0");
  if (report.found) {
    key += "|" + std::to_string(report.series_id) + "|" +
           std::to_string(report.distance) + "|" +
           std::to_string(report.timestamp);
  }
  return key;
}

TEST_F(QueryCacheServiceTest, LockstepOracleAgainstUncachedReference) {
  // Reference service: same schedule, cache off.
  const std::string ref_root = root_ + "_ref";
  std::filesystem::remove_all(ref_root);
  std::unique_ptr<Service> reference = Service::Create(ref_root).TakeValue();

  for (Service* s : {service_.get(), reference.get()}) {
    CreateStreamRequest create;
    create.stream = "live";
    create.spec = TestSpec();
    create.spec.mode = stream_mode();
    ASSERT_TRUE(s->CreateStream(create).ok());
  }

  const series::SeriesCollection data =
      testutil::RandomWalkCollection(480, kLength, 31);
  std::vector<std::vector<float>> pool;
  for (size_t i = 0; i < 12; ++i) {
    pool.push_back(testutil::NoisyCopy(data, i * 7, 0.3, 100 + i));
  }

  constexpr size_t kRounds = 8;
  const size_t per_round = data.size() / kRounds;
  for (size_t round = 0; round < kRounds; ++round) {
    series::SeriesCollection batch(kLength);
    std::vector<int64_t> timestamps;
    for (size_t i = round * per_round; i < (round + 1) * per_round; ++i) {
      std::vector<float> buf(data[i].begin(), data[i].end());
      batch.Append(buf);
      timestamps.push_back(static_cast<int64_t>(i));
    }
    for (Service* s : {service_.get(), reference.get()}) {
      IngestBatchRequest ingest;
      ingest.stream = "live";
      ingest.batch = batch;
      ingest.timestamps = timestamps;
      ASSERT_TRUE(s->IngestBatch(ingest).ok());
    }
    // Every pool query — twice on the cached side, so round N+1 re-asks
    // entries cached in round N (which MUST be detected as stale).
    for (const auto& q : pool) {
      const QueryRequest request = MakeRequest("live", q);
      Result<QueryReport> cached1 = service_->Query(request);
      Result<QueryReport> cached2 = service_->Query(request);
      Result<QueryReport> fresh = reference->Query(request);
      ASSERT_TRUE(cached1.ok()) << cached1.status().ToString();
      ASSERT_TRUE(cached2.ok());
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_EQ(SemanticKey(cached1.value()), SemanticKey(fresh.value()))
          << "round " << round;
      EXPECT_EQ(SemanticKey(cached2.value()), SemanticKey(fresh.value()));
    }
  }
  // The cache must have actually served hits, or this proved nothing.
  const ServerStatsResponse stats = service_->ServerStats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_stale_drops, 0u);
  reference.reset();
  std::filesystem::remove_all(ref_root);
}

TEST_F(QueryCacheServiceTest, ConcurrentIngestNeverServesStaleAnswers) {
  CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec();
  create.spec.mode = stream_mode();
  ASSERT_TRUE(service_->CreateStream(create).ok());

  const series::SeriesCollection data =
      testutil::RandomWalkCollection(600, kLength, 41);
  ASSERT_TRUE(Ingest(Slice(data, 0, 50), 0));

  std::vector<std::vector<float>> pool;
  for (size_t i = 0; i < 6; ++i) {
    pool.push_back(testutil::NoisyCopy(data, 400 + i * 20, 0.2, 300 + i));
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (size_t i = 50; i + 10 <= data.size(); i += 10) {
      ASSERT_TRUE(Ingest(Slice(data, i, 10), static_cast<int64_t>(i)));
    }
    done.store(true, std::memory_order_release);
  });

  // Readers: for a fixed query, the exact nearest distance over a
  // grow-only index is non-increasing in time. A stale cached answer
  // served after a closer series was admitted breaks the invariant.
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::vector<double> best(pool.size(),
                               std::numeric_limits<double>::infinity());
      do {
        for (size_t q = 0; q < pool.size(); ++q) {
          Result<QueryReport> r = service_->Query(MakeRequest("live", pool[q]));
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          if (!r.value().found) continue;
          EXPECT_LE(r.value().distance, best[q] + 1e-6);
          best[q] = std::min(best[q], r.value().distance);
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(service_->ServerStats().cache_misses, 0u);
}

// Regression for the lock-free fill guard: with an async stream the
// service's Query runs outside the per-handle op lock, so a background
// publish (ingest admission, seal, merge) can land *between* the two
// version reads bracketing the scan. The guard must then stamp nothing —
// a report computed against the superseded snapshot inserted under the
// new version would be served as truth. The deterministic teeth: while
// racing queriers keep re-filling the cache entry for one fixed request,
// the main thread ingests the query vector itself; every Query issued
// after that IngestBatch returns must answer ~0, cached or not. A broken
// guard lets a pre-ingest answer (distance >> 0) be stamped at the
// post-ingest version and re-served, failing the assert.
TEST_F(QueryCacheServiceTest, LockFreeFillGuardNeverStampsAcrossPublish) {
  CreateStreamRequest create;
  create.stream = "live";
  create.spec = TestSpec();
  create.spec.mode = StreamMode::kTP;
  create.spec.async_ingest = true;  // ConcurrentReadsSafe: lock-free path.
  create.spec.buffer_entries = 24;
  ASSERT_TRUE(service_->CreateStream(create).ok());

  const series::SeriesCollection data =
      testutil::RandomWalkCollection(256, kLength, 61);
  ASSERT_TRUE(Ingest(Slice(data, 0, 64), 0));

  const std::vector<float> target = testutil::NoisyCopy(data, 31, 0.4, 71);
  const QueryRequest request = MakeRequest("live", target);

  std::atomic<bool> stop{false};
  std::vector<std::thread> fillers;
  for (size_t t = 0; t < 2; ++t) {
    fillers.emplace_back([&] {
      // Keeps the cache entry for `request` hot: every iteration either
      // hits or races an ingest's publish and must refuse to stamp.
      while (!stop.load(std::memory_order_acquire)) {
        Result<QueryReport> r = service_->Query(request);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }

  // Phase 1: grow the index under the racing fills; for the fixed
  // request the exact nearest distance must be non-increasing in ingest
  // order even when served from cache.
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 64; i + 8 <= 128; i += 8) {
    ASSERT_TRUE(Ingest(Slice(data, i, 8), static_cast<int64_t>(i)));
    Result<QueryReport> r = service_->Query(request);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().found);
    EXPECT_LE(r.value().distance, best + 1e-6);
    best = std::min(best, r.value().distance);
  }
  ASSERT_GT(best, 1e-3);  // The target itself is not in the index yet.

  // Phase 2: admit the query vector itself. IngestBatch returns after the
  // admission published, so every Query from here on must see it.
  series::SeriesCollection exact(kLength);
  {
    std::vector<float> buf = target;
    exact.Append(buf);
  }
  ASSERT_TRUE(Ingest(exact, 5000));
  for (int round = 0; round < 20; ++round) {
    Result<QueryReport> r = service_->Query(request);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().found);
    EXPECT_LT(r.value().distance, 1e-4) << "round " << round
        << ": a stale pre-ingest answer was served from the cache";
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& f : fillers) f.join();
  // The racing fills really exercised the cache, both directions.
  const ServerStatsResponse stats = service_->ServerStats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
}

}  // namespace
}  // namespace api
}  // namespace palm
}  // namespace coconut
