// The concurrent stream oracle: threads ingest into an async streaming
// index while other threads query it. Mid-flight answers must be
// well-formed (a real series, inside the window, at its true distance,
// and no worse than the full-stream optimum); at quiesce checkpoints —
// after FlushAll(), the drain barrier — exact results over the
// acknowledged prefix must equal testutil::BruteForceKnn. A second suite
// pins the tentpole equivalence: a drained async index answers
// byte-identically to a synchronously built one, for TP, BTP and CLSM.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "palm/factory.h"
#include "series/distance.h"
#include "stream/btp.h"
#include "stream/tp.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

using core::SearchOptions;
using core::TimeWindow;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

palm::VariantSpec BaseSpec(palm::IndexFamily family, palm::StreamMode mode,
                           bool materialized) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = family;
  spec.mode = mode;
  spec.materialized = materialized;
  spec.buffer_entries = 60;  // Many seals (and BTP merges) over 600 series.
  spec.btp_merge_k = 2;
  return spec;
}

/// The streaming cells that support background ingestion.
std::vector<palm::VariantSpec> AsyncSpecs() {
  return {
      BaseSpec(palm::IndexFamily::kCTree, palm::StreamMode::kTP, false),
      BaseSpec(palm::IndexFamily::kCTree, palm::StreamMode::kTP, true),
      BaseSpec(palm::IndexFamily::kClsm, palm::StreamMode::kBTP, false),
      BaseSpec(palm::IndexFamily::kClsm, palm::StreamMode::kBTP, true),
      BaseSpec(palm::IndexFamily::kClsm, palm::StreamMode::kPP, false),
  };
}

class StreamConcurrentOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("stream_concurrent_oracle");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(600, 64, 77);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<StreamingIndex> MakeStream(const palm::VariantSpec& spec,
                                             const std::string& name) {
    auto r = palm::CreateStreamingIndex(spec, mgr_.get(), name, nullptr,
                                        raw_.get());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.TakeValue();
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
};

TEST_F(StreamConcurrentOracleTest, IngestAndQueryRaceThenQuiesceExactness) {
  ThreadPool background(3);
  int variant_ordinal = 0;
  for (palm::VariantSpec spec : AsyncSpecs()) {
    spec.async_ingest = true;
    spec.background_pool = &background;
    const std::string what = palm::VariantName(spec);
    SCOPED_TRACE(what);
    // Inner scope: the stream must die before the per-variant storage
    // reset below.
    {
    auto stream =
        MakeStream(spec, "cc" + std::to_string(variant_ordinal++));
    ASSERT_NE(stream, nullptr);

    // Timestamps are the ordinals, so "acknowledged prefix" and "time
    // window ending at the last acknowledged arrival" coincide.
    std::atomic<size_t> acknowledged{0};
    std::atomic<bool> stop{false};

    auto querier = [&](uint64_t seed) {
      Rng rng(seed);
      while (!stop.load(std::memory_order_acquire)) {
        const size_t ack_before =
            acknowledged.load(std::memory_order_acquire);
        const size_t base = rng.NextBounded(collection_.size());
        auto query = testutil::NoisyCopy(collection_, base, 0.4, seed + base);
        SearchOptions options;
        const bool windowed = rng.NextBounded(2) == 0;
        if (windowed && ack_before > 0) {
          const int64_t lo =
              static_cast<int64_t>(rng.NextBounded(ack_before));
          options.window = TimeWindow{lo, lo + 120};
        }
        auto result = stream->ExactSearch(query, options, nullptr);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const core::SearchResult match = result.value();
        if (!windowed && ack_before > 0) {
          // The snapshot a query evaluates contains at least everything
          // acknowledged before it started.
          EXPECT_TRUE(match.found);
        }
        if (!match.found) continue;
        // Whatever the race interleaving, an answer must be a real series
        // at its true distance, inside the window.
        ASSERT_LT(match.series_id, collection_.size());
        EXPECT_TRUE(options.window.Contains(match.timestamp));
        EXPECT_EQ(match.timestamp, static_cast<int64_t>(match.series_id));
        const double true_d =
            series::EuclideanSquared(query, collection_[match.series_id]);
        EXPECT_NEAR(match.distance_sq, true_d, 1e-3);
        if (!windowed && ack_before > 0) {
          // Unwindowed queries must see at least everything acknowledged
          // before they started — i.e. find *something*, and nothing
          // closer than the optimum over the whole stream.
          auto floor = testutil::BruteForceKnn(collection_, query, 1);
          EXPECT_GE(match.distance_sq, floor[0].distance_sq - 1e-3);
        }
      }
    };
    std::thread q1(querier, 1000 + variant_ordinal);
    std::thread q2(querier, 2000 + variant_ordinal);

    const std::vector<size_t> checkpoints = {150, 375, 600};
    size_t next = 0;
    for (size_t checkpoint : checkpoints) {
      for (size_t i = next; i < checkpoint; ++i) {
        ASSERT_TRUE(raw_->Append(collection_[i]).ok());
        ASSERT_TRUE(stream
                        ->Ingest(i, collection_[i],
                                 static_cast<int64_t>(i))
                        .ok());
        acknowledged.store(i + 1, std::memory_order_release);
      }
      next = checkpoint;
      // Quiesce: drain every deferred seal/flush/merge, then demand
      // brute-force exactness over the acknowledged prefix while the
      // query threads keep hammering away.
      ASSERT_TRUE(stream->FlushAll().ok());
      EXPECT_EQ(stream->num_entries(), checkpoint);
      const std::vector<TimeWindow> windows = {
          TimeWindow::All(),
          TimeWindow{0, static_cast<int64_t>(checkpoint / 2)},
          TimeWindow{static_cast<int64_t>(checkpoint / 3),
                     static_cast<int64_t>(checkpoint + 50)}};
      for (size_t w = 0; w < windows.size(); ++w) {
        for (int q = 0; q < 3; ++q) {
          auto query = testutil::NoisyCopy(
              collection_, (q * 97 + 13) % checkpoint, 0.5, w * 10 + q);
          // Restrict the oracle to the acknowledged prefix via the
          // timestamp==ordinal identity.
          TimeWindow prefix = windows[w];
          prefix.end =
              std::min(prefix.end, static_cast<int64_t>(checkpoint - 1));
          auto oracle = testutil::BruteForceKnn(collection_, query, 1,
                                                prefix);
          SearchOptions options;
          options.window = windows[w];
          auto got = stream->ExactSearch(query, options, nullptr);
          ASSERT_TRUE(got.ok());
          ASSERT_EQ(got.value().found, !oracle.empty())
              << what << " checkpoint " << checkpoint << " window " << w;
          if (!oracle.empty()) {
            EXPECT_NEAR(got.value().distance_sq, oracle[0].distance_sq,
                        1e-6)
                << what << " checkpoint " << checkpoint << " window " << w
                << " query " << q;
          }
        }
      }
    }
    stop.store(true, std::memory_order_release);
    q1.join();
    q2.join();
    }
    // Fresh raw store per variant (ids restart at 0 for each stream).
    TearDown();
    SetUp();
  }
}

// The tentpole guarantee: after the drain barrier, an async index answers
// byte-identically (same series, same bits of distance) to one built
// synchronously over the same input — for every async-capable variant.
TEST_F(StreamConcurrentOracleTest, DrainedAsyncEquivalentToSyncBuild) {
  ThreadPool background(4);
  int ordinal = 0;
  for (palm::VariantSpec spec : AsyncSpecs()) {
    const std::string what = palm::VariantName(spec);
    SCOPED_TRACE(what);
    palm::VariantSpec async_spec = spec;
    async_spec.async_ingest = true;
    async_spec.background_pool = &background;
    // Inner scope: the indexes must die before the per-variant storage
    // reset below.
    {
    auto sync_index =
        MakeStream(spec, "sync" + std::to_string(ordinal));
    auto async_index =
        MakeStream(async_spec, "async" + std::to_string(ordinal));
    ++ordinal;
    ASSERT_NE(sync_index, nullptr);
    ASSERT_NE(async_index, nullptr);

    for (size_t i = 0; i < collection_.size(); ++i) {
      ASSERT_TRUE(raw_->Append(collection_[i]).ok());
      const int64_t ts = static_cast<int64_t>(i);
      ASSERT_TRUE(sync_index->Ingest(i, collection_[i], ts).ok());
      ASSERT_TRUE(async_index->Ingest(i, collection_[i], ts).ok());
    }
    ASSERT_TRUE(sync_index->FlushAll().ok());
    ASSERT_TRUE(async_index->FlushAll().ok());

    EXPECT_EQ(async_index->num_entries(), sync_index->num_entries());
    EXPECT_EQ(async_index->num_partitions(), sync_index->num_partitions());

    // TP/BTP: the sealed partition sets must be structurally identical.
    auto* sync_tp = dynamic_cast<TemporalPartitioningIndex*>(
        sync_index.get());
    auto* async_tp = dynamic_cast<TemporalPartitioningIndex*>(
        async_index.get());
    if (sync_tp != nullptr && async_tp != nullptr) {
      const auto sync_parts = sync_tp->SnapshotPartitions();
      const auto async_parts = async_tp->SnapshotPartitions();
      ASSERT_EQ(sync_parts.size(), async_parts.size());
      for (size_t i = 0; i < sync_parts.size(); ++i) {
        // Names embed the distinct sync/async prefixes; the ".p<i>"/".m<i>"
        // suffix is the structural part.
        EXPECT_EQ(async_parts[i].name.substr(
                      async_parts[i].name.find_last_of('.')),
                  sync_parts[i].name.substr(
                      sync_parts[i].name.find_last_of('.')));
        EXPECT_EQ(async_parts[i].entries, sync_parts[i].entries);
        EXPECT_EQ(async_parts[i].size_class, sync_parts[i].size_class);
        EXPECT_EQ(async_parts[i].t_min, sync_parts[i].t_min);
        EXPECT_EQ(async_parts[i].t_max, sync_parts[i].t_max);
      }
    }

    const std::vector<TimeWindow> windows = {
        TimeWindow::All(), TimeWindow{100, 400}, TimeWindow{0, 60},
        TimeWindow{555, 999}};
    for (size_t w = 0; w < windows.size(); ++w) {
      SearchOptions options;
      options.window = windows[w];
      for (int q = 0; q < 4; ++q) {
        auto query = testutil::NoisyCopy(collection_, (q * 151 + 31) % 600,
                                         0.5, w * 100 + q);
        auto from_sync =
            sync_index->ExactSearch(query, options, nullptr).TakeValue();
        auto from_async =
            async_index->ExactSearch(query, options, nullptr).TakeValue();
        EXPECT_EQ(from_async.found, from_sync.found)
            << what << " window " << w;
        if (from_sync.found) {
          EXPECT_EQ(from_async.series_id, from_sync.series_id)
              << what << " window " << w << " query " << q;
          EXPECT_EQ(from_async.distance_sq, from_sync.distance_sq)
              << what << " window " << w << " query " << q;
          EXPECT_EQ(from_async.timestamp, from_sync.timestamp)
              << what << " window " << w << " query " << q;
        }
      }
    }
    }
    TearDown();
    SetUp();
  }
}

}  // namespace
}  // namespace stream
}  // namespace coconut
