#ifndef COCONUT_TESTS_TEST_UTIL_H_
#define COCONUT_TESTS_TEST_UTIL_H_

#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/raw_store.h"
#include "series/distance.h"
#include "series/series.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace testutil {

/// Z-normalized random-walk collection: the standard synthetic workload of
/// the data series indexing literature.
inline series::SeriesCollection RandomWalkCollection(size_t count,
                                                     size_t length,
                                                     uint64_t seed) {
  series::SeriesCollection collection(length);
  collection.Reserve(count);
  Rng rng(seed);
  std::vector<float> buf(length);
  for (size_t i = 0; i < count; ++i) {
    double x = 0.0;
    for (size_t j = 0; j < length; ++j) {
      x += rng.NextGaussian();
      buf[j] = static_cast<float>(x);
    }
    series::ZNormalize(buf);
    collection.Append(buf);
  }
  return collection;
}

/// A query similar to collection[base] plus Gaussian noise (re-normalized).
inline std::vector<float> NoisyCopy(const series::SeriesCollection& collection,
                                    size_t base, double noise,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(collection[base].begin(), collection[base].end());
  for (float& v : q) v += static_cast<float>(noise * rng.NextGaussian());
  series::ZNormalize(q);
  return q;
}

/// Ground truth by linear scan.
struct BruteForceResult {
  size_t index;
  double distance_sq;
};

inline BruteForceResult BruteForceNearest(
    const series::SeriesCollection& collection,
    std::span<const float> query) {
  BruteForceResult best{0, std::numeric_limits<double>::infinity()};
  for (size_t i = 0; i < collection.size(); ++i) {
    const double d = series::EuclideanSquared(query, collection[i]);
    if (d < best.distance_sq) best = BruteForceResult{i, d};
  }
  return best;
}

/// Populates a raw store from a collection (ids = ordinals).
inline Status FillRawStore(core::RawSeriesStore* store,
                           const series::SeriesCollection& collection) {
  for (size_t i = 0; i < collection.size(); ++i) {
    auto r = store->Append(collection[i]);
    if (!r.ok()) return r.status();
  }
  return store->Flush();
}

}  // namespace testutil
}  // namespace coconut

#endif  // COCONUT_TESTS_TEST_UTIL_H_
