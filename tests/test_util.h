#ifndef COCONUT_TESTS_TEST_UTIL_H_
#define COCONUT_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "series/distance.h"
#include "series/series.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace testutil {

/// Z-normalized random-walk collection: the standard synthetic workload of
/// the data series indexing literature.
inline series::SeriesCollection RandomWalkCollection(size_t count,
                                                     size_t length,
                                                     uint64_t seed) {
  series::SeriesCollection collection(length);
  collection.Reserve(count);
  Rng rng(seed);
  std::vector<float> buf(length);
  for (size_t i = 0; i < count; ++i) {
    double x = 0.0;
    for (size_t j = 0; j < length; ++j) {
      x += rng.NextGaussian();
      buf[j] = static_cast<float>(x);
    }
    series::ZNormalize(buf);
    collection.Append(buf);
  }
  return collection;
}

/// A query similar to collection[base] plus Gaussian noise (re-normalized).
inline std::vector<float> NoisyCopy(const series::SeriesCollection& collection,
                                    size_t base, double noise,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(collection[base].begin(), collection[base].end());
  for (float& v : q) v += static_cast<float>(noise * rng.NextGaussian());
  series::ZNormalize(q);
  return q;
}

/// Ground truth by linear scan.
struct BruteForceResult {
  size_t index;
  double distance_sq;
};

inline BruteForceResult BruteForceNearest(
    const series::SeriesCollection& collection,
    std::span<const float> query) {
  BruteForceResult best{0, std::numeric_limits<double>::infinity()};
  for (size_t i = 0; i < collection.size(); ++i) {
    const double d = series::EuclideanSquared(query, collection[i]);
    if (d < best.distance_sq) best = BruteForceResult{i, d};
  }
  return best;
}

/// The oracle every index variant is verified against: exact k nearest
/// neighbors by linear scan over the raw collection, ascending by distance
/// (ties broken by ordinal so the result is deterministic). An optional
/// `window` restricts candidates to ordinals whose timestamp — supplied via
/// `timestamps`, or the ordinal itself when null — falls inside it.
inline std::vector<BruteForceResult> BruteForceKnn(
    const series::SeriesCollection& collection, std::span<const float> query,
    size_t k, const core::TimeWindow& window = core::TimeWindow::All(),
    const std::vector<int64_t>* timestamps = nullptr) {
  std::vector<BruteForceResult> all;
  all.reserve(collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    const int64_t t =
        timestamps != nullptr ? (*timestamps)[i] : static_cast<int64_t>(i);
    if (!window.Contains(t)) continue;
    all.push_back(
        BruteForceResult{i, series::EuclideanSquared(query, collection[i])});
  }
  std::sort(all.begin(), all.end(),
            [](const BruteForceResult& a, const BruteForceResult& b) {
              if (a.distance_sq != b.distance_sq) {
                return a.distance_sq < b.distance_sq;
              }
              return a.index < b.index;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Populates a raw store from a collection (ids = ordinals).
inline Status FillRawStore(core::RawSeriesStore* store,
                           const series::SeriesCollection& collection) {
  for (size_t i = 0; i < collection.size(); ++i) {
    auto r = store->Append(collection[i]);
    if (!r.ok()) return r.status();
  }
  return store->Flush();
}

}  // namespace testutil
}  // namespace coconut

#endif  // COCONUT_TESTS_TEST_UTIL_H_
