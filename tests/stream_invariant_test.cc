// Streaming invariants: TP and BTP window queries must return exactly what
// a static index rebuilt over the same data (and the brute-force oracle)
// returns for the same window — including when timestamps arrive
// out-of-order or duplicated, which is how real sensor feeds behave.
// Partition [t_min, t_max] metadata must stay correct under both.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "palm/factory.h"
#include "stream/btp.h"
#include "stream/tp.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

using core::SearchOptions;
using core::TimeWindow;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

/// Timestamps that wander backwards locally and repeat: series i gets
/// roughly i but jittered by ±3 with many exact duplicates.
std::vector<int64_t> JitteredTimestamps(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> ts(count);
  for (size_t i = 0; i < count; ++i) {
    const int64_t jitter = static_cast<int64_t>(rng.NextBounded(7)) - 3;
    ts[i] = std::max<int64_t>(0, static_cast<int64_t>(i) + jitter);
    if (i % 5 == 0 && i > 0) ts[i] = ts[i - 1];  // Frequent duplicates.
  }
  return ts;
}

class StreamInvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("stream_invariant_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(600, 64, 41);
    timestamps_ = JitteredTimestamps(collection_.size(), 42);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  void IngestAll(StreamingIndex* index) {
    for (size_t i = 0; i < collection_.size(); ++i) {
      ASSERT_TRUE(
          index->Ingest(i, collection_[i], timestamps_[i]).ok());
    }
  }

  /// A static index over the identical (series, timestamp) pairs — the
  /// reference the streaming structures must agree with.
  std::unique_ptr<core::DataSeriesIndex> RebuiltStatic(
      palm::IndexFamily family, const std::string& name) {
    palm::VariantSpec spec;
    spec.sax = TestSax();
    spec.family = family;
    spec.buffer_entries = 128;
    auto index = palm::CreateStaticIndex(spec, mgr_.get(), name, nullptr,
                                         raw_.get())
                     .TakeValue();
    for (size_t i = 0; i < collection_.size(); ++i) {
      EXPECT_TRUE(
          index->Insert(i, collection_[i], timestamps_[i]).ok());
    }
    EXPECT_TRUE(index->Finalize().ok());
    return index;
  }

  /// Asserts stream == rebuilt static == oracle for several windows.
  void CheckWindows(StreamingIndex* stream, core::DataSeriesIndex* rebuilt,
                    const std::string& what) {
    const std::vector<TimeWindow> windows = {
        TimeWindow::All(), TimeWindow{100, 250}, TimeWindow{0, 40},
        TimeWindow{550, 1000}, TimeWindow{123, 123}};
    for (size_t w = 0; w < windows.size(); ++w) {
      SearchOptions options;
      options.window = windows[w];
      for (int q = 0; q < 3; ++q) {
        auto query = testutil::NoisyCopy(collection_, (q * 131 + 7) % 600,
                                         0.5, w * 10 + q);
        auto oracle = testutil::BruteForceKnn(collection_, query, 1,
                                              windows[w], &timestamps_);
        auto from_stream =
            stream->ExactSearch(query, options, nullptr).TakeValue();
        auto from_static =
            rebuilt->ExactSearch(query, options, nullptr).TakeValue();
        ASSERT_EQ(from_stream.found, !oracle.empty())
            << what << " window " << w;
        EXPECT_EQ(from_static.found, from_stream.found)
            << what << " window " << w;
        if (!oracle.empty()) {
          EXPECT_NEAR(from_stream.distance_sq, oracle[0].distance_sq, 1e-6)
              << what << " window " << w << " query " << q;
          EXPECT_NEAR(from_static.distance_sq, from_stream.distance_sq, 1e-6)
              << what << " window " << w << " query " << q;
          EXPECT_TRUE(windows[w].Contains(from_stream.timestamp))
              << what << " window " << w;
        }
      }
    }
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
  std::vector<int64_t> timestamps_;
};

TEST_F(StreamInvariantTest, TpSeqTableMatchesRebuiltStaticUnderDisorder) {
  TemporalPartitioningIndex::Options opts;
  opts.sax = TestSax();
  opts.backend = PartitionBackend::kSeqTable;
  opts.buffer_entries = 100;  // Several sealed partitions.
  auto tp = TemporalPartitioningIndex::Create(mgr_.get(), "tp", opts, nullptr,
                                              raw_.get())
                .TakeValue();
  IngestAll(tp.get());
  EXPECT_GT(tp->num_partitions(), 3u);
  auto rebuilt = RebuiltStatic(palm::IndexFamily::kCTree, "tp_ref");
  CheckWindows(tp.get(), rebuilt.get(), "CTree-TP");
}

TEST_F(StreamInvariantTest, TpAdsMatchesRebuiltStaticUnderDisorder) {
  TemporalPartitioningIndex::Options opts;
  opts.sax = TestSax();
  opts.backend = PartitionBackend::kAds;
  opts.buffer_entries = 150;
  opts.ads_leaf_capacity = 64;
  auto tp = TemporalPartitioningIndex::Create(mgr_.get(), "tpa", opts,
                                              nullptr, raw_.get())
                .TakeValue();
  IngestAll(tp.get());
  auto rebuilt = RebuiltStatic(palm::IndexFamily::kAds, "tpa_ref");
  CheckWindows(tp.get(), rebuilt.get(), "ADS+-TP");
}

TEST_F(StreamInvariantTest, BtpMatchesRebuiltStaticUnderDisorder) {
  BoundedTemporalPartitioningIndex::BtpOptions opts;
  opts.sax = TestSax();
  opts.buffer_entries = 100;
  opts.merge_k = 2;  // Force consolidations: merged partitions must keep
                     // correct [t_min, t_max] under out-of-order input.
  auto btp = BoundedTemporalPartitioningIndex::Create(mgr_.get(), "btp",
                                                      opts, nullptr,
                                                      raw_.get())
                 .TakeValue();
  IngestAll(btp.get());
  auto rebuilt = RebuiltStatic(palm::IndexFamily::kClsm, "btp_ref");
  CheckWindows(btp.get(), rebuilt.get(), "CLSM-BTP");
}

TEST_F(StreamInvariantTest, PartitionRangesCoverEntryTimestamps) {
  // Seal boundaries interact with jitter: an entry's timestamp must always
  // fall inside its partition's advertised [t_min, t_max] (otherwise window
  // pruning would silently drop it). Probing point windows at every
  // distinct timestamp verifies exactly that.
  TemporalPartitioningIndex::Options opts;
  opts.sax = TestSax();
  opts.backend = PartitionBackend::kSeqTable;
  opts.buffer_entries = 64;
  auto tp = TemporalPartitioningIndex::Create(mgr_.get(), "tpp", opts,
                                              nullptr, raw_.get())
                .TakeValue();
  IngestAll(tp.get());
  ASSERT_TRUE(tp->FlushAll().ok());

  for (size_t i = 0; i < collection_.size(); i += 37) {
    SearchOptions options;
    options.window = TimeWindow{timestamps_[i], timestamps_[i]};
    std::vector<float> query(collection_[i].begin(), collection_[i].end());
    auto got = tp->ExactSearch(query, options, nullptr).TakeValue();
    ASSERT_TRUE(got.found) << "timestamp " << timestamps_[i];
    // The series itself is in the window, so the match is at distance 0
    // unless a duplicate-timestamp twin is even closer (impossible: 0 is
    // minimal) — either way distance must be 0 for this self-query.
    EXPECT_NEAR(got.distance_sq, 0.0, 1e-6) << "timestamp " << timestamps_[i];
  }
}

// ---------------------------------------------------- timestamp policies
// The documented Ingest contract says timestamps are non-decreasing.
// kPermissive (the default, pinned by every test above) tracks disorder
// exactly; kStrict and kClamp enforce the contract — rejection with a
// Status, or clamping — instead of any silent misordering.

TEST_F(StreamInvariantTest, StrictPolicyRejectsTimestampRegression) {
  TemporalPartitioningIndex::Options opts;
  opts.sax = TestSax();
  opts.buffer_entries = 100;
  opts.timestamp_policy = TimestampPolicy::kStrict;
  auto tp = TemporalPartitioningIndex::Create(mgr_.get(), "strict", opts,
                                              nullptr, raw_.get())
                .TakeValue();
  EXPECT_TRUE(tp->Ingest(0, collection_[0], 5).ok());
  // Equal timestamps satisfy the non-decreasing contract.
  EXPECT_TRUE(tp->Ingest(1, collection_[1], 5).ok());
  // A regression is rejected with InvalidArgument and not admitted.
  Status rejected = tp->Ingest(2, collection_[2], 4);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tp->num_entries(), 2u);
  // The stream recovers: later in-order arrivals are fine.
  EXPECT_TRUE(tp->Ingest(3, collection_[3], 6).ok());
  EXPECT_EQ(tp->num_entries(), 3u);
}

TEST_F(StreamInvariantTest, ClampPolicyAdmitsUnderClampedTimestamp) {
  TemporalPartitioningIndex::Options opts;
  opts.sax = TestSax();
  opts.buffer_entries = 4;  // Force sealing so clamped metadata persists.
  opts.timestamp_policy = TimestampPolicy::kClamp;
  auto tp = TemporalPartitioningIndex::Create(mgr_.get(), "clamp", opts,
                                              nullptr, raw_.get())
                .TakeValue();
  ASSERT_TRUE(tp->Ingest(0, collection_[0], 10).ok());
  // Regressions are admitted, but clamped up to the last accepted stamp.
  ASSERT_TRUE(tp->Ingest(1, collection_[1], 3).ok());
  ASSERT_TRUE(tp->Ingest(2, collection_[2], 12).ok());
  ASSERT_TRUE(tp->Ingest(3, collection_[3], 11).ok());
  ASSERT_TRUE(tp->FlushAll().ok());
  EXPECT_EQ(tp->num_entries(), 4u);

  // Series 1 now lives at timestamp 10; a window below it finds nothing.
  SearchOptions options;
  options.window = TimeWindow{0, 9};
  std::vector<float> query(collection_[1].begin(), collection_[1].end());
  auto below = tp->ExactSearch(query, options, nullptr).TakeValue();
  EXPECT_FALSE(below.found);
  // At exactly 10, the clamped entry is visible at distance 0.
  options.window = TimeWindow{10, 10};
  auto at = tp->ExactSearch(query, options, nullptr).TakeValue();
  ASSERT_TRUE(at.found);
  EXPECT_NEAR(at.distance_sq, 0.0, 1e-6);
  EXPECT_EQ(at.timestamp, 10);
  // And series 3 was clamped 11 -> 12.
  options.window = TimeWindow{12, 12};
  std::vector<float> query3(collection_[3].begin(), collection_[3].end());
  auto clamped = tp->ExactSearch(query3, options, nullptr).TakeValue();
  ASSERT_TRUE(clamped.found);
  EXPECT_NEAR(clamped.distance_sq, 0.0, 1e-6);
}

TEST_F(StreamInvariantTest, PoliciesApplyAcrossStreamingVariants) {
  // The policy rides VariantSpec through the factory into every scheme:
  // BTP (via the TP base) and PP (enforced by the wrapper itself).
  for (palm::StreamMode mode : {palm::StreamMode::kBTP,
                                palm::StreamMode::kPP}) {
    palm::VariantSpec spec;
    spec.sax = TestSax();
    spec.family = palm::IndexFamily::kClsm;
    spec.mode = mode;
    spec.buffer_entries = 100;
    spec.timestamp_policy = TimestampPolicy::kStrict;
    auto stream =
        palm::CreateStreamingIndex(
            spec, mgr_.get(),
            mode == palm::StreamMode::kBTP ? "pol_btp" : "pol_pp", nullptr,
            raw_.get())
            .TakeValue();
    ASSERT_TRUE(stream->Ingest(0, collection_[0], 7).ok());
    Status rejected = stream->Ingest(1, collection_[1], 6);
    EXPECT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(stream->num_entries(), 1u);
  }
}

}  // namespace
}  // namespace stream
}  // namespace coconut
