#include <gtest/gtest.h>

#include "ctree/ctree.h"
#include "tests/test_util.h"

namespace coconut {
namespace ctree {
namespace {

using core::SearchOptions;
using core::SearchResult;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class CTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("ctree_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<CTree> Build(const series::SeriesCollection& collection,
                               CTree::Options options,
                               const std::string& name = "ctree") {
    raw_ = core::RawSeriesStore::Create(mgr_.get(), name + ".raw", 64)
               .TakeValue();
    EXPECT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
    auto builder = CTree::Builder::Create(mgr_.get(), name, options).TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      EXPECT_TRUE(builder
                      ->Add(i, collection[i], static_cast<int64_t>(i))
                      .ok());
    }
    auto r = builder->Finish(nullptr, raw_.get());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.TakeValue();
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_F(CTreeTest, BuildAndCount) {
  auto collection = testutil::RandomWalkCollection(500, 64, 1);
  auto tree = Build(collection, {.sax = TestSax()});
  EXPECT_EQ(tree->num_entries(), 500u);
  EXPECT_GT(tree->num_leaves(), 0u);
}

TEST_F(CTreeTest, ExactSearchMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(1000, 64, 2);
  auto tree = Build(collection, {.sax = TestSax()});
  for (int q = 0; q < 25; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 41 % 1000, 0.4, 50 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = tree->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6) << "query " << q;
  }
}

TEST_F(CTreeTest, MaterializedExactSearchMatchesBruteForce) {
  auto collection = testutil::RandomWalkCollection(600, 64, 3);
  auto tree =
      Build(collection, {.sax = TestSax(), .materialized = true});
  for (int q = 0; q < 15; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 29 % 600, 0.4, 80 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = tree->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6);
  }
}

TEST_F(CTreeTest, MaterializedQueriesNeedNoRawFetches) {
  auto collection = testutil::RandomWalkCollection(600, 64, 4);
  auto tree = Build(collection, {.sax = TestSax(), .materialized = true});
  core::QueryCounters counters;
  auto query = testutil::NoisyCopy(collection, 10, 0.3, 5);
  ASSERT_TRUE(tree->ExactSearch(query, {}, &counters).ok());
  EXPECT_EQ(counters.raw_fetches, 0u);

  // Non-materialized pays raw fetches for verification.
  auto tree2 = Build(collection, {.sax = TestSax()}, "ctree2");
  counters.Reset();
  ASSERT_TRUE(tree2->ExactSearch(query, {}, &counters).ok());
  EXPECT_GT(counters.raw_fetches, 0u);
}

TEST_F(CTreeTest, BulkBuildUsesSequentialWrites) {
  auto collection = testutil::RandomWalkCollection(3000, 64, 5);
  raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  mgr_->io_stats()->Reset();
  auto builder =
      CTree::Builder::Create(mgr_.get(), "ctree",
                             {.sax = TestSax(),
                              // Small budget to force an external sort.
                              .sort_memory_bytes = 32 * 1024})
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(builder->Add(i, collection[i], 0).ok());
  }
  auto tree = builder->Finish(nullptr, raw_.get()).TakeValue();
  const auto& io = *mgr_->io_stats();
  // The whole pipeline (spill runs, merge, leaf writes) must be dominated
  // by sequential I/O; random writes stay O(1) (headers).
  EXPECT_GE(io.sequential_writes, 40u);
  EXPECT_LT(io.random_writes, 10u);
  EXPECT_GT(io.sequential_writes, io.random_writes * 5);
  EXPECT_GT(builder->sort_stats().runs_spilled, 1u);
}

TEST_F(CTreeTest, ReopenPreservesTree) {
  auto collection = testutil::RandomWalkCollection(300, 64, 6);
  auto tree = Build(collection, {.sax = TestSax()});
  tree.reset();
  auto reopened =
      CTree::Open(mgr_.get(), "ctree", nullptr, raw_.get()).TakeValue();
  EXPECT_EQ(reopened->num_entries(), 300u);
  std::vector<float> query(collection[7].begin(), collection[7].end());
  auto got = reopened->ExactSearch(query, {}, nullptr).TakeValue();
  EXPECT_EQ(got.series_id, 7u);
  EXPECT_NEAR(got.distance_sq, 0.0, 1e-9);
}

// -------------------------------------------------------------- inserts

TEST_F(CTreeTest, InsertsIntoSlackThenSearchable) {
  auto collection = testutil::RandomWalkCollection(400, 64, 7);
  // Build from the first 300 with slack; insert the remaining 100.
  series::SeriesCollection base(64);
  for (size_t i = 0; i < 300; ++i) base.Append(collection[i]);

  raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  auto builder =
      CTree::Builder::Create(mgr_.get(), "ctree",
                             {.sax = TestSax(), .fill_factor = 0.7})
          .TakeValue();
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(builder->Add(i, base[i], static_cast<int64_t>(i)).ok());
  }
  auto tree = builder->Finish(nullptr, raw_.get()).TakeValue();

  for (size_t i = 300; i < 400; ++i) {
    ASSERT_TRUE(tree->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(tree->Flush().ok());
  EXPECT_EQ(tree->num_entries(), 400u);

  // Every inserted series is findable with distance 0.
  for (size_t i = 300; i < 400; i += 7) {
    std::vector<float> query(collection[i].begin(), collection[i].end());
    auto got = tree->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found);
    EXPECT_NEAR(got.distance_sq, 0.0, 1e-9) << "inserted series " << i;
  }

  // And exact search still agrees with brute force over the union.
  for (int q = 0; q < 10; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 39 % 400, 0.4, 90 + q);
    auto truth = testutil::BruteForceNearest(collection, query);
    auto got = tree->ExactSearch(query, {}, nullptr).TakeValue();
    EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6);
  }
}

TEST_F(CTreeTest, InsertsSplitFullLeaves) {
  auto collection = testutil::RandomWalkCollection(600, 64, 8);
  series::SeriesCollection base(64);
  for (size_t i = 0; i < 300; ++i) base.Append(collection[i]);

  raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());
  // Fill factor 1.0: every insert hits a full leaf eventually -> splits.
  auto builder = CTree::Builder::Create(mgr_.get(), "ctree",
                                        {.sax = TestSax(), .fill_factor = 1.0})
                     .TakeValue();
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(builder->Add(i, base[i], 0).ok());
  }
  auto tree = builder->Finish(nullptr, raw_.get()).TakeValue();
  const size_t leaves_before = tree->num_leaves();

  for (size_t i = 300; i < 600; ++i) {
    ASSERT_TRUE(tree->Insert(i, collection[i], 0).ok());
  }
  EXPECT_EQ(tree->num_entries(), 600u);
  EXPECT_GT(tree->num_leaves(), leaves_before);

  auto query = testutil::NoisyCopy(collection, 450, 0.3, 77);
  auto truth = testutil::BruteForceNearest(collection, query);
  auto got = tree->ExactSearch(query, {}, nullptr).TakeValue();
  EXPECT_NEAR(got.distance_sq, truth.distance_sq, 1e-6);
}

TEST_F(CTreeTest, LowFillFactorMakesInsertsCheaper) {
  auto collection = testutil::RandomWalkCollection(2000, 64, 9);
  series::SeriesCollection base(64);
  for (size_t i = 0; i < 1000; ++i) base.Append(collection[i]);

  auto measure = [&](double fill, const std::string& name) -> uint64_t {
    auto local_raw =
        core::RawSeriesStore::Create(mgr_.get(), name + ".raw", 64)
            .TakeValue();
    EXPECT_TRUE(testutil::FillRawStore(local_raw.get(), collection).ok());
    auto builder =
        CTree::Builder::Create(mgr_.get(), name,
                               {.sax = TestSax(), .fill_factor = fill})
            .TakeValue();
    for (size_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE(builder->Add(i, base[i], 0).ok());
    }
    auto tree = builder->Finish(nullptr, local_raw.get()).TakeValue();
    storage::IoStats before = *mgr_->io_stats();
    for (size_t i = 1000; i < 2000; ++i) {
      EXPECT_TRUE(tree->Insert(i, collection[i], 0).ok());
    }
    storage::IoStats delta = mgr_->io_stats()->Since(before);
    return delta.total_ios();
  };

  const uint64_t io_full = measure(1.0, "full");
  const uint64_t io_slack = measure(0.6, "slack");
  // Slack absorbs inserts without splits: strictly less I/O.
  EXPECT_LT(io_slack, io_full);
}

TEST_F(CTreeTest, EmptyTreeSearchesFindNothing) {
  series::SeriesCollection empty(64);
  auto tree = Build(empty, {.sax = TestSax()});
  std::vector<float> query(64, 0.0f);
  auto a = tree->ApproxSearch(query, {}, nullptr).TakeValue();
  EXPECT_FALSE(a.found);
  auto e = tree->ExactSearch(query, {}, nullptr).TakeValue();
  EXPECT_FALSE(e.found);
}

TEST_F(CTreeTest, InsertIntoEmptyTree) {
  series::SeriesCollection empty(64);
  auto tree = Build(empty, {.sax = TestSax()});
  auto collection = testutil::RandomWalkCollection(10, 64, 10);
  // Register them in the raw store the tree verifies against.
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(raw_->Append(collection[i]).ok());
  }
  ASSERT_TRUE(raw_->Flush().ok());
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(tree->Insert(i, collection[i], 0).ok());
  }
  EXPECT_EQ(tree->num_entries(), 10u);
  std::vector<float> query(collection[3].begin(), collection[3].end());
  auto got = tree->ExactSearch(query, {}, nullptr).TakeValue();
  EXPECT_EQ(got.series_id, 3u);
}

TEST_F(CTreeTest, RejectsWrongLength) {
  auto collection = testutil::RandomWalkCollection(10, 64, 11);
  auto tree = Build(collection, {.sax = TestSax()});
  std::vector<float> short_series(32, 0.0f);
  EXPECT_FALSE(tree->Insert(99, short_series, 0).ok());
  auto builder =
      CTree::Builder::Create(mgr_.get(), "x", {.sax = TestSax()}).TakeValue();
  EXPECT_FALSE(builder->Add(0, short_series, 0).ok());
}

}  // namespace
}  // namespace ctree
}  // namespace coconut
