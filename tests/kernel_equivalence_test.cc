// The SIMD-vs-scalar oracle for the series::kernels dispatch layer. Every
// supported ISA tier is pinned via ForceIsa and compared against the scalar
// reference on randomized and adversarial inputs (NaN/Inf, unaligned
// pointers, remainder lengths, breakpoint-exact values):
//  - ComputePaa, SAX symbolization and the MINDIST accumulator must be
//    BIT-identical across tiers (the table contract the oracles build on;
//    NaN outputs match in NaN-ness only — see SameBitsOrBothNan);
//  - EuclideanSquared may reassociate the summation, so tiers agree within
//    an n-term reassociation bound; within one tier, early abandon at
//    threshold = +inf and the batch kernel are bit-identical to it.
// The whole binary also reruns with COCONUT_FORCE_KERNEL=scalar via the
// <name>_forced_scalar ctest entry, pinning the env-knob path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "series/breakpoints.h"
#include "series/distance.h"
#include "series/isax.h"
#include "series/kernels.h"
#include "series/paa.h"

namespace coconut {
namespace series {
namespace {

namespace k = kernels;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr float kNanF = std::numeric_limits<float>::quiet_NaN();
constexpr float kInfF = std::numeric_limits<float>::infinity();

/// Bitwise float equality: NaN payloads and signed zeros must match too,
/// that is what "bit-identical across tiers" means.
bool SameBits(float a, float b) {
  uint32_t ua;
  uint32_t ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

bool SameBits(double a, double b) {
  uint64_t ua;
  uint64_t ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// PAA outputs: bit-identical, except that a NaN only has to match in
/// NaN-ness. IEEE 754 leaves NaN sign/payload propagation unspecified and
/// GCC exploits that per build mode — the SAME scalar source yields
/// inf + -inf -> -nan at -O2 but the propagated input +nan at -O0 or under
/// TSan instrumentation — so NaN bits cannot be part of the cross-tier
/// contract (and nothing downstream reads them: SAX quantizes every NaN
/// to the top symbol, comparisons treat all NaNs alike).
bool SameBitsOrBothNan(float a, float b) {
  return SameBits(a, b) || (std::isnan(a) && std::isnan(b));
}

std::vector<float> RandomValues(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->NextGaussian());
  return v;
}

/// Sprinkles non-finite values into a copy of `v` (every 7th position).
std::vector<float> WithSpecials(std::vector<float> v) {
  static const float specials[] = {kNanF, kInfF, -kInfF, 0.0f, -0.0f};
  for (size_t i = 0; i < v.size(); i += 7) {
    v[i] = specials[(i / 7) % 5];
  }
  return v;
}

/// Runs in a scalar-pinned scope so tests can build references while the
/// fixture keeps the parameterized tier active.
template <typename Fn>
auto UnderIsa(k::Isa isa, Fn&& fn) {
  EXPECT_TRUE(k::ForceIsa(isa));
  auto result = fn();
  return result;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<k::Isa> {
 protected:
  void TearDown() override { k::ResetForcedIsa(); }

  /// Pins the tier under test (call after building scalar references).
  void UseParam() { ASSERT_TRUE(k::ForceIsa(GetParam())); }
};

std::string IsaParamName(const ::testing::TestParamInfo<k::Isa>& info) {
  return k::IsaName(info.param);
}

// ------------------------------------------------------------------ PAA

TEST_P(KernelEquivalenceTest, PaaBitIdentical) {
  Rng rng(11);
  const size_t lengths[] = {1, 2, 3, 5, 7, 8, 15, 16, 17,
                            33, 63, 64, 96, 100, 128, 256, 1000, 1024};
  for (const size_t n : lengths) {
    for (int segments = 1; segments <= 16; ++segments) {
      const auto values = RandomValues(&rng, n);
      const auto adversarial = WithSpecials(values);
      for (const auto& input : {values, adversarial}) {
        const auto reference = UnderIsa(k::Isa::kScalar, [&] {
          return ComputePaa(input, segments);
        });
        UseParam();
        const auto got = ComputePaa(input, segments);
        ASSERT_EQ(got.size(), reference.size());
        for (size_t s = 0; s < got.size(); ++s) {
          EXPECT_TRUE(SameBitsOrBothNan(got[s], reference[s]))
              << "n=" << n << " segments=" << segments << " s=" << s
              << " got=" << got[s] << " want=" << reference[s];
        }
      }
    }
  }
}

TEST_P(KernelEquivalenceTest, PaaUnalignedOutput) {
  Rng rng(12);
  const auto values = RandomValues(&rng, 128);
  const auto reference = UnderIsa(k::Isa::kScalar, [&] {
    return ComputePaa(values, 8);
  });
  UseParam();
  // Misalign both input and output by every sub-vector offset.
  std::vector<float> in_buf(values.size() + 16);
  std::vector<float> out_buf(8 + 16);
  for (size_t off = 0; off < 9; ++off) {
    std::copy(values.begin(), values.end(), in_buf.begin() + off);
    std::span<const float> in(in_buf.data() + off, values.size());
    std::span<float> out(out_buf.data() + off, 8);
    ComputePaa(in, 8, out);
    for (size_t s = 0; s < 8; ++s) {
      EXPECT_TRUE(SameBits(out[s], reference[s])) << "offset " << off;
    }
  }
}

// ------------------------------------------------------------------ SAX

TEST_P(KernelEquivalenceTest, SaxBitIdenticalAndMatchesQuantize) {
  Rng rng(13);
  SaxConfig config;
  for (int bits = 1; bits <= 8; ++bits) {
    for (int segments = 1; segments <= 16; ++segments) {
      config.num_segments = segments;
      config.bits_per_segment = bits;
      config.series_length = std::max(segments, 64);
      auto paa = RandomValues(&rng, segments);
      // Adversarial PAA: specials plus values exactly on breakpoints
      // (rounding direction there must match std::upper_bound).
      auto adversarial = WithSpecials(paa);
      const auto& table = Breakpoints::ForBits(bits);
      for (size_t s = 0; s + 1 < adversarial.size() && s < table.size();
           s += 2) {
        adversarial[s + 1] = static_cast<float>(table[s % table.size()]);
      }
      for (const auto& input : {paa, adversarial}) {
        const SaxWord reference = UnderIsa(k::Isa::kScalar, [&] {
          return ComputeSaxFromPaa(input, config);
        });
        // The scalar tier itself must agree with the Breakpoints oracle.
        for (int s = 0; s < segments; ++s) {
          EXPECT_EQ(reference[s],
                    Breakpoints::Quantize(input[s], bits))
              << "bits=" << bits << " s=" << s << " v=" << input[s];
        }
        UseParam();
        const SaxWord got = ComputeSaxFromPaa(input, config);
        EXPECT_EQ(got, reference) << "bits=" << bits
                                  << " segments=" << segments;
      }
    }
  }
}

TEST_P(KernelEquivalenceTest, SaxNanQuantizesToTopSymbol) {
  UseParam();
  SaxConfig config;
  config.num_segments = 4;
  config.bits_per_segment = 8;
  const float paa[4] = {kNanF, kInfF, -kInfF, 0.0f};
  const SaxWord word = ComputeSaxFromPaa(std::span<const float>(paa, 4),
                                         config);
  EXPECT_EQ(word[0], 255);  // NaN compares "not less" everywhere.
  EXPECT_EQ(word[1], 255);
  EXPECT_EQ(word[2], 0);
}

// -------------------------------------------------------------- MINDIST

TEST_P(KernelEquivalenceTest, MindistBitIdentical) {
  Rng rng(14);
  SaxConfig config;
  for (int bits : {1, 4, 8}) {
    for (int segments = 1; segments <= 16; ++segments) {
      config.num_segments = segments;
      config.bits_per_segment = bits;
      config.series_length = std::max(segments * 4, 64);
      for (int round = 0; round < 8; ++round) {
        SaxWord word{};
        for (int s = 0; s < segments; ++s) {
          word[s] = static_cast<uint8_t>(rng.NextUint64() &
                                         ((1u << bits) - 1));
        }
        const SaxRegion region = RegionFromSax(word, config);
        auto paa = RandomValues(&rng, segments);
        if (round % 2 == 1) paa = WithSpecials(paa);
        const double reference = UnderIsa(k::Isa::kScalar, [&] {
          return MinDistSquared(paa, region, config);
        });
        UseParam();
        const double got = MinDistSquared(paa, region, config);
        EXPECT_TRUE(SameBits(got, reference))
            << "bits=" << bits << " segments=" << segments << " got=" << got
            << " want=" << reference;
      }
    }
  }
}

// ------------------------------------------------------------ Euclidean

TEST_P(KernelEquivalenceTest, EuclideanWithinReassociationBound) {
  Rng rng(15);
  const size_t lengths[] = {1, 2, 3, 15, 16, 17, 31, 32, 33, 63, 64,
                            65, 100, 255, 256, 257, 1000};
  for (const size_t n : lengths) {
    const auto a = RandomValues(&rng, n);
    const auto b = RandomValues(&rng, n);
    const double reference = UnderIsa(k::Isa::kScalar, [&] {
      return EuclideanSquared(a, b);
    });
    UseParam();
    const double got = EuclideanSquared(a, b);
    // Each (a-b)^2 term is computed bit-exactly in double on every tier;
    // only the summation order differs. For m non-negative terms the
    // reassociation error is < m * eps * sum, with headroom doubled.
    const double tol =
        reference * static_cast<double>(n) * 2.0 *
        std::numeric_limits<double>::epsilon();
    EXPECT_NEAR(got, reference, tol) << "n=" << n;
    if (GetParam() == k::Isa::kScalar) {
      EXPECT_TRUE(SameBits(got, reference));
    }
  }
}

TEST_P(KernelEquivalenceTest, EuclideanNonFinitePropagates) {
  Rng rng(16);
  UseParam();
  for (const size_t n : {7u, 16u, 33u, 64u}) {
    auto a = WithSpecials(RandomValues(&rng, n));
    const auto b = RandomValues(&rng, n);
    const double got = EuclideanSquared(a, b);
    // A NaN term (every 7th slot starts with one) must surface as NaN, on
    // every tier — max/blend tricks must not mask it.
    EXPECT_TRUE(std::isnan(got)) << "n=" << n;
  }
}

TEST_P(KernelEquivalenceTest, EuclideanUnalignedPointers) {
  Rng rng(17);
  const size_t n = 100;
  const auto a = RandomValues(&rng, n);
  const auto b = RandomValues(&rng, n);
  UseParam();
  const double want = EuclideanSquared(a, b);
  std::vector<float> a_buf(n + 16);
  std::vector<float> b_buf(n + 16);
  for (size_t off_a = 0; off_a < 5; ++off_a) {
    for (size_t off_b = 0; off_b < 5; ++off_b) {
      std::copy(a.begin(), a.end(), a_buf.begin() + off_a);
      std::copy(b.begin(), b.end(), b_buf.begin() + off_b);
      const double got = EuclideanSquared(
          std::span<const float>(a_buf.data() + off_a, n),
          std::span<const float>(b_buf.data() + off_b, n));
      // Same tier, same summation structure: alignment must not matter.
      EXPECT_TRUE(SameBits(got, want))
          << "off_a=" << off_a << " off_b=" << off_b;
    }
  }
}

TEST_P(KernelEquivalenceTest, EarlyAbandonInfinityIsBitIdentical) {
  Rng rng(18);
  UseParam();
  for (const size_t n : {1u, 15u, 16u, 17u, 64u, 100u, 257u}) {
    const auto a = RandomValues(&rng, n);
    const auto b = RandomValues(&rng, n);
    const double full = EuclideanSquared(a, b);
    const double ea = EuclideanSquaredEarlyAbandon(a, b, kInf);
    EXPECT_TRUE(SameBits(ea, full)) << "n=" << n;
  }
}

TEST_P(KernelEquivalenceTest, EarlyAbandonNeverUnderestimates) {
  Rng rng(19);
  UseParam();
  for (int round = 0; round < 50; ++round) {
    const size_t n = 16 + static_cast<size_t>(rng.NextUint64() % 200);
    const auto a = RandomValues(&rng, n);
    const auto b = RandomValues(&rng, n);
    const double full = EuclideanSquared(a, b);
    const double threshold = full * (0.1 + 0.8 * rng.NextDouble());
    const double ea = EuclideanSquaredEarlyAbandon(a, b, threshold);
    if (ea <= threshold) {
      // Not abandoned: must be the exact full distance.
      EXPECT_TRUE(SameBits(ea, full)) << "n=" << n;
    } else {
      // Abandoned: the partial sum is a lower bound of the full distance
      // (per-lane accumulators only grow), so the verdict is sound.
      EXPECT_GE(full, ea) << "n=" << n;
      EXPECT_GT(full, threshold) << "n=" << n;
    }
  }
}

// ----------------------------------------------------------------- batch

TEST_P(KernelEquivalenceTest, BatchMatchesPerQueryEarlyAbandon) {
  Rng rng(20);
  UseParam();
  for (const size_t n : {3u, 16u, 33u, 64u, 100u}) {
    for (const size_t nq : {1u, 2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
      const auto candidate = RandomValues(&rng, n);
      std::vector<std::vector<float>> queries(nq);
      std::vector<const float*> qptrs(nq);
      std::vector<double> thresholds(nq);
      for (size_t q = 0; q < nq; ++q) {
        queries[q] = RandomValues(&rng, n);
        qptrs[q] = queries[q].data();
        // Mix live, already-abandoned and unbounded queries.
        switch (q % 3) {
          case 0:
            thresholds[q] = kInf;
            break;
          case 1:
            thresholds[q] = 0.0;
            break;
          default:
            thresholds[q] = 1.0 + rng.NextDouble() * n;
        }
      }
      std::vector<double> out(nq, -1.0);
      EuclideanSquaredEarlyAbandonBatch(candidate, qptrs, thresholds, out);
      for (size_t q = 0; q < nq; ++q) {
        const double want = EuclideanSquaredEarlyAbandon(
            queries[q], candidate, thresholds[q]);
        EXPECT_TRUE(SameBits(out[q], want))
            << "n=" << n << " nq=" << nq << " q=" << q << " got=" << out[q]
            << " want=" << want;
      }
    }
  }
}

// ------------------------------------------------- dispatch plumbing

TEST_P(KernelEquivalenceTest, ForceIsaActivatesRequestedTier) {
  UseParam();
  EXPECT_EQ(k::ActiveIsa(), GetParam());
  EXPECT_STREQ(k::Active().name, k::IsaName(GetParam()));
}

TEST(KernelDispatchTest, SupportedIsasStartsWithScalar) {
  const auto isas = k::SupportedIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), k::Isa::kScalar);
  for (const k::Isa isa : isas) EXPECT_TRUE(k::IsaSupported(isa));
  EXPECT_TRUE(k::IsaSupported(k::Isa::kScalar));
}

TEST(KernelDispatchTest, ForceIsaRejectsUnsupportedTier) {
  // Forcing a tier the build/CPU cannot run must leave dispatch unchanged.
  const k::Isa before = k::ActiveIsa();
  for (const k::Isa isa : {k::Isa::kAvx2, k::Isa::kAvx512}) {
    if (!k::IsaSupported(isa)) {
      EXPECT_FALSE(k::ForceIsa(isa));
      EXPECT_EQ(k::ActiveIsa(), before);
    }
  }
  k::ResetForcedIsa();
}

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelEquivalenceTest,
                         ::testing::ValuesIn(k::SupportedIsas()),
                         IsaParamName);

}  // namespace
}  // namespace series
}  // namespace coconut
