// Generator for the golden WAL fixtures in this directory, kept so the
// fixtures are reproducible and reviewable. It deliberately builds every
// frame byte by byte — explicit little-endian writes plus the shared
// CRC-32C — instead of calling Wal::EncodeFrame, so wal_format_test.cc
// checking EncodeFrame against these bytes pins the format from two
// independent directions.
//
// Regenerate (from the repo root, after building libcoconut):
//   c++ -std=c++20 -Isrc tests/testdata/generate_wal_fixtures.cc \
//       -o /tmp/gen_wal_fixtures && /tmp/gen_wal_fixtures tests/testdata
//
// The emitted files are versioned: they must only ever change together
// with a WAL format-version bump.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"

namespace {

using coconut::Crc32c;
using coconut::Crc32cExtend;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF32(std::vector<uint8_t>* out, float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  PutU32(out, bits);
}

/// One frame with an arbitrary version stamp (the golden set includes
/// deliberately future-versioned frames the current writer cannot emit).
std::vector<uint8_t> Frame(uint8_t major, uint8_t minor, uint8_t type,
                           const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  PutU32(&frame, 0x4C415743u);  // "CWAL"
  frame.push_back(major);
  frame.push_back(minor);
  frame.push_back(type);
  frame.push_back(0);  // reserved
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32c(frame.data() + 4, 8);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  PutU32(&frame, crc);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void Append(std::vector<uint8_t>* log, const std::vector<uint8_t>& frame) {
  log->insert(log->end(), frame.begin(), frame.end());
}

void WriteFile(const std::string& dir, const char* name,
               const std::vector<uint8_t>& bytes) {
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  if (!bytes.empty() && std::fwrite(bytes.data(), 1, bytes.size(), f) !=
                            bytes.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
  std::printf("%s: %zu bytes\n", name, bytes.size());
}

std::vector<uint8_t> HeaderPayload(uint32_t series_length) {
  std::vector<uint8_t> p;
  PutU32(&p, series_length);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/testdata";

  // ---- wal_header.bin: the frame every log starts with (length 4).
  WriteFile(dir, "wal_header.bin", Frame(1, 0, 1, HeaderPayload(4)));

  // ---- wal_batch.bin: one group commit holding all three record kinds —
  // a map, the admit it maps (with both zeros and a quiet NaN among the
  // values), and a hole.
  {
    std::vector<uint8_t> p;
    PutU32(&p, 3);  // count
    p.push_back(2);  // kMap
    PutU64(&p, 42);
    p.push_back(0);  // kAdmit
    PutU64(&p, 0);   // id
    PutI64(&p, 7);   // timestamp
    PutF32(&p, 0.0f);
    PutF32(&p, -0.0f);
    PutF32(&p, 1.5f);
    std::vector<uint8_t> nan{0x00, 0x00, 0xC0, 0x7F};  // quiet NaN
    p.insert(p.end(), nan.begin(), nan.end());
    p.push_back(1);  // kHole
    WriteFile(dir, "wal_batch.bin", Frame(1, 0, 2, p));
  }

  // ---- wal_checkpoint.bin: durable_entries=2, manifest "abc".
  {
    std::vector<uint8_t> p;
    PutU64(&p, 2);
    PutU32(&p, 3);
    p.push_back('a');
    p.push_back('b');
    p.push_back('c');
    WriteFile(dir, "wal_checkpoint.bin", Frame(1, 0, 3, p));
  }

  // ---- wal_base.bin: the truncation base — 2 ordinals (1 admit + 1
  // hole) dropped, watermark -5, no folded checkpoint, 2 map entries.
  {
    std::vector<uint8_t> p;
    PutU64(&p, 2);   // base_ordinals
    PutU64(&p, 1);   // base_admitted
    PutI64(&p, -5);  // watermark
    PutU64(&p, 0);   // checkpoint durable_entries
    PutU32(&p, 0);   // manifest_len
    PutU64(&p, 2);   // map_count
    PutU64(&p, 9);
    PutU64(&p, 11);
    WriteFile(dir, "wal_base.bin", Frame(1, 0, 4, p));
  }

  // ---- wal_log.bin: a complete openable log — header + one commit of
  // two admits (ids 0 and 1, timestamps 1 and 2, values 1..4 and 5..8).
  {
    std::vector<uint8_t> log;
    Append(&log, Frame(1, 0, 1, HeaderPayload(4)));
    std::vector<uint8_t> batch;
    PutU32(&batch, 2);
    for (uint64_t id = 0; id < 2; ++id) {
      batch.push_back(0);  // kAdmit
      PutU64(&batch, id);
      PutI64(&batch, static_cast<int64_t>(id) + 1);
      for (int i = 0; i < 4; ++i) {
        PutF32(&batch, static_cast<float>(id * 4 + i + 1));
      }
    }
    Append(&log, Frame(1, 0, 2, batch));
    WriteFile(dir, "wal_log.bin", log);
  }

  // ---- wal_future_minor.bin: a minor-version bump added an unknown
  // frame type (7) between the header and a batch. A current reader must
  // skip the unknown frame (its CRC proves it intact) and still replay
  // the batch.
  {
    std::vector<uint8_t> log;
    Append(&log, Frame(1, 0, 1, HeaderPayload(4)));
    std::vector<uint8_t> future{'f', 'u', 't', 'u', 'r', 'e'};
    Append(&log, Frame(1, 9, 7, future));
    std::vector<uint8_t> batch;
    PutU32(&batch, 1);
    batch.push_back(0);  // kAdmit
    PutU64(&batch, 0);
    PutI64(&batch, 3);
    for (int i = 0; i < 4; ++i) {
      PutF32(&batch, static_cast<float>(i) - 1.5f);
    }
    Append(&log, Frame(1, 9, 2, batch));
    WriteFile(dir, "wal_future_minor.bin", log);
  }

  // ---- wal_future_major.bin: a log created by major version 2. The
  // very first frame is unreadable; Open must refuse with NotSupported,
  // never treat it as corruption or a torn tail.
  WriteFile(dir, "wal_future_major.bin", Frame(2, 0, 1, HeaderPayload(4)));

  // ---- wal_future_major_appended.bin: a v1 log a newer writer appended
  // a major-2 frame to. The frame is committed data, not a torn tail;
  // Open must refuse rather than truncate it away.
  {
    std::vector<uint8_t> log;
    Append(&log, Frame(1, 0, 1, HeaderPayload(4)));
    std::vector<uint8_t> p{0x01};
    Append(&log, Frame(2, 0, 2, p));
    WriteFile(dir, "wal_future_major_appended.bin", log);
  }

  return 0;
}
