#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "core/entry.h"
#include "extsort/external_sorter.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace extsort {
namespace {

using core::EntryBytesLess;
using core::IndexEntry;
using series::SortableKey;

std::vector<IndexEntry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<IndexEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i].key = SortableKey{{rng.NextUint64(), rng.NextUint64()}};
    entries[i].series_id = i;
    entries[i].timestamp = static_cast<int64_t>(rng.NextBounded(1000));
  }
  return entries;
}

std::vector<uint8_t> ToBytes(const std::vector<IndexEntry>& entries) {
  std::vector<uint8_t> bytes(entries.size() * sizeof(IndexEntry));
  std::memcpy(bytes.data(), entries.data(), bytes.size());
  return bytes;
}

std::vector<IndexEntry> FromBytes(const std::vector<uint8_t>& bytes) {
  std::vector<IndexEntry> entries(bytes.size() / sizeof(IndexEntry));
  std::memcpy(entries.data(), bytes.data(), bytes.size());
  return entries;
}

class ExtSortTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("extsort_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  ExternalSorter::Options Opts(size_t budget) {
    ExternalSorter::Options o;
    o.record_size = sizeof(IndexEntry);
    o.memory_budget_bytes = budget;
    o.storage = mgr_.get();
    o.less = EntryBytesLess;
    return o;
  }

  void CheckSorted(const std::vector<IndexEntry>& in, size_t budget) {
    auto result = SortToBytes(Opts(budget), ToBytes(in));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto out = FromBytes(result.value());
    ASSERT_EQ(out.size(), in.size());
    auto expected = in;
    std::sort(expected.begin(), expected.end(), core::EntryKeyLess());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], expected[i]) << "at index " << i;
    }
  }

  std::unique_ptr<storage::StorageManager> mgr_;
};

TEST_F(ExtSortTest, RejectsBadOptions) {
  ExternalSorter::Options o = Opts(1 << 20);
  o.record_size = 0;
  EXPECT_FALSE(ExternalSorter::Create(o).ok());
  o = Opts(1 << 20);
  o.storage = nullptr;
  EXPECT_FALSE(ExternalSorter::Create(o).ok());
  o = Opts(1 << 20);
  o.less = nullptr;
  EXPECT_FALSE(ExternalSorter::Create(o).ok());
}

TEST_F(ExtSortTest, EmptyInput) {
  auto result = SortToBytes(Opts(1 << 20), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST_F(ExtSortTest, SingleRecord) { CheckSorted(RandomEntries(1, 1), 1 << 20); }

TEST_F(ExtSortTest, InMemoryWhenBudgetSuffices) {
  auto entries = RandomEntries(1000, 2);
  ExternalSorter::Options o = Opts(1 << 20);  // 1 MiB >> 32 KB of records.
  auto sorter = ExternalSorter::Create(o).TakeValue();
  for (const auto& e : entries) ASSERT_TRUE(sorter->Add(&e).ok());
  auto stream = sorter->Finish().TakeValue();
  IndexEntry rec;
  size_t count = 0;
  SortableKey prev = SortableKey::Min();
  while (true) {
    auto has = stream->Next(reinterpret_cast<uint8_t*>(&rec));
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, rec.key);
    prev = rec.key;
    ++count;
  }
  EXPECT_EQ(count, entries.size());
  EXPECT_TRUE(sorter->stats().in_memory);
  EXPECT_EQ(sorter->stats().runs_spilled, 0u);
}

TEST_F(ExtSortTest, SpillsRunsUnderPressure) {
  auto entries = RandomEntries(4000, 3);
  // Budget for ~500 records -> ~8 runs.
  ExternalSorter::Options o = Opts(500 * sizeof(IndexEntry));
  auto sorter = ExternalSorter::Create(o).TakeValue();
  for (const auto& e : entries) ASSERT_TRUE(sorter->Add(&e).ok());
  auto stream_r = sorter->Finish();
  ASSERT_TRUE(stream_r.ok());
  EXPECT_GE(sorter->stats().runs_spilled, 7u);
  EXPECT_FALSE(sorter->stats().in_memory);

  auto stream = stream_r.TakeValue();
  IndexEntry rec;
  size_t count = 0;
  SortableKey prev = SortableKey::Min();
  while (true) {
    auto has = stream->Next(reinterpret_cast<uint8_t*>(&rec));
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, rec.key);
    prev = rec.key;
    ++count;
  }
  EXPECT_EQ(count, entries.size());
}

class ExtSortBudgetSweep : public ExtSortTest,
                           public ::testing::WithParamInterface<size_t> {};

TEST_P(ExtSortBudgetSweep, SortsCorrectlyAtEveryBudget) {
  CheckSorted(RandomEntries(2500, GetParam()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ExtSortBudgetSweep,
    ::testing::Values(
        // Extreme pressure: ~128 records per run, tiny fan-in, multi-pass.
        static_cast<size_t>(4096),
        static_cast<size_t>(16 * 1024),
        static_cast<size_t>(64 * 1024),
        // Everything in memory.
        static_cast<size_t>(8) << 20));

TEST_F(ExtSortTest, MultiPassMergeUnderExtremePressure) {
  auto entries = RandomEntries(8000, 11);
  // 4 KiB budget = 128 records/run -> ~63 runs; fan-in floor is 2 ->
  // several merge passes.
  ExternalSorter::Options o = Opts(4096);
  auto sorter = ExternalSorter::Create(o).TakeValue();
  for (const auto& e : entries) ASSERT_TRUE(sorter->Add(&e).ok());
  auto stream = sorter->Finish().TakeValue();
  IndexEntry rec;
  SortableKey prev = SortableKey::Min();
  size_t count = 0;
  while (true) {
    auto has = stream->Next(reinterpret_cast<uint8_t*>(&rec));
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, rec.key);
    prev = rec.key;
    ++count;
  }
  EXPECT_EQ(count, entries.size());
  EXPECT_GT(sorter->stats().merge_passes, 1u);
}

TEST_F(ExtSortTest, DuplicateKeysKeepAllRecords) {
  std::vector<IndexEntry> entries(300);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].key = SortableKey{{42, 42}};  // All identical.
    entries[i].series_id = i;
    entries[i].timestamp = 0;
  }
  auto result = SortToBytes(Opts(64 * sizeof(IndexEntry)), ToBytes(entries));
  ASSERT_TRUE(result.ok());
  auto out = FromBytes(result.value());
  ASSERT_EQ(out.size(), entries.size());
  // Tie-break by series_id makes the output deterministic.
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].series_id, i);
}

TEST_F(ExtSortTest, SpilledRunsUseSequentialWrites) {
  auto entries = RandomEntries(4000, 5);
  ExternalSorter::Options o = Opts(500 * sizeof(IndexEntry));
  auto sorter = ExternalSorter::Create(o).TakeValue();
  for (const auto& e : entries) ASSERT_TRUE(sorter->Add(&e).ok());
  auto stream = sorter->Finish().TakeValue();
  IndexEntry rec;
  while (true) {
    auto has = stream->Next(reinterpret_cast<uint8_t*>(&rec));
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
  }
  const auto& io = *mgr_->io_stats();
  // External sort is the sequential-I/O workhorse. Under the device-level
  // model each run/merge file costs one seek when the writer switches to
  // it; everything else is sequential.
  EXPECT_GT(io.sequential_writes, 0u);
  EXPECT_GT(io.sequential_writes, io.random_writes);
  // At most one seek per spilled run plus one per intermediate merge file.
  EXPECT_LE(io.random_writes, 2 * sorter->stats().runs_spilled + 2);
}

// ------------------------------------------------- parallel + determinism

TEST_F(ExtSortTest, ParallelRunGenerationSortsCorrectly) {
  auto entries = RandomEntries(6000, 21);
  ExternalSorter::Options o = Opts(500 * sizeof(IndexEntry));
  o.threads = 4;
  auto sorter = ExternalSorter::Create(o).TakeValue();
  for (const auto& e : entries) ASSERT_TRUE(sorter->Add(&e).ok());
  auto stream = sorter->Finish().TakeValue();
  IndexEntry rec;
  size_t count = 0;
  SortableKey prev = SortableKey::Min();
  while (true) {
    auto has = stream->Next(reinterpret_cast<uint8_t*>(&rec));
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    EXPECT_LE(prev, rec.key);
    prev = rec.key;
    ++count;
  }
  EXPECT_EQ(count, entries.size());
  EXPECT_EQ(sorter->stats().threads_used, 4u);
  EXPECT_GT(sorter->stats().runs_spilled, 0u);
  EXPECT_FALSE(sorter->stats().in_memory);
}

TEST_F(ExtSortTest, ParallelSmallInputStaysInMemory) {
  auto entries = RandomEntries(10, 22);
  ExternalSorter::Options o = Opts(1 << 20);
  o.threads = 4;
  auto sorter = ExternalSorter::Create(o).TakeValue();
  for (const auto& e : entries) ASSERT_TRUE(sorter->Add(&e).ok());
  auto stream = sorter->Finish().TakeValue();
  IndexEntry rec;
  size_t count = 0;
  while (true) {
    auto has = stream->Next(reinterpret_cast<uint8_t*>(&rec));
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    ++count;
  }
  EXPECT_EQ(count, entries.size());
  EXPECT_TRUE(sorter->stats().in_memory);
  EXPECT_EQ(sorter->stats().runs_spilled, 0u);
  // No worker generated a run, so the stat reports a synchronous sort.
  EXPECT_EQ(sorter->stats().threads_used, 1u);
}

TEST_F(ExtSortTest, OutputBytesIdenticalAcrossThreadCounts) {
  auto entries = RandomEntries(5000, 23);
  const auto input = ToBytes(entries);
  ExternalSorter::Options base = Opts(400 * sizeof(IndexEntry));
  auto reference = SortToBytes(base, input).TakeValue();
  for (size_t threads : {2u, 3u, 8u}) {
    ExternalSorter::Options o = Opts(400 * sizeof(IndexEntry));
    o.threads = threads;
    auto got = SortToBytes(o, input).TakeValue();
    EXPECT_EQ(got, reference) << "threads=" << threads;
  }
}

TEST_F(ExtSortTest, OutputBytesIdenticalAcrossMemoryBudgets) {
  auto entries = RandomEntries(3000, 24);
  const auto input = ToBytes(entries);

  // In-memory, spilled two-pass, and multi-pass merges must all emit the
  // exact same bytes.
  auto in_memory_sorter = ExternalSorter::Create(Opts(8 << 20)).TakeValue();
  auto spilled_sorter =
      ExternalSorter::Create(Opts(300 * sizeof(IndexEntry))).TakeValue();
  auto multipass_sorter = ExternalSorter::Create(Opts(4096)).TakeValue();

  auto drain = [&](ExternalSorter* sorter) {
    for (size_t off = 0; off < input.size(); off += sizeof(IndexEntry)) {
      EXPECT_TRUE(sorter->Add(input.data() + off).ok());
    }
    auto stream = sorter->Finish().TakeValue();
    std::vector<uint8_t> out;
    out.reserve(input.size());
    std::vector<uint8_t> rec(sizeof(IndexEntry));
    while (true) {
      auto has = stream->Next(rec.data());
      EXPECT_TRUE(has.ok());
      if (!has.value()) break;
      out.insert(out.end(), rec.begin(), rec.end());
    }
    return out;
  };

  const auto from_memory = drain(in_memory_sorter.get());
  const auto from_spill = drain(spilled_sorter.get());
  const auto from_multipass = drain(multipass_sorter.get());

  EXPECT_TRUE(in_memory_sorter->stats().in_memory);
  EXPECT_GT(spilled_sorter->stats().runs_spilled, 0u);
  EXPECT_GT(multipass_sorter->stats().merge_passes, 1u);

  EXPECT_EQ(from_spill, from_memory);
  EXPECT_EQ(from_multipass, from_memory);
}

TEST_F(ExtSortTest, EqualRecordsKeepInputOrderEverywhere) {
  // Records that compare equal under `less` but differ in bytes: the sort
  // is stable, so input order must survive any thread count or budget.
  std::vector<IndexEntry> entries(2000);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].key = SortableKey{{i % 7, 0}};  // Many ties per key.
    entries[i].series_id = i;
    entries[i].timestamp = static_cast<int64_t>(i);
  }
  const auto input = ToBytes(entries);
  // Compare by key only — series_id/timestamp make equal records
  // byte-distinct, exposing any instability.
  auto key_only_less = [](const uint8_t* a, const uint8_t* b) {
    IndexEntry ea, eb;
    std::memcpy(&ea, a, sizeof(ea));
    std::memcpy(&eb, b, sizeof(eb));
    return ea.key < eb.key;
  };

  std::vector<std::vector<uint8_t>> outputs;
  for (auto [budget, threads] :
       {std::pair<size_t, size_t>{8 << 20, 1},
        {200 * sizeof(IndexEntry), 1},
        {200 * sizeof(IndexEntry), 4},
        {4096, 1},
        {4096, 4}}) {
    ExternalSorter::Options o = Opts(budget);
    o.threads = threads;
    o.less = key_only_less;
    outputs.push_back(SortToBytes(o, input).TakeValue());
  }
  for (size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i], outputs[0]) << "config " << i;
  }
  // Within each key class, series ids ascend (input order preserved).
  auto sorted = FromBytes(outputs[0]);
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].key == sorted[i - 1].key) {
      EXPECT_LT(sorted[i - 1].series_id, sorted[i].series_id) << "at " << i;
    }
  }
}

// ------------------------------------------------- parallel merge phase

// Sorts `input` under `o` and returns both the output bytes and the final
// stats, so byte-identity and counter invariance are checked together.
struct SortOutcome {
  std::vector<uint8_t> bytes;
  SortStats stats;
};

class ExtSortMergeTest : public ExtSortTest {
 protected:
  SortOutcome Run(ExternalSorter::Options o,
                  const std::vector<uint8_t>& input) {
    SortOutcome outcome;
    const size_t record_size = o.record_size;
    auto sorter = ExternalSorter::Create(std::move(o)).TakeValue();
    for (size_t off = 0; off < input.size(); off += record_size) {
      EXPECT_TRUE(sorter->Add(input.data() + off).ok());
    }
    auto stream = sorter->Finish().TakeValue();
    std::vector<uint8_t> rec(record_size);
    outcome.bytes.reserve(input.size());
    while (true) {
      auto has = stream->Next(rec.data());
      EXPECT_TRUE(has.ok());
      if (!has.value()) break;
      outcome.bytes.insert(outcome.bytes.end(), rec.begin(), rec.end());
    }
    outcome.stats = sorter->stats();
    return outcome;
  }
};

TEST_F(ExtSortMergeTest, ParallelMergeByteIdenticalToSerialMerge) {
  auto entries = RandomEntries(5000, 31);
  const auto input = ToBytes(entries);
  for (size_t budget :
       {size_t{400} * sizeof(IndexEntry), size_t{4096}, size_t{64} << 10}) {
    ExternalSorter::Options serial = Opts(budget);
    serial.threads = 1;
    serial.merge_threads = 1;
    const SortOutcome reference = Run(serial, input);
    ASSERT_EQ(reference.bytes.size(), input.size());

    for (size_t gen_threads : {size_t{1}, size_t{3}}) {
      // Run generation sizes chunks by thread count, so runs_spilled (and
      // with it merge_passes) legitimately varies with `threads`. Merge
      // parallelism must not move any counter: compare against a serial-
      // merge baseline at the same generation thread count.
      ExternalSorter::Options base = Opts(budget);
      base.threads = gen_threads;
      base.merge_threads = 1;
      const SortOutcome gen_reference = Run(base, input);
      EXPECT_EQ(gen_reference.bytes, reference.bytes);

      for (size_t merge_threads : {size_t{2}, size_t{4}, size_t{8}}) {
        for (size_t partitions : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                                  size_t{8}, size_t{16}}) {
          ExternalSorter::Options o = Opts(budget);
          o.threads = gen_threads;
          o.merge_threads = merge_threads;
          o.merge_partitions = partitions;
          const SortOutcome got = Run(o, input);
          EXPECT_EQ(got.bytes, reference.bytes)
              << "budget=" << budget << " gen=" << gen_threads
              << " merge=" << merge_threads << " parts=" << partitions;
          // Totals are invariant however the merge is threaded or the key
          // space is partitioned (the thread-safe stats guarantee).
          EXPECT_EQ(got.stats.records, gen_reference.stats.records);
          EXPECT_EQ(got.stats.runs_spilled,
                    gen_reference.stats.runs_spilled);
          EXPECT_EQ(got.stats.merge_passes,
                    gen_reference.stats.merge_passes);
        }
      }
    }
  }
}

TEST_F(ExtSortMergeTest, ParallelMergeEdgeCases) {
  // Empty input.
  {
    ExternalSorter::Options o = Opts(1 << 20);
    o.merge_threads = 4;
    const SortOutcome got = Run(o, {});
    EXPECT_TRUE(got.bytes.empty());
    EXPECT_TRUE(got.stats.in_memory);
  }
  // Single record.
  {
    auto entries = RandomEntries(1, 32);
    ExternalSorter::Options o = Opts(1 << 20);
    o.merge_threads = 4;
    const SortOutcome got = Run(o, ToBytes(entries));
    EXPECT_EQ(got.bytes, ToBytes(entries));
  }
  // merge_threads explicitly 1 on a spilling sort = the serial merge even
  // when run generation is parallel.
  {
    auto entries = RandomEntries(3000, 33);
    const auto input = ToBytes(entries);
    ExternalSorter::Options serial = Opts(300 * sizeof(IndexEntry));
    const SortOutcome reference = Run(serial, input);
    ExternalSorter::Options o = Opts(300 * sizeof(IndexEntry));
    o.threads = 4;
    o.merge_threads = 1;
    const SortOutcome got = Run(o, input);
    EXPECT_EQ(got.bytes, reference.bytes);
    EXPECT_EQ(got.stats.merge_threads_used, 1u);
    EXPECT_EQ(got.stats.merge_ranges, 1u);
  }
}

TEST_F(ExtSortMergeTest, ParallelMergePartitionsRecordedInStats) {
  auto entries = RandomEntries(4000, 34);
  // Budget large enough that two concurrent range merges fit above the
  // one-page buffer floor (the partitioned path declines otherwise), yet
  // small enough to spill runs: 64 KiB over 125 KiB of records.
  ExternalSorter::Options o = Opts(64 << 10);
  o.merge_threads = 4;
  o.merge_partitions = 4;
  const SortOutcome got = Run(o, ToBytes(entries));
  EXPECT_EQ(got.bytes.size(), entries.size() * sizeof(IndexEntry));
  EXPECT_EQ(got.stats.merge_threads_used, 4u);
  EXPECT_GT(got.stats.runs_spilled, 1u);
  // Random 128-bit keys sample into distinct splitters, so the final
  // merge really was partitioned.
  EXPECT_GT(got.stats.merge_ranges, 1u);
  EXPECT_LE(got.stats.merge_ranges, 4u);
}

TEST_F(ExtSortMergeTest, DuplicateKeysFallBackToSerialMergeCorrectly) {
  // Every record equal under the comparator: splitter sampling finds one
  // key class, the partitioned merge declines, and the serial path must
  // still produce the stable order.
  std::vector<IndexEntry> entries(1500);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].key = SortableKey{{7, 7}};
    entries[i].series_id = i;
    entries[i].timestamp = 0;
  }
  const auto input = ToBytes(entries);
  auto key_only_less = [](const uint8_t* a, const uint8_t* b) {
    IndexEntry ea, eb;
    std::memcpy(&ea, a, sizeof(ea));
    std::memcpy(&eb, b, sizeof(eb));
    return ea.key < eb.key;
  };
  // Budget passes the partitioned-merge memory gate (so the decline below
  // is the splitter fallback, not the budget one) while still spilling.
  ExternalSorter::Options serial = Opts(1024 * sizeof(IndexEntry));
  serial.less = key_only_less;
  const SortOutcome reference = Run(serial, input);
  ASSERT_GT(reference.stats.runs_spilled, 1u);

  ExternalSorter::Options o = Opts(1024 * sizeof(IndexEntry));
  o.less = key_only_less;
  o.merge_threads = 4;
  const SortOutcome got = Run(o, input);
  EXPECT_EQ(got.bytes, reference.bytes);
  EXPECT_EQ(got.stats.merge_ranges, 1u);  // Fallback taken.
  // Stability: input order survives within the single key class.
  auto sorted = FromBytes(got.bytes);
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].series_id, i);
  }
}

TEST_F(ExtSortMergeTest, ParallelMultiPassMergeByteIdentical) {
  // 4 KiB budget forces tiny fan-in and several intermediate passes; the
  // groups of each pass run concurrently and the output must not move.
  auto entries = RandomEntries(8000, 35);
  const auto input = ToBytes(entries);
  ExternalSorter::Options serial = Opts(4096);
  const SortOutcome reference = Run(serial, input);
  EXPECT_GT(reference.stats.merge_passes, 1u);

  ExternalSorter::Options o = Opts(4096);
  o.merge_threads = 4;
  const SortOutcome got = Run(o, input);
  EXPECT_EQ(got.bytes, reference.bytes);
  EXPECT_EQ(got.stats.merge_passes, reference.stats.merge_passes);
  EXPECT_EQ(got.stats.runs_spilled, reference.stats.runs_spilled);
}

TEST_F(ExtSortTest, AddAfterFinishFails) {
  auto sorter = ExternalSorter::Create(Opts(1 << 20)).TakeValue();
  IndexEntry e{};
  ASSERT_TRUE(sorter->Add(&e).ok());
  ASSERT_TRUE(sorter->Finish().ok());
  EXPECT_FALSE(sorter->Add(&e).ok());
  EXPECT_FALSE(sorter->Finish().ok());
}

TEST_F(ExtSortTest, CustomComparatorOrder) {
  // Sort by timestamp descending instead of key.
  auto entries = RandomEntries(500, 6);
  ExternalSorter::Options o = Opts(100 * sizeof(IndexEntry));
  o.less = [](const uint8_t* a, const uint8_t* b) {
    IndexEntry ea, eb;
    std::memcpy(&ea, a, sizeof(ea));
    std::memcpy(&eb, b, sizeof(eb));
    return ea.timestamp > eb.timestamp;
  };
  auto result = SortToBytes(o, ToBytes(entries));
  ASSERT_TRUE(result.ok());
  auto out = FromBytes(result.value());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].timestamp, out[i].timestamp);
  }
}

}  // namespace
}  // namespace extsort
}  // namespace coconut
