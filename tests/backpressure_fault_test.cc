// Bounded-backpressure fault injection: prove VariantSpec::max_inflight_seals
// actually bounds memory when the background flusher is slow or dead, that
// stalled ingests resume (after the flusher catches up OR after a flush
// failure — never a hang), that kReject surfaces structured
// resource_exhausted errors — including over real HTTP — without
// corrupting subsequent ingest, and that a mid-stream DropIndex during a
// stalled ingest tears down cleanly. The throttle is the pool itself:
// tests park every worker of the background ThreadPool behind a latch, so
// seals queue deterministically and the cap is hit on an exact ingest
// ordinal.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "palm/api.h"
#include "palm/factory.h"
#include "palm/http_server.h"
#include "palm/sharded_streaming_index.h"
#include "series/distance.h"
#include "stream/tp.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace {

using core::SearchOptions;
using stream::BackpressurePolicy;
using stream::StreamingIndex;
using stream::StreamingStats;

constexpr size_t kLength = 32;

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 32, .num_segments = 8,
                           .bits_per_segment = 8};
}

/// Parks every worker of a pool behind a latch — the "slow flusher": any
/// strand task submitted while parked queues but cannot run. Release()
/// lets the backlog drain. Safe to destroy only after Release().
class PoolThrottle {
 public:
  explicit PoolThrottle(ThreadPool* pool) : pool_(pool) {}

  ~PoolThrottle() { Release(); }

  void Park() {
    const size_t n = pool_->num_threads();
    for (size_t i = 0; i < n; ++i) {
      pool_->Submit([this] {
        std::unique_lock<std::mutex> lock(mu_);
        ++parked_;
        cv_.notify_all();
        cv_.wait(lock, [this] { return released_; });
      });
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n] { return parked_ == n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parked_ = 0;
  bool released_ = false;
};

/// Spins until `predicate` holds (the stall we are waiting for is
/// deterministic — this only absorbs scheduling latency).
template <typename Pred>
bool WaitFor(Pred predicate, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

class BackpressureFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("backpressure_fault");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(256, kLength, 99);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", kLength)
               .TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  VariantSpec TpSpec(size_t cap, BackpressurePolicy policy,
                     ThreadPool* background) {
    VariantSpec spec;
    spec.sax = TestSax();
    spec.family = IndexFamily::kCTree;
    spec.mode = StreamMode::kTP;
    spec.buffer_entries = 8;
    spec.async_ingest = true;
    spec.background_pool = background;
    spec.max_inflight_seals = cap;
    spec.backpressure_policy = policy;
    return spec;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{kLength};
};

// kBlock under a parked flusher: seals_inflight never exceeds the cap
// (that is the memory bound — each in-flight seal pins buffer_entries
// series), the producer stalls on the exact admission that would bust it,
// and resumes to completion once the flusher runs again.
TEST_F(BackpressureFaultTest, BlockPolicyBoundsInflightSealsAndResumes) {
  ThreadPool pool(2);
  PoolThrottle throttle(&pool);
  throttle.Park();

  auto stream = CreateStreamingIndex(TpSpec(2, BackpressurePolicy::kBlock,
                                            &pool),
                                     mgr_.get(), "block", nullptr,
                                     raw_.get())
                    .TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());

  std::atomic<size_t> acknowledged{0};
  Status ingest_status;
  std::thread producer([&] {
    for (size_t i = 0; i < collection_.size(); ++i) {
      ingest_status =
          stream->Ingest(i, collection_[i], static_cast<int64_t>(i));
      if (!ingest_status.ok()) return;
      acknowledged.store(i + 1, std::memory_order_release);
    }
  });

  // The stall ordinal is deterministic: buffer 8 × cap 2 → two detaches at
  // entries 8 and 16, stall at the admission of entry 24 (0-based 23).
  ASSERT_TRUE(WaitFor([&] {
    return stream->SnapshotStats().ingest_stalls >= 1;
  }));
  EXPECT_EQ(acknowledged.load(), 23u);

  // While stalled, the bound holds and the producer makes no progress.
  for (int i = 0; i < 20; ++i) {
    const StreamingStats stats = stream->SnapshotStats();
    EXPECT_LE(stats.seals_inflight, 2u);
    EXPECT_LE(stats.buffered, 8u);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(acknowledged.load(), 23u);

  throttle.Release();
  producer.join();
  ASSERT_TRUE(ingest_status.ok()) << ingest_status.ToString();
  EXPECT_EQ(acknowledged.load(), collection_.size());
  ASSERT_TRUE(stream->FlushAll().ok());

  const StreamingStats stats = stream->SnapshotStats();
  EXPECT_EQ(stats.entries, collection_.size());
  EXPECT_EQ(stats.seals_inflight, 0u);
  EXPECT_GE(stats.ingest_stalls, 1u);
  EXPECT_EQ(stats.ingest_rejects, 0u);
  EXPECT_GE(stats.stall_ms_p99, stats.stall_ms_p50);
  EXPECT_GT(stats.stall_ms_p99, 0.0);

  // Nothing was lost or reordered while paced: exact ≡ brute force.
  for (int q = 0; q < 4; ++q) {
    auto query = testutil::NoisyCopy(collection_, q * 31, 0.4, q);
    auto oracle = testutil::BruteForceKnn(collection_, query, 1);
    auto got = stream->ExactSearch(query, {}, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().found);
    EXPECT_NEAR(got.value().distance_sq, oracle[0].distance_sq, 1e-6);
  }
}

// kReject under a parked flusher: the admission that would bust the cap
// returns ResourceExhausted (no hang, nothing admitted), repeated ingests
// keep rejecting, and once the flusher drains the stream accepts again —
// with everything admitted before/after the rejects answering exactly.
TEST_F(BackpressureFaultTest,
       RejectPolicySurfacesResourceExhaustedWithoutCorruption) {
  ThreadPool pool(2);
  PoolThrottle throttle(&pool);
  throttle.Park();

  auto stream = CreateStreamingIndex(TpSpec(1, BackpressurePolicy::kReject,
                                            &pool),
                                     mgr_.get(), "reject", nullptr,
                                     raw_.get())
                    .TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());

  size_t admitted = 0;
  Status first_reject;
  for (size_t i = 0; i < collection_.size(); ++i) {
    const Status st =
        stream->Ingest(i, collection_[i], static_cast<int64_t>(i));
    if (!st.ok()) {
      first_reject = st;
      break;
    }
    ++admitted;
  }
  // Deterministic: buffer 8 × cap 1 → detach at entry 8, reject at the
  // admission of entry 16 (15 admitted ordinals 0..14... plus the 8
  // sealed ones = 15). 0-based: entries 0..14 admitted, 15 rejected.
  EXPECT_EQ(admitted, 15u);
  ASSERT_FALSE(first_reject.ok());
  EXPECT_EQ(first_reject.code(), StatusCode::kResourceExhausted);

  // Still at the cap: further ingests reject too, state does not wedge.
  const Status again =
      stream->Ingest(admitted, collection_[admitted],
                     static_cast<int64_t>(admitted));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(stream->SnapshotStats().ingest_rejects, 2u);
  EXPECT_LE(stream->SnapshotStats().seals_inflight, 1u);

  throttle.Release();
  ASSERT_TRUE(stream->FlushAll().ok());

  // Recovered: the previously rejected entries are admissible now. A live
  // flusher can still lag a tight producer loop for a moment, so the
  // client-side contract applies — retry resource_exhausted until the
  // strand catches up; anything else is a real failure.
  for (size_t i = admitted; i < collection_.size(); ++i) {
    Status st;
    ASSERT_TRUE(WaitFor([&] {
      st = stream->Ingest(i, collection_[i], static_cast<int64_t>(i));
      return st.ok() || st.code() != StatusCode::kResourceExhausted;
    }));
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(stream->FlushAll().ok());
  EXPECT_EQ(stream->num_entries(), collection_.size());
  for (int q = 0; q < 4; ++q) {
    auto query = testutil::NoisyCopy(collection_, 10 + q * 37, 0.4, q);
    auto oracle = testutil::BruteForceKnn(collection_, query, 1);
    auto got = stream->ExactSearch(query, {}, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value().found);
    EXPECT_NEAR(got.value().distance_sq, oracle[0].distance_sq, 1e-6);
  }
}

// A *failing* background flush must not strand a blocked producer: the
// error wakes the kBlock wait, surfaces through Ingest and FlushAll, and
// the index refuses further work instead of corrupting.
TEST_F(BackpressureFaultTest, FailingFlushUnblocksStalledIngest) {
  ThreadPool pool(1);
  PoolThrottle throttle(&pool);
  throttle.Park();

  VariantSpec spec = TpSpec(1, BackpressurePolicy::kBlock, &pool);
  spec.seal_test_hook = [] {
    return Status::IoError("injected flush failure");
  };
  auto stream = CreateStreamingIndex(spec, mgr_.get(), "fail", nullptr,
                                     raw_.get())
                    .TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());

  Status ingest_status;
  std::thread producer([&] {
    for (size_t i = 0; i < collection_.size(); ++i) {
      ingest_status =
          stream->Ingest(i, collection_[i], static_cast<int64_t>(i));
      if (!ingest_status.ok()) return;
    }
  });
  // Producer stalls at entry 16's admission (buffer 8 × cap 1, seal
  // parked); the flusher then *fails* instead of retiring the seal.
  ASSERT_TRUE(WaitFor([&] {
    return stream->SnapshotStats().ingest_stalls >= 1;
  }));
  throttle.Release();
  producer.join();

  ASSERT_FALSE(ingest_status.ok());
  EXPECT_EQ(ingest_status.code(), StatusCode::kIoError);
  const Status drained = stream->FlushAll();
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kIoError);
  // Dead, not wedged: further ingests return the error immediately.
  const Status after =
      stream->Ingest(0, collection_[0], 0);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.code(), StatusCode::kIoError);
}

// The CLSM path (CLSM-PP routes Ingest into Clsm::Insert) enforces the
// same cap/policy pair through its own pending-flush list.
TEST_F(BackpressureFaultTest, ClsmRejectThroughPpWrapper) {
  ThreadPool pool(1);
  PoolThrottle throttle(&pool);
  throttle.Park();

  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = IndexFamily::kClsm;
  spec.mode = StreamMode::kPP;
  spec.buffer_entries = 8;
  spec.async_ingest = true;
  spec.background_pool = &pool;
  spec.max_inflight_seals = 1;
  spec.backpressure_policy = BackpressurePolicy::kReject;
  auto stream = CreateStreamingIndex(spec, mgr_.get(), "clsm", nullptr,
                                     raw_.get())
                    .TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());

  size_t admitted = 0;
  Status first_reject;
  for (size_t i = 0; i < collection_.size(); ++i) {
    const Status st =
        stream->Ingest(i, collection_[i], static_cast<int64_t>(i));
    if (!st.ok()) {
      first_reject = st;
      break;
    }
    ++admitted;
  }
  EXPECT_EQ(admitted, 15u);  // same arithmetic as the TP case
  ASSERT_FALSE(first_reject.ok());
  EXPECT_EQ(first_reject.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(stream->SnapshotStats().ingest_rejects, 1u);

  throttle.Release();
  ASSERT_TRUE(stream->FlushAll().ok());
  EXPECT_EQ(stream->num_entries(), admitted);
}

// Sharded: the cap is per shard — each shard's flusher is an independent
// strand — so K shards bound K × cap seals total, every shard
// individually at or under the cap, and the aggregate snapshot sums the
// rejects.
TEST_F(BackpressureFaultTest, ShardedBackpressureBoundsEveryShard) {
  ThreadPool pool(2);
  PoolThrottle throttle(&pool);
  throttle.Park();

  ShardedStreamingIndex::Options opts;
  opts.spec = TpSpec(1, BackpressurePolicy::kReject, &pool);
  opts.num_shards = 2;
  auto sharded =
      ShardedStreamingIndex::Create(mgr_.get(), "shbp", opts).TakeValue();

  size_t admitted = 0;
  size_t rejects = 0;
  for (size_t i = 0; i < collection_.size(); ++i) {
    const Status st =
        sharded->Ingest(i, collection_[i], static_cast<int64_t>(i));
    if (st.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
      ++rejects;
    }
    for (size_t s = 0; s < sharded->num_shards(); ++s) {
      EXPECT_LE(sharded->ShardStats(s).seals_inflight, 1u);
    }
  }
  EXPECT_GT(rejects, 0u);
  EXPECT_EQ(sharded->SnapshotStats().ingest_rejects, rejects);

  throttle.Release();
  ASSERT_TRUE(sharded->FlushAll().ok());
  EXPECT_EQ(sharded->num_entries(), admitted);
  // Post-drain the stream accepts again and answers over what it holds.
  ASSERT_TRUE(sharded->Ingest(collection_.size(), collection_[0], 9999).ok());
  ASSERT_TRUE(sharded->FlushAll().ok());
  EXPECT_EQ(sharded->num_entries(), admitted + 1);
}

// Service-level: DropIndex issued while an IngestBatch is stalled on the
// cap tombstones the name immediately (the stalled batch holds only the
// handle's op_mutex, never the registry lock), queues behind the batch on
// that op_mutex, and tears the stream down cleanly once the flusher
// drains — no hang, no crash, name released.
TEST_F(BackpressureFaultTest, DropIndexDuringStalledIngestTearsDownCleanly) {
  const std::string root =
      std::filesystem::temp_directory_path().string() + "/bp_drop_svc";
  std::filesystem::remove_all(root);
  auto service = api::Service::Create(root).TakeValue();

  ThreadPool pool(1);
  PoolThrottle throttle(&pool);
  throttle.Park();

  VariantSpec spec = TpSpec(1, BackpressurePolicy::kBlock, &pool);
  spec.num_shards = 2;
  ASSERT_TRUE(service->CreateStream("s", spec).ok());

  series::SeriesCollection batch(kLength);
  std::vector<int64_t> timestamps;
  for (size_t i = 0; i < 128; ++i) {
    batch.Append(collection_[i]);
    timestamps.push_back(static_cast<int64_t>(i));
  }
  Result<api::IngestBatchReport> ingest_result =
      Status::Internal("not run");
  std::thread producer([&] {
    ingest_result = service->IngestBatch("s", batch, timestamps);
  });
  StreamingIndex* live = service->stream_index("s");
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(WaitFor([&] {
    return live->SnapshotStats().ingest_stalls >= 1;
  }));

  std::thread dropper([&] {
    const Result<api::DropIndexResponse> dropped = service->DropIndex("s");
    ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
    EXPECT_TRUE(dropped.value().dropped);
    EXPECT_TRUE(dropped.value().streaming);
  });
  // Give the drop a moment to queue behind the stalled batch, then let
  // the flusher run: the batch completes, the drop drains and deletes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  throttle.Release();
  producer.join();
  dropper.join();

  ASSERT_TRUE(ingest_result.ok()) << ingest_result.status().ToString();
  EXPECT_GE(ingest_result.value().ingest_stalls, 1u);
  EXPECT_EQ(ingest_result.value().ingested, 128u);

  // Gone: the name resolves to nothing and is immediately reusable.
  EXPECT_EQ(service->IngestBatch("s", batch, timestamps).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(service->CreateStream("s", spec).ok());
  ASSERT_TRUE(service->DropIndex("s").ok());
  std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------- HTTP

/// Minimal blocking loopback client (a compact cousin of the one in
/// http_e2e_test.cc — this suite only needs POST + status + body).
class MiniClient {
 public:
  explicit MiniClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~MiniClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  /// One-shot POST; returns {status, body} or {-1, ...} on socket failure.
  std::pair<int, std::string> Post(const std::string& target,
                                   const std::string& body) {
    std::string request = "POST " + target +
                          " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                          "Content-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return {-1, "send failed"};
      }
      sent += static_cast<size_t>(n);
    }
    std::string buffer;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // orderly close (Connection: close) or error
    }
    const size_t sp = buffer.find(' ');
    if (sp == std::string::npos) return {-1, buffer};
    const int status = std::atoi(buffer.c_str() + sp + 1);
    const size_t header_end = buffer.find("\r\n\r\n");
    return {status, header_end == std::string::npos
                        ? std::string()
                        : buffer.substr(header_end + 4)};
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

// Acceptance pin: kReject crosses the wire as a structured
// resource_exhausted ApiError (HTTP 429) and the stream keeps working
// afterwards — ingest state is not corrupted by the refused batch. The
// throttle here is the real shared pool (wire-created streams use it),
// parked from within the process.
TEST_F(BackpressureFaultTest, RejectModeSurfacesStructuredApiErrorOverHttp) {
  const std::string root =
      std::filesystem::temp_directory_path().string() + "/bp_http_svc";
  std::filesystem::remove_all(root);
  auto service = api::Service::Create(root).TakeValue();
  HttpServerOptions options;
  options.port = 0;
  options.threads = 2;
  auto server = HttpServer::Start(service.get(), options).TakeValue();

  PoolThrottle throttle(SharedBackgroundPool());
  throttle.Park();

  // create_stream with the new wire knobs, sharded × async.
  api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = TpSpec(1, BackpressurePolicy::kReject,
                       /*background=*/nullptr);  // wire => shared pool
  create.spec.num_shards = 2;
  {
    MiniClient client(server->port());
    ASSERT_TRUE(client.connected());
    auto [status, body] =
        client.Post("/api/v1/create_stream", create.ToJsonString());
    ASSERT_EQ(status, 200) << body;
    EXPECT_NE(body.find("CTree-TP-S2-async"), std::string::npos) << body;
  }

  // Batches against the parked pool: while a shard still has headroom
  // the service reports truthful partial progress (200, ingested < batch,
  // the reject visible in ingest_rejects — a client must never be told to
  // re-send an already-admitted prefix); once every shard is saturated,
  // the very first series rejects and the structured 429 surfaces. Each
  // partial round admits at least one series into bounded headroom, so
  // the loop reaches the 429 deterministically.
  api::IngestBatchRequest ingest;
  ingest.stream = "live";
  ingest.batch = series::SeriesCollection(kLength);
  for (size_t i = 0; i < 64; ++i) {
    ingest.batch.Append(collection_[i]);
    ingest.timestamps.push_back(static_cast<int64_t>(i));
  }
  bool saw_partial = false;
  bool saw_reject = false;
  for (int attempt = 0; attempt < 32 && !saw_reject; ++attempt) {
    MiniClient client(server->port());
    ASSERT_TRUE(client.connected());
    auto [status, body] =
        client.Post("/api/v1/ingest_batch", ingest.ToJsonString());
    if (status == 200) {
      auto report =
          api::IngestBatchReport::FromJson(JsonParse(body).TakeValue());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      // Progress was made but the batch was cut short at the cap.
      EXPECT_LT(report.value().ingested, 64u) << body;
      EXPECT_GE(report.value().ingest_rejects, 1u) << body;
      saw_partial = true;
      continue;
    }
    ASSERT_EQ(status, 429) << body;
    EXPECT_NE(body.find("\"code\":\"resource_exhausted\""),
              std::string::npos)
        << body;
    auto parsed = api::ApiError::FromJson(JsonParse(body).TakeValue());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().http_status, 429);
    saw_reject = true;
  }
  EXPECT_TRUE(saw_partial);  // the truthful-prefix path was exercised
  ASSERT_TRUE(saw_reject);   // and the zero-progress 429 was reached

  // Un-park, drain, and ingest again: no corruption, and the drain report
  // carries the cumulative reject counter over the wire.
  throttle.Release();
  {
    MiniClient client(server->port());
    ASSERT_TRUE(client.connected());
    api::DrainStreamRequest drain;
    drain.stream = "live";
    auto [status, body] =
        client.Post("/api/v1/drain_stream", drain.ToJsonString());
    ASSERT_EQ(status, 200) << body;
    auto report =
        api::DrainStreamReport::FromJson(JsonParse(body).TakeValue());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(report.value().ingest_rejects, 1u);
    EXPECT_EQ(report.value().seals_inflight, 0u);
  }
  {
    // Small enough (one detach at most) that a live flusher can never be
    // at the cap mid-batch: must succeed outright.
    api::IngestBatchRequest after;
    after.stream = "live";
    after.batch = series::SeriesCollection(kLength);
    for (size_t i = 0; i < 12; ++i) {
      after.batch.Append(collection_[64 + i]);
      after.timestamps.push_back(static_cast<int64_t>(64 + i));
    }
    MiniClient client(server->port());
    ASSERT_TRUE(client.connected());
    auto [status, body] =
        client.Post("/api/v1/ingest_batch", after.ToJsonString());
    ASSERT_EQ(status, 200) << body;
    auto report =
        api::IngestBatchReport::FromJson(JsonParse(body).TakeValue());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().ingested, 12u);
  }

  server.reset();
  service.reset();
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace palm
}  // namespace coconut
