// The epoch-reclamation suite for the lock-free read path. Four layers:
// (1) Unit: EpochManager mechanics — retire/synchronize ordering, a
// parked reader pins its garbage, nested guards reclaim only after the
// outermost exit, and a many-thread pointer-churn loop gives TSan and
// ASan real teeth. (2) Index churn: readers hammer search + stats +
// partition listings while one thread ingests through seal/merge
// cascades and drains mid-stream; quiesced answers must match brute
// force. (3) Lifetime: a reader holding an EpochGuard across the
// index's destruction keeps dereferencing its snapshot — destruction
// must block in Synchronize until the reader exits (the
// reader-outlives-drop case). (4) The stats bugfix regression: with the
// background flusher parked on seal_test_hook and the producer blocked
// at the max_inflight_seals cap, every stats surface and search must
// still serve promptly from the published snapshot — none of them may
// touch the admission lock. Runs under TSan and ASan (detect_leaks=1)
// in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "palm/api.h"
#include "palm/factory.h"
#include "palm/query_cache.h"
#include "stream/epoch.h"
#include "stream/tp.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

// ------------------------------------------------------------ unit layer

/// Heap object whose deleter flips a flag, so tests can observe exactly
/// when the epoch manager runs the deferred free.
struct Tracked {
  explicit Tracked(std::atomic<bool>* freed) : freed_flag(freed) {}
  ~Tracked() { freed_flag->store(true, std::memory_order_release); }
  std::atomic<bool>* freed_flag;
};

TEST(EpochManagerTest, SynchronizeFreesRetiredGarbageWhenIdle) {
  auto& mgr = epoch::EpochManager::Global();
  std::atomic<bool> freed{false};
  mgr.Retire(new Tracked(&freed));
  mgr.Synchronize();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
  EXPECT_EQ(mgr.pending_retired(), 0u);
}

TEST(EpochManagerTest, NullRetireIsANoOp) {
  auto& mgr = epoch::EpochManager::Global();
  const size_t before = mgr.pending_retired();
  mgr.Retire(static_cast<const Tracked*>(nullptr));
  EXPECT_EQ(mgr.pending_retired(), before);
}

TEST(EpochManagerTest, RetireAdvancesTheGlobalEpoch) {
  auto& mgr = epoch::EpochManager::Global();
  const uint64_t before = mgr.current_epoch();
  std::atomic<bool> freed{false};
  mgr.Retire(new Tracked(&freed));
  EXPECT_GT(mgr.current_epoch(), before);
  mgr.Synchronize();
}

TEST(EpochManagerTest, ActiveReaderPinsGarbageUntilExit) {
  auto& mgr = epoch::EpochManager::Global();
  std::atomic<bool> freed{false};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    epoch::EpochGuard guard;
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();

  // Retired while the reader is inside: the opportunistic collection in
  // Retire must not free it (the reader's slot epoch is older), no matter
  // how many later retires try.
  mgr.Retire(new Tracked(&freed));
  std::atomic<bool> freed2{false};
  mgr.Retire(new Tracked(&freed2));
  EXPECT_FALSE(freed.load(std::memory_order_acquire));
  EXPECT_GE(mgr.pending_retired(), 2u);

  release.store(true, std::memory_order_release);
  reader.join();
  mgr.Synchronize();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
  EXPECT_TRUE(freed2.load(std::memory_order_acquire));
  EXPECT_EQ(mgr.pending_retired(), 0u);
}

TEST(EpochManagerTest, SynchronizeBlocksUntilReaderExits) {
  auto& mgr = epoch::EpochManager::Global();
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> synced{false};

  std::thread reader([&] {
    // Nested guards: only the outermost exit may unpin the slot.
    epoch::EpochGuard outer;
    {
      epoch::EpochGuard inner;
      entered.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    // Inner guard destroyed; the outer still pins this thread's epoch, so
    // Synchronize stays blocked a little longer.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();

  std::atomic<bool> freed{false};
  mgr.Retire(new Tracked(&freed));
  std::thread syncer([&] {
    mgr.Synchronize();
    synced.store(true, std::memory_order_release);
  });

  // With the reader parked inside its guard, Synchronize must not return.
  // (Timing-safe in the failure direction: a correct implementation can
  // never flip `synced` here; a broken one will, deterministically.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(synced.load(std::memory_order_acquire));
  EXPECT_FALSE(freed.load(std::memory_order_acquire));

  release.store(true, std::memory_order_release);
  reader.join();
  syncer.join();
  EXPECT_TRUE(synced.load(std::memory_order_acquire));
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(EpochManagerTest, ConcurrentPointerChurnNeverServesFreedMemory) {
  // The distilled shape of the index read path: a writer republishes an
  // atomic pointer and retires the predecessor; readers load it under a
  // guard and verify the pointee. Any reclamation bug is a use-after-free
  // ASan catches and a data race TSan catches.
  struct Node {
    explicit Node(uint64_t v) : value(v), check(~v) {}
    uint64_t value;
    uint64_t check;
  };
  auto& mgr = epoch::EpochManager::Global();
  std::atomic<const Node*> published{new Node(0)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        epoch::EpochGuard guard;
        const Node* node = published.load(std::memory_order_acquire);
        // The pointee must be intact for as long as the guard is held.
        EXPECT_EQ(node->check, ~node->value);
      }
    });
  }

  for (uint64_t v = 1; v <= 2000; ++v) {
    const Node* old = published.exchange(new Node(v),
                                         std::memory_order_acq_rel);
    mgr.Retire(old);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  mgr.Retire(published.exchange(nullptr, std::memory_order_acq_rel));
  mgr.Synchronize();
  EXPECT_EQ(mgr.pending_retired(), 0u);
}

// ----------------------------------------------------------- churn layer

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

class EpochChurnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("epoch_churn");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(600, 64, 977);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  /// Readers race a full ingest → seal → merge cascade with periodic
  /// mid-stream drains; after quiescing, exact answers must equal brute
  /// force and the epoch manager must have nothing left to free.
  void Churn(palm::VariantSpec spec, const std::string& name) {
    ThreadPool background(2);
    spec.async_ingest = true;
    spec.background_pool = &background;
    auto stream = palm::CreateStreamingIndex(spec, mgr_.get(), name,
                                             nullptr, raw_.get())
                      .TakeValue();
    ASSERT_NE(stream, nullptr);
    ASSERT_TRUE(stream->ConcurrentReadsSafe());
    auto* tp = dynamic_cast<TemporalPartitioningIndex*>(stream.get());

    std::atomic<bool> stop{false};
    std::atomic<size_t> acknowledged{0};

    // Fixed probes: over a grow-only index the exact nearest distance for
    // a fixed query is non-increasing. A reader that ever saw a worse
    // answer than before read a torn or reclaimed snapshot.
    std::vector<std::vector<float>> probes;
    for (size_t i = 0; i < 3; ++i) {
      probes.push_back(
          testutil::NoisyCopy(collection_, 200 * i + 7, 0.4, 500 + i));
    }

    auto querier = [&](uint64_t seed) {
      Rng rng(seed);
      std::vector<double> best(probes.size(),
                               std::numeric_limits<double>::infinity());
      do {
        for (size_t q = 0; q < probes.size(); ++q) {
          core::QueryCounters counters;
          const bool exact = rng.NextBounded(2) == 0;
          auto result =
              exact ? stream->ExactSearch(probes[q], {}, &counters)
                    : stream->ApproxSearch(probes[q], {}, &counters);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          if (exact && result.value().found) {
            EXPECT_LE(result.value().distance_sq, best[q] + 1e-6);
            best[q] = std::min(best[q], result.value().distance_sq);
          }
        }
      } while (!stop.load(std::memory_order_acquire));
    };

    auto stats_reader = [&] {
      uint64_t last_entries = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const StreamingStats stats = stream->SnapshotStats();
        EXPECT_GE(stats.entries, last_entries);
        last_entries = stats.entries;
        EXPECT_GE(stats.entries, stats.buffered);
        (void)stream->num_entries();
        (void)stream->num_partitions();
        (void)stream->index_bytes();
        if (tp != nullptr) {
          // Partition listings are epoch-guarded snapshot reads too; the
          // listed totals must be internally consistent mid-cascade.
          uint64_t sealed = 0;
          for (const auto& part : tp->SnapshotPartitions()) {
            sealed += part.entries;
            EXPECT_LE(part.t_min, part.t_max);
          }
          EXPECT_LE(sealed, acknowledged.load(std::memory_order_acquire));
        }
        std::this_thread::yield();
      }
    };

    std::thread q1(querier, 9001);
    std::thread q2(querier, 9002);
    std::thread s1(stats_reader);

    // Ingest with drains mid-stream: FlushAll's unconditional detach and
    // drain barrier republishes snapshots while readers are mid-query —
    // exactly the writer edge the epoch scheme must make safe.
    for (size_t i = 0; i < collection_.size(); ++i) {
      ASSERT_TRUE(raw_->Append(collection_[i]).ok());
      ASSERT_TRUE(
          stream->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
      acknowledged.store(i + 1, std::memory_order_release);
      if ((i + 1) % 150 == 0) {
        ASSERT_TRUE(stream->FlushAll().ok());
      }
    }
    ASSERT_TRUE(stream->FlushAll().ok());
    stop.store(true, std::memory_order_release);
    q1.join();
    q2.join();
    s1.join();

    // Quiesced exactness against brute force.
    for (size_t q = 0; q < probes.size(); ++q) {
      core::QueryCounters counters;
      auto result = stream->ExactSearch(probes[q], {}, &counters);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(result.value().found);
      const auto truth = testutil::BruteForceNearest(collection_, probes[q]);
      EXPECT_EQ(result.value().series_id, truth.index);
      EXPECT_NEAR(result.value().distance_sq, truth.distance_sq, 1e-3);
    }
    const StreamingStats final_stats = stream->SnapshotStats();
    EXPECT_EQ(final_stats.entries, collection_.size());
    EXPECT_EQ(final_stats.buffered, 0u);
    EXPECT_EQ(final_stats.pending_tasks, 0u);

    // Teardown synchronizes: nothing retired may outlive the index.
    stream.reset();
    EXPECT_EQ(epoch::EpochManager::Global().pending_retired(), 0u);
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
};

TEST_F(EpochChurnTest, TpReadersRaceSealsAndDrains) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.mode = palm::StreamMode::kTP;
  spec.buffer_entries = 48;
  Churn(spec, "tp_churn");
}

TEST_F(EpochChurnTest, BtpReadersRaceMergeCascades) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kClsm;
  spec.mode = palm::StreamMode::kBTP;
  spec.buffer_entries = 48;
  spec.btp_merge_k = 2;
  Churn(spec, "btp_churn");
}

TEST_F(EpochChurnTest, ClsmReadersRaceFlushesAndMerges) {
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kClsm;
  spec.mode = palm::StreamMode::kPP;
  spec.buffer_entries = 48;
  Churn(spec, "clsm_churn");
}

// -------------------------------------------------------- lifetime layer

// The reader-outlives-drop case: a reader inside its EpochGuard keeps
// dereferencing a loaded snapshot while another thread destroys the
// index. The destructor's Synchronize must block until the reader exits;
// the snapshot must stay intact (ASan would flag any early free) and the
// destruction must complete afterwards.
TEST_F(EpochChurnTest, ReaderHoldingGuardOutlivesIndexDestruction) {
  ThreadPool background(2);
  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.mode = palm::StreamMode::kTP;
  spec.buffer_entries = 32;
  spec.async_ingest = true;
  spec.background_pool = &background;
  auto stream = palm::CreateStreamingIndex(spec, mgr_.get(), "drop_race",
                                           nullptr, raw_.get())
                    .TakeValue();
  auto* tp = dynamic_cast<TemporalPartitioningIndex*>(stream.get());
  ASSERT_NE(tp, nullptr);

  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(raw_->Append(collection_[i]).ok());
    ASSERT_TRUE(
        stream->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(stream->FlushAll().ok());

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> destroyed{false};
  std::thread reader([&] {
    epoch::EpochGuard guard;
    const auto* snap = tp->snapshot_for_testing();
    const uint64_t sealed = snap->entries_sealed;
    const size_t parts = snap->partitions->size();
    EXPECT_EQ(sealed, 120u);
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      // Every iteration re-reads the snapshot the index is trying to
      // reclaim: freed-too-early is a deterministic ASan hit.
      EXPECT_EQ(snap->entries_sealed, sealed);
      EXPECT_EQ(snap->partitions->size(), parts);
      std::this_thread::yield();
    }
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread destroyer([&] {
    stream.reset();  // Drains the strand, retires the snapshot, syncs.
    destroyed.store(true, std::memory_order_release);
  });

  // Timing-safe in the failure direction: a correct destructor can never
  // finish while the reader is pinned inside its guard.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(destroyed.load(std::memory_order_acquire));

  release.store(true, std::memory_order_release);
  reader.join();
  destroyer.join();
  EXPECT_TRUE(destroyed.load(std::memory_order_acquire));
  EXPECT_EQ(epoch::EpochManager::Global().pending_retired(), 0u);
}

// ---------------------------------------------------- stats bugfix layer

// Regression for the read-side bugfix: SnapshotStats / SnapshotPartitions
// used to take the admission lock, so a parked flusher plus a producer
// blocked at the seal cap could stall every stats surface. They now serve
// from the published snapshot; with the flusher parked on seal_test_hook
// and Ingest blocked at max_inflight_seals, stats and searches must
// return promptly and reflect every acknowledged entry.
TEST_F(EpochChurnTest, StatsAndSearchServeWhileFlusherParkedAtCap) {
  ThreadPool background(2);
  std::mutex hook_mu;
  std::condition_variable hook_cv;
  bool parked = false;
  bool release_hook = false;

  palm::VariantSpec spec;
  spec.sax = TestSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.mode = palm::StreamMode::kTP;
  spec.buffer_entries = 32;
  spec.async_ingest = true;
  spec.background_pool = &background;
  spec.max_inflight_seals = 1;  // kBlock (default): Ingest parks at cap.
  spec.seal_test_hook = [&] {
    std::unique_lock<std::mutex> lock(hook_mu);
    parked = true;
    hook_cv.notify_all();
    hook_cv.wait(lock, [&] { return release_hook; });
    return Status::OK();
  };
  auto stream = palm::CreateStreamingIndex(spec, mgr_.get(), "parked",
                                           nullptr, raw_.get())
                    .TakeValue();
  auto* tp = dynamic_cast<TemporalPartitioningIndex*>(stream.get());
  ASSERT_NE(tp, nullptr);

  constexpr size_t kTotal = 200;
  std::atomic<size_t> acknowledged{0};
  std::thread writer([&] {
    for (size_t i = 0; i < kTotal; ++i) {
      ASSERT_TRUE(raw_->Append(collection_[i]).ok());
      ASSERT_TRUE(
          stream->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
      acknowledged.store(i + 1, std::memory_order_release);
    }
  });

  // Wait until the first seal is parked inside the hook; soon after, the
  // writer fills the next buffer and blocks at the cap.
  {
    std::unique_lock<std::mutex> lock(hook_mu);
    hook_cv.wait(lock, [&] { return parked; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const size_t ack = acknowledged.load(std::memory_order_acquire);
  ASSERT_GT(ack, 0u);
  ASSERT_LT(ack, kTotal);  // Producer is wedged behind the parked seal.

  // Every read surface answers now, from the snapshot, with the seal
  // still parked and the producer still blocked. (If any of them touched
  // the admission lock, correctness here degrades to "whenever the hook
  // lets go" — and the final assertions below would still hold, so this
  // mid-stall section is the regression's teeth.)
  const StreamingStats stalled = stream->SnapshotStats();
  EXPECT_GE(stalled.entries, ack > 1 ? ack - 1 : 0u);
  EXPECT_GE(stalled.seals_inflight, 1u);
  (void)tp->SnapshotPartitions();
  (void)stream->num_entries();
  (void)stream->num_partitions();
  (void)stream->index_bytes();
  (void)stream->describe();

  // Acknowledged entries are queryable mid-stall: the exact self-query
  // of an admitted series must come back at distance ~0 without waiting
  // for the flusher.
  const size_t probe = ack - 1;
  core::QueryCounters counters;
  auto hit = stream->ExactSearch(collection_[probe], {}, &counters);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_TRUE(hit.value().found);
  EXPECT_EQ(hit.value().series_id, probe);
  EXPECT_NEAR(hit.value().distance_sq, 0.0, 1e-6);

  {
    std::lock_guard<std::mutex> lock(hook_mu);
    release_hook = true;
  }
  hook_cv.notify_all();
  writer.join();
  ASSERT_TRUE(stream->FlushAll().ok());

  const StreamingStats final_stats = stream->SnapshotStats();
  EXPECT_EQ(final_stats.entries, kTotal);
  EXPECT_EQ(final_stats.buffered, 0u);
  EXPECT_EQ(final_stats.seals_inflight, 0u);
  EXPECT_GT(final_stats.seals_completed, 0u);
  // The producer really did hit the cap: the block left a stall sample.
  EXPECT_FALSE(final_stats.stall_samples.empty());
}

}  // namespace
}  // namespace stream

// --------------------------------------------------------- service layer

// DropIndex races live lock-free queries and listings: queriers and a
// ListIndexes hammer run against a drop of the same stream. Every query
// must come back OK or NotFound (never a crash, never a freed snapshot),
// the drop itself must succeed mid-traffic, and afterwards every querier
// observes NotFound. Exercises the Synchronize barrier DropIndex runs
// between quiescing the handle and tearing it down.
namespace palm {
namespace api {
namespace {

TEST(EpochDropRaceTest, DropIndexWhileLockFreeQueriesAndListingsRace) {
  const std::string root =
      std::filesystem::temp_directory_path().string() + "/epoch_drop_race";
  std::filesystem::remove_all(root);
  {
    std::unique_ptr<Service> service = Service::Create(root).TakeValue();
    service->EnableQueryCache(QueryCacheOptions{});

    constexpr size_t kLength = 32;
    CreateStreamRequest create;
    create.stream = "live";
    create.spec.sax = series::SaxConfig{.series_length = kLength,
                                        .num_segments = 8,
                                        .bits_per_segment = 8};
    create.spec.family = IndexFamily::kCTree;
    create.spec.mode = StreamMode::kTP;
    create.spec.buffer_entries = 24;
    create.spec.async_ingest = true;  // Lock-free read path engaged.
    ASSERT_TRUE(service->CreateStream(create).ok());

    const series::SeriesCollection data =
        testutil::RandomWalkCollection(120, kLength, 51);
    IngestBatchRequest ingest;
    ingest.stream = "live";
    ingest.batch = data;
    for (size_t i = 0; i < data.size(); ++i) {
      ingest.timestamps.push_back(static_cast<int64_t>(i));
    }
    ASSERT_TRUE(service->IngestBatch(ingest).ok());

    std::atomic<bool> stop{false};
    std::atomic<size_t> not_found_seen{0};
    std::vector<std::thread> queriers;
    for (size_t t = 0; t < 2; ++t) {
      queriers.emplace_back([&, t] {
        bool saw_not_found = false;
        Rng rng(600 + t);
        while (!stop.load(std::memory_order_acquire) || !saw_not_found) {
          QueryRequest request;
          request.index = "live";
          request.query = testutil::NoisyCopy(
              data, rng.NextBounded(data.size()), 0.3, 700 + t);
          Result<QueryReport> r = service->Query(request);
          if (r.ok()) {
            EXPECT_TRUE(r.value().found);
          } else {
            ASSERT_EQ(r.status().code(), StatusCode::kNotFound)
                << r.status().ToString();
            if (!saw_not_found) {
              saw_not_found = true;
              not_found_seen.fetch_add(1, std::memory_order_acq_rel);
            }
          }
        }
      });
    }
    std::thread lister([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const auto& info : service->ListIndexes().indexes) {
          EXPECT_EQ(info.name, "live");
          EXPECT_TRUE(info.streaming);
        }
        std::this_thread::yield();
      }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    DropIndexRequest drop;
    drop.index = "live";
    Result<DropIndexResponse> dropped = service->DropIndex(drop);
    ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
    EXPECT_TRUE(dropped.value().dropped);

    stop.store(true, std::memory_order_release);
    for (std::thread& q : queriers) q.join();
    lister.join();
    // Post-drop, every querier observed the index gone.
    EXPECT_EQ(not_found_seen.load(std::memory_order_acquire), 2u);
    EXPECT_TRUE(service->ListIndexes().indexes.empty());
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace api
}  // namespace palm
}  // namespace coconut
