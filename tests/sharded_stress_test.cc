// Concurrency stress over the sharding layer: many threads query one
// ShardedIndex — directly and through Server::QueryBatch — while other
// threads read IoStats and buffer-pool accounting mid-flight. Results must
// stay exact throughout (each query re-verified against the brute-force
// oracle) and the whole file must be clean under ASan/UBSan and TSan (CI
// runs both). This is the test that pins the per-shard query serialization
// and the thread-safe accounting snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "palm/server.h"
#include "palm/sharded_index.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace {

series::SaxConfig StressSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

VariantSpec ShardedSpec(size_t num_shards) {
  VariantSpec spec;
  spec.sax = StressSax();
  spec.family = IndexFamily::kCTree;
  spec.num_shards = num_shards;
  spec.construction_threads = 2;  // Parallel sort + merge inside shards.
  spec.memory_budget_bytes = 64 << 10;
  return spec;
}

// Many threads hammer ExactSearch on one ShardedIndex while readers poll
// aggregate I/O and pool counters. Every answer must equal the oracle.
TEST(ShardedStressTest, ConcurrentExactSearchStaysExact) {
  auto mgr = storage::MakeTempStorage("sharded_stress").TakeValue();
  auto raw = core::RawSeriesStore::Create(mgr.get(), "raw", 64).TakeValue();
  auto collection = testutil::RandomWalkCollection(300, 64, 101);
  ASSERT_TRUE(testutil::FillRawStore(raw.get(), collection).ok());

  auto index =
      CreateStaticIndex(ShardedSpec(4), mgr.get(), "idx", nullptr, raw.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());
  auto* sharded = dynamic_cast<ShardedIndex*>(index.get());
  ASSERT_NE(sharded, nullptr);

  // Precompute queries and oracle answers on one thread.
  constexpr size_t kQueries = 12;
  std::vector<std::vector<float>> queries;
  std::vector<testutil::BruteForceResult> expected;
  for (size_t q = 0; q < kQueries; ++q) {
    queries.push_back(testutil::NoisyCopy(collection, (q * 37 + 5) % 300,
                                          q % 3 == 0 ? 2.0 : 0.5, 600 + q));
    auto oracle = testutil::BruteForceKnn(collection, queries.back(), 1);
    expected.push_back(oracle[0]);
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 16;
  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};

  // Accounting readers: aggregate snapshots are taken under the same
  // mutexes the I/O paths update, so polling mid-query is race-free.
  std::thread stats_reader([&] {
    uint64_t last_reads = 0;
    while (!done.load(std::memory_order_acquire)) {
      const storage::IoStats io = sharded->AggregateIoStats();
      EXPECT_GE(io.total_reads(), last_reads);  // Counters are monotone.
      last_reads = io.total_reads();
      uint64_t hits = 0;
      uint64_t misses = 0;
      sharded->PoolCounters(&hits, &misses);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t it = 0; it < kItersPerThread; ++it) {
        const size_t q = (t * kItersPerThread + it) % kQueries;
        core::QueryCounters counters;
        auto r = sharded->ExactSearch(queries[q], {}, &counters);
        if (!r.ok() || !r.value().found ||
            r.value().series_id != expected[q].index ||
            std::abs(r.value().distance_sq - expected[q].distance_sq) >
                1e-9) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_release);
  stats_reader.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // The run did real I/O and the counters saw it.
  EXPECT_GT(sharded->AggregateIoStats().total_ios(), 0u);
}

// Server::QueryBatch against sharded and unsharded indexes concurrently
// with accounting readers; every response must carry the oracle distance.
TEST(ShardedStressTest, QueryBatchOverShardedIndexUnderLoad) {
  const std::string root =
      storage::MakeTempStorage("sharded_stress_srv").TakeValue()->directory();
  auto server = Server::Create(root).TakeValue();

  auto collection = testutil::RandomWalkCollection(260, 64, 102);
  ASSERT_TRUE(server->RegisterDataset("data", collection, nullptr).ok());

  auto sharded_report = server->BuildIndex("shardy", ShardedSpec(4), "data");
  ASSERT_TRUE(sharded_report.ok()) << sharded_report.status().ToString();
  EXPECT_NE(sharded_report.value().find("\"shards\":4"), std::string::npos)
      << sharded_report.value();
  ASSERT_TRUE(server->BuildIndex("flat", ShardedSpec(1), "data").ok());

  // Queries alternate between the two indexes; QueryBatch serializes per
  // index while the sharded handle fans out internally.
  constexpr size_t kBatch = 32;
  std::vector<QueryRequest> requests;
  std::vector<double> oracle_distance;
  for (size_t i = 0; i < kBatch; ++i) {
    QueryRequest req;
    req.index = i % 2 == 0 ? "shardy" : "flat";
    req.query = testutil::NoisyCopy(collection, (i * 29 + 3) % 260,
                                    i % 4 == 0 ? 2.0 : 0.5, 700 + i);
    req.exact = true;
    requests.push_back(req);
    // The server z-normalizes a copy; NoisyCopy output is already
    // normalized, so the oracle sees the same query.
    oracle_distance.push_back(testutil::BruteForceKnn(
                                  collection, requests.back().query, 1)[0]
                                  .distance_sq);
  }

  std::atomic<bool> done{false};
  storage::StorageManager* shardy_storage = server->index_storage("shardy");
  ASSERT_NE(shardy_storage, nullptr);
  auto* sharded =
      dynamic_cast<ShardedIndex*>(server->static_index("shardy"));
  ASSERT_NE(sharded, nullptr);
  std::thread stats_reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)shardy_storage->SnapshotIoStats();
      (void)sharded->AggregateIoStats();
      std::this_thread::yield();
    }
  });

  std::vector<std::vector<Result<std::string>>> rounds;
  for (int round = 0; round < 3; ++round) {
    rounds.push_back(server->QueryBatch(requests, 4));
  }
  done.store(true, std::memory_order_release);
  stats_reader.join();

  for (const auto& results : rounds) {
    ASSERT_EQ(results.size(), requests.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      // The JSON reports sqrt(distance_sq); re-derive and compare.
      const std::string& json = results[i].value();
      const auto pos = json.find("\"distance\":");
      ASSERT_NE(pos, std::string::npos) << json;
      const double dist = std::stod(json.substr(pos + 11));
      EXPECT_NEAR(dist * dist, oracle_distance[i], 1e-6)
          << "request " << i << ": " << json;
    }
  }
}

}  // namespace
}  // namespace palm
}  // namespace coconut
