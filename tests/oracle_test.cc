// The oracle correctness harness: every palm::Factory static variant's
// exact search must match testutil::BruteForceKnn (linear scan over the raw
// collection) — unconstrained and under time windows, with serial and
// parallel construction sorts. This suite is the regression net every
// performance PR runs under: any change to the construction pipeline,
// storage layer or query path that alters exact results fails here.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "palm/factory.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace {

series::SaxConfig OracleSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

struct OracleCase {
  IndexFamily family;
  bool materialized;
  size_t construction_threads;
};

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  VariantSpec spec;
  spec.family = info.param.family;
  spec.materialized = info.param.materialized;
  std::string name = VariantName(spec);
  // Gtest parameter names must be alphanumeric.
  for (char& c : name) {
    if (c == '+' || c == '-') c = 'x';
  }
  return name + "_t" + std::to_string(info.param.construction_threads);
}

class OracleKnnTest : public ::testing::TestWithParam<OracleCase> {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("oracle_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  VariantSpec Spec() const {
    const OracleCase& c = GetParam();
    VariantSpec spec;
    spec.sax = OracleSax();
    spec.family = c.family;
    spec.materialized = c.materialized;
    spec.construction_threads = c.construction_threads;
    spec.buffer_entries = 128;
    // Small enough that the CTree construction sort spills runs, so the
    // external-sort path (serial or parallel) is actually exercised.
    spec.memory_budget_bytes = 64 << 10;
    return spec;
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
};

TEST_P(OracleKnnTest, ExactSearchMatchesBruteForceOracle) {
  auto collection = testutil::RandomWalkCollection(500, 64, 77);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  auto index =
      CreateStaticIndex(Spec(), mgr_.get(), "idx", nullptr, raw_.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());
  ASSERT_EQ(index->num_entries(), collection.size());

  for (int q = 0; q < 8; ++q) {
    auto query = testutil::NoisyCopy(collection, q * 61 % 500, 0.5, q);
    auto oracle = testutil::BruteForceKnn(collection, query, 1);
    ASSERT_EQ(oracle.size(), 1u);
    auto got = index->ExactSearch(query, {}, nullptr).TakeValue();
    ASSERT_TRUE(got.found) << index->describe();
    EXPECT_NEAR(got.distance_sq, oracle[0].distance_sq, 1e-6)
        << index->describe() << " query " << q;
    // The returned id must actually be at the reported distance.
    EXPECT_NEAR(series::EuclideanSquared(query, collection[got.series_id]),
                got.distance_sq, 1e-6)
        << index->describe();
  }
}

TEST_P(OracleKnnTest, WindowedExactSearchMatchesWindowedOracle) {
  auto collection = testutil::RandomWalkCollection(400, 64, 78);
  ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection).ok());

  auto index =
      CreateStaticIndex(Spec(), mgr_.get(), "idx", nullptr, raw_.get())
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    ASSERT_TRUE(
        index->Insert(i, collection[i], static_cast<int64_t>(i)).ok());
  }
  ASSERT_TRUE(index->Finalize().ok());

  const core::TimeWindow window{50, 250};
  core::SearchOptions options;
  options.window = window;
  for (int q = 0; q < 5; ++q) {
    auto query = testutil::NoisyCopy(collection, (q * 91 + 30) % 400, 0.5,
                                     100 + q);
    auto oracle = testutil::BruteForceKnn(collection, query, 1, window);
    ASSERT_EQ(oracle.size(), 1u);
    auto got = index->ExactSearch(query, options, nullptr).TakeValue();
    ASSERT_TRUE(got.found) << index->describe();
    EXPECT_GE(got.timestamp, window.begin);
    EXPECT_LE(got.timestamp, window.end);
    EXPECT_NEAR(got.distance_sq, oracle[0].distance_sq, 1e-6)
        << index->describe() << " query " << q;
  }
}

TEST_P(OracleKnnTest, OracleTopKIsSortedAndDeterministic) {
  auto collection = testutil::RandomWalkCollection(200, 64, 79);
  auto query = testutil::NoisyCopy(collection, 17, 0.4, 5);
  auto top = testutil::BruteForceKnn(collection, query, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i].distance_sq, top[i - 1].distance_sq);
  }
  // k past the collection size returns everything in the window.
  EXPECT_EQ(testutil::BruteForceKnn(collection, query, 500).size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStaticVariants, OracleKnnTest,
    ::testing::Values(
        OracleCase{IndexFamily::kAds, false, 1},
        OracleCase{IndexFamily::kAds, true, 1},
        OracleCase{IndexFamily::kCTree, false, 1},
        OracleCase{IndexFamily::kCTree, true, 1},
        OracleCase{IndexFamily::kCTree, false, 3},
        OracleCase{IndexFamily::kCTree, true, 3},
        OracleCase{IndexFamily::kClsm, false, 1},
        OracleCase{IndexFamily::kClsm, true, 1}),
    CaseName);

}  // namespace
}  // namespace palm
}  // namespace coconut
