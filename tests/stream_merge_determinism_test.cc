// BTP merge-cascade determinism: background merges must yield the same
// sealed partition set — count, names, size classes, time ranges and
// per-partition entry order — as the sequential path, for every merge_k
// and background thread count. This is what makes async ingestion safe to
// ship: the strand serializes seals and their cascades in ingestion
// order, so pool size can change scheduling but never structure.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "stream/btp.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

/// Everything that identifies a sealed partition set structurally.
struct Signature {
  std::vector<TemporalPartitioningIndex::PartitionInfo> partitions;
  std::vector<std::vector<core::IndexEntry>> entries;
  uint64_t merges = 0;
  int max_class = 0;
};

class StreamMergeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("stream_merge_determinism");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(1000, 64, 99);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  /// Builds a BTP over the whole collection and captures its signature.
  /// `threads` = 0 builds synchronously.
  Signature Build(int merge_k, size_t threads, const std::string& name) {
    std::optional<ThreadPool> pool;
    BoundedTemporalPartitioningIndex::BtpOptions opts;
    opts.sax = TestSax();
    opts.buffer_entries = 64;
    opts.merge_k = merge_k;
    if (threads > 0) {
      pool.emplace(threads);
      opts.background = &*pool;
    }
    Signature sig;
    auto btp = BoundedTemporalPartitioningIndex::Create(
                   mgr_.get(), name, opts, nullptr, raw_.get())
                   .TakeValue();
    for (size_t i = 0; i < collection_.size(); ++i) {
      EXPECT_TRUE(btp->Ingest(i, collection_[i], static_cast<int64_t>(i))
                      .ok());
    }
    EXPECT_TRUE(btp->FlushAll().ok());
    sig.partitions = btp->SnapshotPartitions();
    // Names embed the per-build prefix; strip it so ".p3"/".m1" suffixes
    // compare across builds.
    for (auto& info : sig.partitions) {
      info.name = info.name.substr(name.size());
    }
    for (size_t i = 0; i < sig.partitions.size(); ++i) {
      auto dump = btp->DumpPartitionEntries(i);
      EXPECT_TRUE(dump.ok());
      sig.entries.push_back(dump.TakeValue());
    }
    sig.merges = btp->merges_performed();
    sig.max_class = btp->max_size_class();
    return sig;
  }

  static void ExpectEqual(const Signature& got, const Signature& want,
                          const std::string& what) {
    EXPECT_EQ(got.merges, want.merges) << what;
    EXPECT_EQ(got.max_class, want.max_class) << what;
    ASSERT_EQ(got.partitions.size(), want.partitions.size()) << what;
    for (size_t i = 0; i < want.partitions.size(); ++i) {
      EXPECT_EQ(got.partitions[i].name, want.partitions[i].name)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].entries, want.partitions[i].entries)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].size_class, want.partitions[i].size_class)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].t_min, want.partitions[i].t_min)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].t_max, want.partitions[i].t_max)
          << what << " partition " << i;
      ASSERT_EQ(got.entries[i].size(), want.entries[i].size())
          << what << " partition " << i;
      for (size_t j = 0; j < want.entries[i].size(); ++j) {
        ASSERT_TRUE(got.entries[i][j] == want.entries[i][j])
            << what << " partition " << i << " entry " << j;
      }
    }
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
};

TEST_F(StreamMergeDeterminismTest, CascadeIdenticalAcrossThreadCounts) {
  int build_id = 0;
  for (int merge_k : {2, 3}) {
    const Signature baseline =
        Build(merge_k, /*threads=*/0,
              "base_k" + std::to_string(merge_k));
    // The cascade must actually have fired for the comparison to mean
    // anything.
    EXPECT_GT(baseline.merges, 0u);
    EXPECT_GT(baseline.max_class, 0);
    for (size_t threads : {1u, 2u, 4u}) {
      const Signature async_sig =
          Build(merge_k, threads, "async" + std::to_string(build_id++));
      ExpectEqual(async_sig, baseline,
                  "merge_k=" + std::to_string(merge_k) +
                      " threads=" + std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace stream
}  // namespace coconut
