// BTP merge-cascade determinism: background merges must yield the same
// sealed partition set — count, names, size classes, time ranges and
// per-partition entry order — as the sequential path, for every merge_k
// and background thread count. This is what makes async ingestion safe to
// ship: the strand serializes seals and their cascades in ingestion
// order, so pool size can change scheduling but never structure.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "palm/factory.h"
#include "palm/sharded_streaming_index.h"
#include "stream/btp.h"
#include "tests/test_util.h"

namespace coconut {
namespace stream {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

/// Everything that identifies a sealed partition set structurally.
struct Signature {
  std::vector<TemporalPartitioningIndex::PartitionInfo> partitions;
  std::vector<std::vector<core::IndexEntry>> entries;
  uint64_t merges = 0;
  int max_class = 0;
};

class StreamMergeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("stream_merge_determinism");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(1000, 64, 99);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  /// Builds a BTP over the whole collection and captures its signature.
  /// `threads` = 0 builds synchronously.
  Signature Build(int merge_k, size_t threads, const std::string& name) {
    std::optional<ThreadPool> pool;
    BoundedTemporalPartitioningIndex::BtpOptions opts;
    opts.sax = TestSax();
    opts.buffer_entries = 64;
    opts.merge_k = merge_k;
    if (threads > 0) {
      pool.emplace(threads);
      opts.background = &*pool;
    }
    Signature sig;
    auto btp = BoundedTemporalPartitioningIndex::Create(
                   mgr_.get(), name, opts, nullptr, raw_.get())
                   .TakeValue();
    for (size_t i = 0; i < collection_.size(); ++i) {
      EXPECT_TRUE(btp->Ingest(i, collection_[i], static_cast<int64_t>(i))
                      .ok());
    }
    EXPECT_TRUE(btp->FlushAll().ok());
    sig.partitions = btp->SnapshotPartitions();
    // Names embed the per-build prefix; strip it so ".p3"/".m1" suffixes
    // compare across builds.
    for (auto& info : sig.partitions) {
      info.name = info.name.substr(name.size());
    }
    for (size_t i = 0; i < sig.partitions.size(); ++i) {
      auto dump = btp->DumpPartitionEntries(i);
      EXPECT_TRUE(dump.ok());
      sig.entries.push_back(dump.TakeValue());
    }
    sig.merges = btp->merges_performed();
    sig.max_class = btp->max_size_class();
    return sig;
  }

  static void ExpectEqual(const Signature& got, const Signature& want,
                          const std::string& what) {
    EXPECT_EQ(got.merges, want.merges) << what;
    EXPECT_EQ(got.max_class, want.max_class) << what;
    ASSERT_EQ(got.partitions.size(), want.partitions.size()) << what;
    for (size_t i = 0; i < want.partitions.size(); ++i) {
      EXPECT_EQ(got.partitions[i].name, want.partitions[i].name)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].entries, want.partitions[i].entries)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].size_class, want.partitions[i].size_class)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].t_min, want.partitions[i].t_min)
          << what << " partition " << i;
      EXPECT_EQ(got.partitions[i].t_max, want.partitions[i].t_max)
          << what << " partition " << i;
      ASSERT_EQ(got.entries[i].size(), want.entries[i].size())
          << what << " partition " << i;
      for (size_t j = 0; j < want.entries[i].size(); ++j) {
        ASSERT_TRUE(got.entries[i][j] == want.entries[i][j])
            << what << " partition " << i << " entry " << j;
      }
    }
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
};

TEST_F(StreamMergeDeterminismTest, CascadeIdenticalAcrossThreadCounts) {
  int build_id = 0;
  for (int merge_k : {2, 3}) {
    const Signature baseline =
        Build(merge_k, /*threads=*/0,
              "base_k" + std::to_string(merge_k));
    // The cascade must actually have fired for the comparison to mean
    // anything.
    EXPECT_GT(baseline.merges, 0u);
    EXPECT_GT(baseline.max_class, 0);
    for (size_t threads : {1u, 2u, 4u}) {
      const Signature async_sig =
          Build(merge_k, threads, "async" + std::to_string(build_id++));
      ExpectEqual(async_sig, baseline,
                  "merge_k=" + std::to_string(merge_k) +
                      " threads=" + std::to_string(threads));
    }
  }
}

// Sharded: each shard's BTP cascade is identical across merge_k ×
// background-thread counts × shard counts. Which series a shard holds is
// decided by routing (values → key range) alone; the per-shard strand
// then replays the exact synchronous cascade over that subsequence, so
// pool size can change scheduling but never any shard's structure.
TEST_F(StreamMergeDeterminismTest, ShardedCascadePerShardDeterministic) {
  int build_id = 0;
  auto build_sharded = [&](int merge_k, size_t threads, size_t shards,
                           const std::string& name) {
    ThreadPool pool(threads);
    palm::VariantSpec spec;
    spec.sax = TestSax();
    spec.family = palm::IndexFamily::kClsm;
    spec.mode = palm::StreamMode::kBTP;
    spec.buffer_entries = 64;
    spec.btp_merge_k = merge_k;
    spec.async_ingest = true;
    spec.background_pool = &pool;
    palm::ShardedStreamingIndex::Options opts;
    opts.spec = spec;
    opts.num_shards = shards;
    std::vector<Signature> sigs(shards);
    auto sharded =
        palm::ShardedStreamingIndex::Create(mgr_.get(), name, opts)
            .TakeValue();
    for (size_t i = 0; i < collection_.size(); ++i) {
      EXPECT_TRUE(
          sharded->Ingest(i, collection_[i], static_cast<int64_t>(i)).ok());
    }
    EXPECT_TRUE(sharded->FlushAll().ok());
    for (size_t s = 0; s < shards; ++s) {
      auto* btp = dynamic_cast<BoundedTemporalPartitioningIndex*>(
          sharded->shard(s));
      EXPECT_NE(btp, nullptr);
      if (btp == nullptr) continue;
      Signature& sig = sigs[s];
      sig.partitions = btp->SnapshotPartitions();
      for (auto& info : sig.partitions) {
        // Strip the per-build shard prefix ("<name>/stream" differs per
        // build); the ".p<i>"/".m<i>" structural suffix compares.
        info.name = info.name.substr(info.name.find_last_of('.'));
      }
      for (size_t p = 0; p < sig.partitions.size(); ++p) {
        auto dump = btp->DumpPartitionEntries(p);
        EXPECT_TRUE(dump.ok());
        sig.entries.push_back(dump.TakeValue());
      }
      sig.merges = btp->merges_performed();
      sig.max_class = btp->max_size_class();
    }
    return sigs;
  };

  for (size_t shards : {2u, 3u}) {
    for (int merge_k : {2, 3}) {
      const std::vector<Signature> baseline = build_sharded(
          merge_k, /*threads=*/1, shards,
          "shbase" + std::to_string(build_id++));
      // At least one shard's cascade must actually have fired.
      uint64_t total_merges = 0;
      for (const Signature& sig : baseline) total_merges += sig.merges;
      EXPECT_GT(total_merges, 0u);
      for (size_t threads : {2u, 4u}) {
        const std::vector<Signature> got = build_sharded(
            merge_k, threads, shards, "shasync" + std::to_string(build_id++));
        ASSERT_EQ(got.size(), baseline.size());
        for (size_t s = 0; s < shards; ++s) {
          ExpectEqual(got[s], baseline[s],
                      "shards=" + std::to_string(shards) +
                          " merge_k=" + std::to_string(merge_k) +
                          " threads=" + std::to_string(threads) +
                          " shard=" + std::to_string(s));
        }
      }
    }
  }
}

}  // namespace
}  // namespace stream
}  // namespace coconut
