#include <gtest/gtest.h>

#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = MakeTempStorage("storage_test");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    mgr_ = r.TakeValue();
  }

  void TearDown() override {
    if (mgr_) { ASSERT_TRUE(mgr_->Clear().ok()); }
  }

  std::unique_ptr<StorageManager> mgr_;
};

TEST_F(StorageTest, CreateWriteReadPage) {
  auto fr = mgr_->CreateFile("a");
  ASSERT_TRUE(fr.ok());
  auto file = fr.TakeValue();

  Page out;
  std::memcpy(out.data(), "hello", 5);
  ASSERT_TRUE(file->WritePage(0, out).ok());
  EXPECT_EQ(file->size_bytes(), kPageSize);

  Page in;
  ASSERT_TRUE(file->ReadPage(0, &in).ok());
  EXPECT_EQ(std::memcmp(in.data(), "hello", 5), 0);
}

TEST_F(StorageTest, ReadPastEofFails) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  Status st = file->ReadPage(0, &p);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, AppendAndReadAt) {
  auto file = mgr_->CreateFile("a").TakeValue();
  const std::string data = "0123456789";
  ASSERT_TRUE(file->Append(data.data(), data.size()).ok());
  ASSERT_TRUE(file->Append(data.data(), data.size()).ok());
  EXPECT_EQ(file->size_bytes(), 20u);

  char buf[10];
  ASSERT_TRUE(file->ReadAt(5, buf, 10).ok());
  EXPECT_EQ(std::memcmp(buf, "5678901234", 10), 0);
}

TEST_F(StorageTest, SequentialVsRandomClassification) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  // Pages 0,1,2 in order: first write starts at offset 0 == expected 0,
  // so all three are sequential.
  ASSERT_TRUE(file->WritePage(0, p).ok());
  ASSERT_TRUE(file->WritePage(1, p).ok());
  ASSERT_TRUE(file->WritePage(2, p).ok());
  EXPECT_EQ(mgr_->io_stats()->sequential_writes, 3u);
  EXPECT_EQ(mgr_->io_stats()->random_writes, 0u);

  // Jump back: random.
  ASSERT_TRUE(file->WritePage(0, p).ok());
  EXPECT_EQ(mgr_->io_stats()->random_writes, 1u);

  // Reads: 0 then 1 sequential, then 0 again random.
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  ASSERT_TRUE(file->ReadPage(1, &p).ok());
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  EXPECT_EQ(mgr_->io_stats()->sequential_reads, 2u);
  EXPECT_EQ(mgr_->io_stats()->random_reads, 1u);
}

TEST_F(StorageTest, IoStatsSinceSnapshot) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  ASSERT_TRUE(file->WritePage(0, p).ok());
  IoStats before = *mgr_->io_stats();
  ASSERT_TRUE(file->WritePage(1, p).ok());
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  IoStats delta = mgr_->io_stats()->Since(before);
  EXPECT_EQ(delta.total_writes(), 1u);
  EXPECT_EQ(delta.total_reads(), 1u);
}

TEST_F(StorageTest, OpenExistingFilePreservesContent) {
  {
    auto file = mgr_->CreateFile("persist").TakeValue();
    ASSERT_TRUE(file->Append("abc", 3).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  auto reopened = mgr_->OpenFile("persist").TakeValue();
  EXPECT_EQ(reopened->size_bytes(), 3u);
  char buf[3];
  ASSERT_TRUE(reopened->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
}

TEST_F(StorageTest, RemoveFileAndExists) {
  { auto f = mgr_->CreateFile("gone").TakeValue(); }
  EXPECT_TRUE(mgr_->Exists("gone"));
  ASSERT_TRUE(mgr_->RemoveFile("gone").ok());
  EXPECT_FALSE(mgr_->Exists("gone"));
  EXPECT_FALSE(mgr_->RemoveFile("gone").ok());
}

TEST_F(StorageTest, TotalBytesOnDisk) {
  auto a = mgr_->CreateFile("a").TakeValue();
  auto b = mgr_->CreateFile("b").TakeValue();
  Page p;
  ASSERT_TRUE(a->WritePage(0, p).ok());
  ASSERT_TRUE(b->WritePage(0, p).ok());
  ASSERT_TRUE(b->WritePage(1, p).ok());
  EXPECT_EQ(mgr_->TotalBytesOnDisk(), 3 * kPageSize);
}

TEST_F(StorageTest, AccessTrackerRecordsOnlyWhenEnabled) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  ASSERT_TRUE(file->WritePage(0, p).ok());
  EXPECT_TRUE(mgr_->tracker()->events().empty());

  mgr_->tracker()->Enable();
  ASSERT_TRUE(file->WritePage(1, p).ok());
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  mgr_->tracker()->Disable();
  ASSERT_TRUE(file->WritePage(2, p).ok());

  const auto& ev = mgr_->tracker()->events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_TRUE(ev[0].is_write);
  EXPECT_EQ(ev[0].page_no, 1u);
  EXPECT_FALSE(ev[1].is_write);
  EXPECT_EQ(ev[1].page_no, 0u);
  EXPECT_LT(ev[0].sequence, ev[1].sequence);
}

// ----------------------------------------------------- durability primitives
// The write-ahead log is built on exactly three promises from this layer:
// Truncate is exact (cut or zero-extend), RenameFile atomically replaces
// the target and syncs the directory, and FsyncDir makes created names
// durable. Pin each one.

TEST_F(StorageTest, TruncateCutsExactlyAndZeroExtends) {
  auto file = mgr_->CreateFile("t").TakeValue();
  ASSERT_TRUE(file->Append("0123456789", 10).ok());

  ASSERT_TRUE(file->Truncate(4).ok());
  EXPECT_EQ(file->size_bytes(), 4u);
  char buf[4];
  ASSERT_TRUE(file->ReadAt(0, buf, 4).ok());
  EXPECT_EQ(std::memcmp(buf, "0123", 4), 0);
  EXPECT_EQ(file->ReadAt(2, buf, 4).code(), StatusCode::kOutOfRange)
      << "bytes past the truncation point must be unreadable";

  // Extending re-adds the range as zeros, not stale bytes.
  ASSERT_TRUE(file->Truncate(8).ok());
  char ext[8];
  ASSERT_TRUE(file->ReadAt(0, ext, 8).ok());
  EXPECT_EQ(std::memcmp(ext, "0123\0\0\0\0", 8), 0);

  // Appends resume at the truncated size, not the old EOF.
  ASSERT_TRUE(file->Append("ab", 2).ok());
  EXPECT_EQ(file->size_bytes(), 10u);
  char tail[2];
  ASSERT_TRUE(file->ReadAt(8, tail, 2).ok());
  EXPECT_EQ(std::memcmp(tail, "ab", 2), 0);
}

TEST_F(StorageTest, TruncateToZeroThenReopen) {
  {
    auto file = mgr_->CreateFile("t").TakeValue();
    ASSERT_TRUE(file->Append("payload", 7).ok());
    ASSERT_TRUE(file->Truncate(0).ok());
    EXPECT_EQ(file->size_bytes(), 0u);
    ASSERT_TRUE(file->Sync().ok());
  }
  auto reopened = mgr_->OpenFile("t").TakeValue();
  EXPECT_EQ(reopened->size_bytes(), 0u);
}

TEST_F(StorageTest, RenameFileReplacesTargetAtomically) {
  {
    auto next = mgr_->CreateFile("wal.next").TakeValue();
    ASSERT_TRUE(next->Append("new", 3).ok());
    ASSERT_TRUE(next->Sync().ok());
    auto old = mgr_->CreateFile("wal").TakeValue();
    ASSERT_TRUE(old->Append("old-old", 7).ok());
    ASSERT_TRUE(old->Sync().ok());
  }

  ASSERT_TRUE(mgr_->RenameFile("wal.next", "wal").ok());
  EXPECT_FALSE(mgr_->Exists("wal.next"));
  ASSERT_TRUE(mgr_->Exists("wal"));
  auto swapped = mgr_->OpenFile("wal").TakeValue();
  EXPECT_EQ(swapped->size_bytes(), 3u);
  char buf[3];
  ASSERT_TRUE(swapped->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::memcmp(buf, "new", 3), 0);
}

TEST_F(StorageTest, RenameFileMissingSourceFails) {
  EXPECT_EQ(mgr_->RenameFile("nope", "wal").code(), StatusCode::kIoError);
  EXPECT_FALSE(mgr_->Exists("wal"));
}

TEST_F(StorageTest, FsyncDirAndSyncDir) {
  { auto f = mgr_->CreateFile("a").TakeValue(); }
  EXPECT_TRUE(FsyncDir(mgr_->directory()).ok());
  EXPECT_TRUE(mgr_->SyncDir().ok());
  EXPECT_EQ(FsyncDir(mgr_->directory() + "/definitely-missing").code(),
            StatusCode::kIoError);
}

TEST_F(StorageTest, SyncAndDataSyncPersistAppends) {
  {
    auto file = mgr_->CreateFile("d").TakeValue();
    ASSERT_TRUE(file->Append("abc", 3).ok());
    ASSERT_TRUE(file->DataSync().ok());
    ASSERT_TRUE(file->Append("def", 3).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  auto reopened = mgr_->OpenFile("d").TakeValue();
  EXPECT_EQ(reopened->size_bytes(), 6u);
  char buf[6];
  ASSERT_TRUE(reopened->ReadAt(0, buf, 6).ok());
  EXPECT_EQ(std::memcmp(buf, "abcdef", 6), 0);
}

// ---------------------------------------------------------------- BufferPool

TEST_F(StorageTest, BufferPoolCachesPages) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  std::memcpy(p.data(), "xyz", 3);
  ASSERT_TRUE(file->WritePage(0, p).ok());

  BufferPool pool(16 * kPageSize);
  auto r1 = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(std::memcmp(r1.value()->data(), "xyz", 3), 0);
  EXPECT_EQ(pool.misses(), 1u);

  auto r2 = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(pool.hits(), 1u);
  // Second fetch must not touch the file again.
  EXPECT_EQ(mgr_->io_stats()->total_reads(), 1u);
}

TEST_F(StorageTest, BufferPoolEvictsLru) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  for (uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(file->WritePage(i, p).ok());

  BufferPool pool(2 * kPageSize);  // Capacity: 2 pages.
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 1).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 2).ok());  // Evicts page 0.
  EXPECT_EQ(pool.cached_pages(), 2u);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());  // Miss again.
  EXPECT_EQ(pool.misses(), 4u);
  EXPECT_EQ(pool.hits(), 0u);
}

TEST_F(StorageTest, BufferPoolInvalidate) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  std::memcpy(p.data(), "old", 3);
  ASSERT_TRUE(file->WritePage(0, p).ok());

  BufferPool pool(4 * kPageSize);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());

  std::memcpy(p.data(), "new", 3);
  ASSERT_TRUE(file->WritePage(0, p).ok());
  pool.Invalidate(file->file_id());

  auto r = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::memcmp(r.value()->data(), "new", 3), 0);
}

TEST_F(StorageTest, BufferPoolErrorOnMissingPage) {
  auto file = mgr_->CreateFile("a").TakeValue();
  BufferPool pool(4 * kPageSize);
  auto r = pool.GetPage(file.get(), 5);
  EXPECT_FALSE(r.ok());
  // Failed fetch must not leave a frame behind.
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(StorageTest, PageTypedReadWrite) {
  Page p;
  p.Write<uint64_t>(8, 0xDEADBEEFULL);
  p.Write<double>(16, 2.5);
  EXPECT_EQ(p.Read<uint64_t>(8), 0xDEADBEEFULL);
  EXPECT_EQ(p.Read<double>(16), 2.5);
}

}  // namespace
}  // namespace storage
}  // namespace coconut
