#include <gtest/gtest.h>

#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = MakeTempStorage("storage_test");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    mgr_ = r.TakeValue();
  }

  void TearDown() override {
    if (mgr_) { ASSERT_TRUE(mgr_->Clear().ok()); }
  }

  std::unique_ptr<StorageManager> mgr_;
};

TEST_F(StorageTest, CreateWriteReadPage) {
  auto fr = mgr_->CreateFile("a");
  ASSERT_TRUE(fr.ok());
  auto file = fr.TakeValue();

  Page out;
  std::memcpy(out.data(), "hello", 5);
  ASSERT_TRUE(file->WritePage(0, out).ok());
  EXPECT_EQ(file->size_bytes(), kPageSize);

  Page in;
  ASSERT_TRUE(file->ReadPage(0, &in).ok());
  EXPECT_EQ(std::memcmp(in.data(), "hello", 5), 0);
}

TEST_F(StorageTest, ReadPastEofFails) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  Status st = file->ReadPage(0, &p);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, AppendAndReadAt) {
  auto file = mgr_->CreateFile("a").TakeValue();
  const std::string data = "0123456789";
  ASSERT_TRUE(file->Append(data.data(), data.size()).ok());
  ASSERT_TRUE(file->Append(data.data(), data.size()).ok());
  EXPECT_EQ(file->size_bytes(), 20u);

  char buf[10];
  ASSERT_TRUE(file->ReadAt(5, buf, 10).ok());
  EXPECT_EQ(std::memcmp(buf, "5678901234", 10), 0);
}

TEST_F(StorageTest, SequentialVsRandomClassification) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  // Pages 0,1,2 in order: first write starts at offset 0 == expected 0,
  // so all three are sequential.
  ASSERT_TRUE(file->WritePage(0, p).ok());
  ASSERT_TRUE(file->WritePage(1, p).ok());
  ASSERT_TRUE(file->WritePage(2, p).ok());
  EXPECT_EQ(mgr_->io_stats()->sequential_writes, 3u);
  EXPECT_EQ(mgr_->io_stats()->random_writes, 0u);

  // Jump back: random.
  ASSERT_TRUE(file->WritePage(0, p).ok());
  EXPECT_EQ(mgr_->io_stats()->random_writes, 1u);

  // Reads: 0 then 1 sequential, then 0 again random.
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  ASSERT_TRUE(file->ReadPage(1, &p).ok());
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  EXPECT_EQ(mgr_->io_stats()->sequential_reads, 2u);
  EXPECT_EQ(mgr_->io_stats()->random_reads, 1u);
}

TEST_F(StorageTest, IoStatsSinceSnapshot) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  ASSERT_TRUE(file->WritePage(0, p).ok());
  IoStats before = *mgr_->io_stats();
  ASSERT_TRUE(file->WritePage(1, p).ok());
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  IoStats delta = mgr_->io_stats()->Since(before);
  EXPECT_EQ(delta.total_writes(), 1u);
  EXPECT_EQ(delta.total_reads(), 1u);
}

TEST_F(StorageTest, OpenExistingFilePreservesContent) {
  {
    auto file = mgr_->CreateFile("persist").TakeValue();
    ASSERT_TRUE(file->Append("abc", 3).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  auto reopened = mgr_->OpenFile("persist").TakeValue();
  EXPECT_EQ(reopened->size_bytes(), 3u);
  char buf[3];
  ASSERT_TRUE(reopened->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
}

TEST_F(StorageTest, RemoveFileAndExists) {
  { auto f = mgr_->CreateFile("gone").TakeValue(); }
  EXPECT_TRUE(mgr_->Exists("gone"));
  ASSERT_TRUE(mgr_->RemoveFile("gone").ok());
  EXPECT_FALSE(mgr_->Exists("gone"));
  EXPECT_FALSE(mgr_->RemoveFile("gone").ok());
}

TEST_F(StorageTest, TotalBytesOnDisk) {
  auto a = mgr_->CreateFile("a").TakeValue();
  auto b = mgr_->CreateFile("b").TakeValue();
  Page p;
  ASSERT_TRUE(a->WritePage(0, p).ok());
  ASSERT_TRUE(b->WritePage(0, p).ok());
  ASSERT_TRUE(b->WritePage(1, p).ok());
  EXPECT_EQ(mgr_->TotalBytesOnDisk(), 3 * kPageSize);
}

TEST_F(StorageTest, AccessTrackerRecordsOnlyWhenEnabled) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  ASSERT_TRUE(file->WritePage(0, p).ok());
  EXPECT_TRUE(mgr_->tracker()->events().empty());

  mgr_->tracker()->Enable();
  ASSERT_TRUE(file->WritePage(1, p).ok());
  ASSERT_TRUE(file->ReadPage(0, &p).ok());
  mgr_->tracker()->Disable();
  ASSERT_TRUE(file->WritePage(2, p).ok());

  const auto& ev = mgr_->tracker()->events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_TRUE(ev[0].is_write);
  EXPECT_EQ(ev[0].page_no, 1u);
  EXPECT_FALSE(ev[1].is_write);
  EXPECT_EQ(ev[1].page_no, 0u);
  EXPECT_LT(ev[0].sequence, ev[1].sequence);
}

// ---------------------------------------------------------------- BufferPool

TEST_F(StorageTest, BufferPoolCachesPages) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  std::memcpy(p.data(), "xyz", 3);
  ASSERT_TRUE(file->WritePage(0, p).ok());

  BufferPool pool(16 * kPageSize);
  auto r1 = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(std::memcmp(r1.value()->data(), "xyz", 3), 0);
  EXPECT_EQ(pool.misses(), 1u);

  auto r2 = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(pool.hits(), 1u);
  // Second fetch must not touch the file again.
  EXPECT_EQ(mgr_->io_stats()->total_reads(), 1u);
}

TEST_F(StorageTest, BufferPoolEvictsLru) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  for (uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(file->WritePage(i, p).ok());

  BufferPool pool(2 * kPageSize);  // Capacity: 2 pages.
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 1).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 2).ok());  // Evicts page 0.
  EXPECT_EQ(pool.cached_pages(), 2u);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());  // Miss again.
  EXPECT_EQ(pool.misses(), 4u);
  EXPECT_EQ(pool.hits(), 0u);
}

TEST_F(StorageTest, BufferPoolInvalidate) {
  auto file = mgr_->CreateFile("a").TakeValue();
  Page p;
  std::memcpy(p.data(), "old", 3);
  ASSERT_TRUE(file->WritePage(0, p).ok());

  BufferPool pool(4 * kPageSize);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());

  std::memcpy(p.data(), "new", 3);
  ASSERT_TRUE(file->WritePage(0, p).ok());
  pool.Invalidate(file->file_id());

  auto r = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::memcmp(r.value()->data(), "new", 3), 0);
}

TEST_F(StorageTest, BufferPoolErrorOnMissingPage) {
  auto file = mgr_->CreateFile("a").TakeValue();
  BufferPool pool(4 * kPageSize);
  auto r = pool.GetPage(file.get(), 5);
  EXPECT_FALSE(r.ok());
  // Failed fetch must not leave a frame behind.
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(StorageTest, PageTypedReadWrite) {
  Page p;
  p.Write<uint64_t>(8, 0xDEADBEEFULL);
  p.Write<double>(16, 2.5);
  EXPECT_EQ(p.Read<uint64_t>(8), 0xDEADBEEFULL);
  EXPECT_EQ(p.Read<double>(16), 2.5);
}

}  // namespace
}  // namespace storage
}  // namespace coconut
