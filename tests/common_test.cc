#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace coconut {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParsed(int v, int* out) {
  COCONUT_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(4, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(UseParsed(-1, &out).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.TakeValue();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(1234);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// ---------------------------------------------------------------- JsonWriter

TEST(JsonTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", std::string("ctree"));
  w.Field("entries", static_cast<int64_t>(1024));
  w.Field("ratio", 0.5);
  w.Field("ok", true);
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            R"({"name":"ctree","entries":1024,"ratio":0.5,"ok":true})");
}

TEST(JsonTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("runs");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Field("k", std::string("v"));
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), R"({"runs":[1,2,{"k":"v"}]})");
}

TEST(JsonTest, EscapesSpecialCharacters) {
  JsonWriter w;
  w.BeginObject();
  w.Field("s", std::string("a\"b\\c\nd"));
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonTest, NonFiniteDoubleBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[null,null]");
}

TEST(JsonTest, TakeStringResetsWriter) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[1]");
  w.BeginArray();
  w.Int(2);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[2]");
}

// ---------------------------------------------------------------- WallTimer

TEST(TimerTest, MeasuresNonNegativeAndMonotone) {
  WallTimer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

// --------------------------------------------------------- deferred tasks

TEST(SerialExecutorTest, RunsTasksInSubmissionOrderAcrossPoolThreads) {
  ThreadPool pool(4);
  SerialExecutor strand(&pool);
  std::vector<int> order;  // Unsynchronized on purpose: the strand is the
                           // serialization, which TSan verifies in CI.
  for (int i = 0; i < 200; ++i) {
    strand.Submit([&order, i] { order.push_back(i); });
  }
  strand.Drain();
  EXPECT_EQ(strand.pending(), 0u);
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(SerialExecutorTest, DrainIsReusable) {
  ThreadPool pool(2);
  SerialExecutor strand(&pool);
  int count = 0;
  strand.Submit([&count] { ++count; });
  strand.Drain();
  EXPECT_EQ(count, 1);
  strand.Submit([&count] { ++count; });
  strand.Drain();
  EXPECT_EQ(count, 2);
}

TEST(WaitGroupTest, WaitBlocksUntilAllDone) {
  ThreadPool pool(3);
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.Add(20);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&wg, &done] {
      done.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), 20);
  EXPECT_EQ(wg.pending(), 0u);
}

}  // namespace
}  // namespace coconut
