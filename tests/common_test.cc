#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace coconut {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnauthenticated),
               "Unauthenticated");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParsed(int v, int* out) {
  COCONUT_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(4, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(UseParsed(-1, &out).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.TakeValue();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(1234);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// ---------------------------------------------------------------- JsonWriter

TEST(JsonTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", std::string("ctree"));
  w.Field("entries", static_cast<int64_t>(1024));
  w.Field("ratio", 0.5);
  w.Field("ok", true);
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            R"({"name":"ctree","entries":1024,"ratio":0.5,"ok":true})");
}

TEST(JsonTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("runs");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Field("k", std::string("v"));
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), R"({"runs":[1,2,{"k":"v"}]})");
}

TEST(JsonTest, EscapesSpecialCharacters) {
  JsonWriter w;
  w.BeginObject();
  w.Field("s", std::string("a\"b\\c\nd"));
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonTest, NonFiniteDoubleBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[null,null]");
}

TEST(JsonTest, TakeStringResetsWriter) {
  JsonWriter w;
  w.BeginArray();
  w.Int(1);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[1]");
  w.BeginArray();
  w.Int(2);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[2]");
}

// ---------------------------------------------------------------- WallTimer

TEST(TimerTest, MeasuresNonNegativeAndMonotone) {
  WallTimer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

// --------------------------------------------------------- deferred tasks

TEST(SerialExecutorTest, RunsTasksInSubmissionOrderAcrossPoolThreads) {
  ThreadPool pool(4);
  SerialExecutor strand(&pool);
  std::vector<int> order;  // Unsynchronized on purpose: the strand is the
                           // serialization, which TSan verifies in CI.
  for (int i = 0; i < 200; ++i) {
    strand.Submit([&order, i] { order.push_back(i); });
  }
  strand.Drain();
  EXPECT_EQ(strand.pending(), 0u);
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(SerialExecutorTest, DrainIsReusable) {
  ThreadPool pool(2);
  SerialExecutor strand(&pool);
  int count = 0;
  strand.Submit([&count] { ++count; });
  strand.Drain();
  EXPECT_EQ(count, 1);
  strand.Submit([&count] { ++count; });
  strand.Drain();
  EXPECT_EQ(count, 2);
}

TEST(WaitGroupTest, WaitBlocksUntilAllDone) {
  ThreadPool pool(3);
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.Add(20);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&wg, &done] {
      done.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), 20);
  EXPECT_EQ(wg.pending(), 0u);
}

// ------------------------------------------------- JsonValue / JsonParse

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonParse("null").TakeValue().is_null());
  EXPECT_EQ(JsonParse("true").TakeValue().bool_value(), true);
  EXPECT_EQ(JsonParse("false").TakeValue().bool_value(), false);
  EXPECT_EQ(JsonParse("\"hi\"").TakeValue().string_value(), "hi");

  JsonValue v = JsonParse("42").TakeValue();
  EXPECT_EQ(v.kind(), JsonValue::Kind::kUint);
  EXPECT_EQ(v.AsUint64().value(), 42u);
  EXPECT_EQ(v.AsInt64().value(), 42);
  EXPECT_EQ(v.AsDouble(), 42.0);

  v = JsonParse("-17").TakeValue();
  EXPECT_EQ(v.kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(v.AsInt64().value(), -17);
  EXPECT_FALSE(v.AsUint64().ok());

  v = JsonParse("3.5").TakeValue();
  EXPECT_EQ(v.kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(v.AsDouble(), 3.5);

  v = JsonParse("1e3").TakeValue();
  EXPECT_EQ(v.AsDouble(), 1000.0);
  EXPECT_EQ(v.AsInt64().value(), 1000);

  // 64-bit extremes round-trip exactly.
  v = JsonParse("18446744073709551615").TakeValue();
  EXPECT_EQ(v.AsUint64().value(), UINT64_MAX);
  EXPECT_FALSE(v.AsInt64().ok());
  v = JsonParse("-9223372036854775808").TakeValue();
  EXPECT_EQ(v.AsInt64().value(), INT64_MIN);
}

// Regression: number parsing used to route through locale-sensitive
// strtod, so a process whose C locale uses a decimal *comma* (any
// embedder can flip it — GUI toolkits routinely do) rejected every
// fractional JSON number on the wire. Parsing now goes through
// std::from_chars (locale-pinned strtod_l fallback), and the writer
// through std::to_chars, so both directions are locale-independent.
TEST(JsonParseTest, NumbersAreLocaleIndependent) {
  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string restore = previous != nullptr ? previous : "C";
  const char* flipped = nullptr;
  for (const char* candidate :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8",
        "fr_FR"}) {
    flipped = std::setlocale(LC_ALL, candidate);
    if (flipped != nullptr) break;
  }
  if (flipped == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // The locale must actually use a comma, or the flip proves nothing.
  char probe[32];
  std::snprintf(probe, sizeof(probe), "%.1f", 1.5);
  if (std::string(probe) != "1,5") {
    std::setlocale(LC_ALL, restore.c_str());
    GTEST_SKIP() << "locale does not use a decimal comma";
  }

  JsonValue v = JsonParse("3.5").TakeValue();
  EXPECT_EQ(v.kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(v.AsDouble(), 3.5);
  EXPECT_EQ(JsonParse("1e3").TakeValue().AsDouble(), 1000.0);
  EXPECT_EQ(JsonParse("-0.25").TakeValue().AsDouble(), -0.25);
  // A comma is still not valid JSON, whatever the locale says.
  EXPECT_FALSE(JsonParse("3,5").ok());

  JsonWriter w;
  w.BeginObject();
  w.Field("x", 1.5);
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"x\":1.5}");

  std::setlocale(LC_ALL, restore.c_str());
}

TEST(JsonParseTest, NestedStructures) {
  JsonValue v =
      JsonParse(" { \"a\" : [ 1 , {\"b\": [true, null]} ] , \"c\": {} } ")
          .TakeValue();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 2u);
  EXPECT_EQ(a->array()[0].AsUint64().value(), 1u);
  const JsonValue* b = a->array()[1].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->array()[0].bool_value());
  EXPECT_TRUE(b->array()[1].is_null());
  EXPECT_TRUE(v.Find("c")->is_object());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonParse("\"a\\\"b\\\\c\\/d\\n\\t\"").TakeValue().string_value(),
            "a\"b\\c/d\n\t");
  // BMP escape, and a surrogate pair for U+1F600.
  EXPECT_EQ(JsonParse("\"\\u00e9\"").TakeValue().string_value(), "\xc3\xa9");
  EXPECT_EQ(JsonParse("\"\\u20ac\"").TakeValue().string_value(),
            "\xe2\x82\xac");
  EXPECT_EQ(JsonParse("\"\\ud83d\\ude00\"").TakeValue().string_value(),
            "\xf0\x9f\x98\x80");
  // Unpaired surrogates are malformed.
  EXPECT_FALSE(JsonParse("\"\\ud83d\"").ok());
  EXPECT_FALSE(JsonParse("\"\\ude00\"").ok());
  EXPECT_FALSE(JsonParse("\"\\ud83dx\"").ok());
}

TEST(JsonParseTest, MalformedDocuments) {
  const char* bad[] = {
      "",           "{",           "}",            "{\"a\":}",
      "{\"a\" 1}",  "[1,]",        "[1 2]",        "tru",
      "01",         "1.",          "1e",           "-",
      "\"unterminated", "\"bad\\q\"", "{\"a\":1}extra", "nan",
      "{\"a\":1,\"a\":2}",  // duplicate key
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(JsonParse(doc).ok()) << doc;
  }
  // Control characters must be escaped.
  EXPECT_FALSE(JsonParse("\"a\nb\"").ok());
  // Nesting past the depth cap is rejected rather than overflowing.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonParse(deep).ok());
}

TEST(JsonParseTest, DumpRoundTripsThroughWriter) {
  const std::string doc =
      "{\"s\":\"a\\\"b\",\"n\":-3,\"u\":42,\"d\":1.5,\"t\":true,"
      "\"z\":null,\"arr\":[1,2,3],\"obj\":{\"k\":\"v\"}}";
  Result<JsonValue> parsed = JsonParse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Dump(), doc);
}

// --------------------------------------------- packed numeric arrays

TEST(JsonPackedArrayTest, AllNumericArraysPack) {
  JsonValue v = JsonParse("[1,-2,3.5,0,4294967296]").TakeValue();
  EXPECT_TRUE(v.is_packed_array());
  EXPECT_TRUE(v.is_array());
  ASSERT_EQ(v.array_size(), 5u);
  // array() is node storage and intentionally empty for the packed form.
  EXPECT_TRUE(v.array().empty());
  EXPECT_EQ(v.packed_numbers().size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_TRUE(v.element_is_number(i));
  EXPECT_EQ(v.NumberAt(2), 3.5);
  EXPECT_EQ(v.ElementAsInt64(1).value(), -2);
  EXPECT_EQ(v.ElementAsUint64(4).value(), 4294967296u);
  EXPECT_FALSE(v.ElementAsUint64(1).ok());  // negative
  EXPECT_FALSE(v.ElementAsInt64(2).ok());   // fractional

  // Empty and mixed arrays stay node-backed; uniform accessors agree.
  EXPECT_FALSE(JsonParse("[]").TakeValue().is_packed_array());
  JsonValue mixed = JsonParse("[1,\"x\",2]").TakeValue();
  EXPECT_FALSE(mixed.is_packed_array());
  EXPECT_EQ(mixed.array_size(), 3u);
  EXPECT_TRUE(mixed.element_is_number(0));
  EXPECT_FALSE(mixed.element_is_number(1));
  EXPECT_EQ(mixed.ElementAsInt64(2).value(), 2);
}

TEST(JsonPackedArrayTest, SpellingTagsKeepDumpByteIdentical) {
  // Int, uint and double spellings re-emit exactly as written even though
  // the packed store holds every value as a double (a raw %.12g re-emission
  // of a 13+-digit integer would corrupt it).
  const std::string doc = "[0,-7,2.25,1e3,9007199254740992,-9007199254740992]";
  JsonValue v = JsonParse(doc).TakeValue();
  ASSERT_TRUE(v.is_packed_array());
  EXPECT_EQ(v.Dump(), "[0,-7,2.25,1000,9007199254740992,-9007199254740992]");

  // Integers beyond 2^53 do not survive the double round-trip: the array
  // demotes to nodes and stays exact.
  JsonValue big = JsonParse("[1,18446744073709551615]").TakeValue();
  EXPECT_FALSE(big.is_packed_array());
  EXPECT_EQ(big.ElementAsUint64(1).value(), UINT64_MAX);
  EXPECT_EQ(big.Dump(), "[1,18446744073709551615]");
  JsonValue negbig = JsonParse("[-9223372036854775808]").TakeValue();
  EXPECT_FALSE(negbig.is_packed_array());
  EXPECT_EQ(negbig.ElementAsInt64(0).value(), INT64_MIN);
}

TEST(JsonPackedArrayTest, PackedMatrixShrinksDomByOrderOfMagnitude) {
  // The satellite bug: a parsed series matrix used to retain one full
  // JsonValue node (~160 bytes) per float. Build a 64x128 matrix and pin
  // the packed DOM under a per-element budget no node DOM can meet.
  std::string doc = "[";
  for (int row = 0; row < 64; ++row) {
    doc += row ? ",[" : "[";
    for (int col = 0; col < 128; ++col) {
      doc += col ? ",0.125" : "0.125";
    }
    doc += "]";
  }
  doc += "]";
  JsonValue v = JsonParse(doc).TakeValue();
  ASSERT_EQ(v.array_size(), 64u);
  ASSERT_TRUE(v.array()[0].is_packed_array());
  const size_t elements = 64 * 128;
  const size_t bytes = v.DeepMemoryBytes();
  // Packed cost is 9 bytes/element (double + tag) plus vector slack; a
  // node-backed DOM costs sizeof(JsonValue) >= 100 bytes/element. Assert
  // the packed bound with generous headroom.
  EXPECT_LT(bytes, elements * 32) << bytes;
  EXPECT_GE(bytes, elements * 9);  // sanity: the data itself is counted
}

}  // namespace
}  // namespace coconut
