// k-nearest-neighbor search across every index family: results must match
// a brute-force top-k exactly (same distances, ascending order), respect
// time windows, and handle the k >= collection edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "ads/ads_index.h"
#include "clsm/clsm.h"
#include "ctree/ctree.h"
#include "seqtable/table_search.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 64, .num_segments = 8,
                           .bits_per_segment = 8};
}

std::vector<std::pair<double, size_t>> BruteForceTopK(
    const series::SeriesCollection& collection, std::span<const float> query,
    size_t k) {
  std::vector<std::pair<double, size_t>> all;
  for (size_t i = 0; i < collection.size(); ++i) {
    all.emplace_back(series::EuclideanSquared(query, collection[i]), i);
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(all.size(), k));
  return all;
}

void ExpectMatchesTruth(const std::vector<core::SearchResult>& got,
                        const std::vector<std::pair<double, size_t>>& truth,
                        const std::string& what) {
  ASSERT_EQ(got.size(), truth.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance_sq, truth[i].first, 1e-6)
        << what << " rank " << i;
    if (i > 0) {
      EXPECT_GE(got[i].distance_sq, got[i - 1].distance_sq) << what;
    }
  }
}

class KnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = storage::MakeTempStorage("knn_test");
    ASSERT_TRUE(r.ok());
    mgr_ = r.TakeValue();
    collection_ = testutil::RandomWalkCollection(600, 64, 3);
    raw_ = core::RawSeriesStore::Create(mgr_.get(), "raw", 64).TakeValue();
    ASSERT_TRUE(testutil::FillRawStore(raw_.get(), collection_).ok());
  }
  void TearDown() override { ASSERT_TRUE(mgr_->Clear().ok()); }

  std::unique_ptr<ctree::CTree> MakeCTree(bool materialized = false) {
    auto builder =
        ctree::CTree::Builder::Create(
            mgr_.get(), "ctree",
            {.sax = TestSax(), .materialized = materialized})
            .TakeValue();
    for (size_t i = 0; i < collection_.size(); ++i) {
      EXPECT_TRUE(
          builder->Add(i, collection_[i], static_cast<int64_t>(i)).ok());
    }
    return builder->Finish(nullptr, raw_.get()).TakeValue();
  }

  std::unique_ptr<storage::StorageManager> mgr_;
  std::unique_ptr<core::RawSeriesStore> raw_;
  series::SeriesCollection collection_{64};
};

TEST_F(KnnTest, CollectorKeepsKBest) {
  seqtable::KnnCollector collector(3);
  EXPECT_EQ(collector.bound(), std::numeric_limits<double>::infinity());
  for (double d : {5.0, 1.0, 9.0, 3.0, 7.0}) {
    core::SearchResult r;
    r.found = true;
    r.series_id = static_cast<uint64_t>(d * 10);
    r.distance_sq = d;
    collector.Offer(r);
  }
  EXPECT_DOUBLE_EQ(collector.bound(), 5.0);
  auto top = collector.Take();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_DOUBLE_EQ(top[0].distance_sq, 1.0);
  EXPECT_DOUBLE_EQ(top[1].distance_sq, 3.0);
  EXPECT_DOUBLE_EQ(top[2].distance_sq, 5.0);
}

TEST_F(KnnTest, CollectorCollapsesDuplicateIds) {
  seqtable::KnnCollector collector(2);
  core::SearchResult r;
  r.found = true;
  r.series_id = 7;
  r.distance_sq = 4.0;
  collector.Offer(r);
  r.distance_sq = 2.0;  // Closer observation of the same series.
  collector.Offer(r);
  auto top = collector.Take();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].distance_sq, 2.0);
}

TEST_F(KnnTest, CTreeMatchesBruteForceTopK) {
  auto tree = MakeCTree();
  for (size_t k : {1u, 5u, 20u}) {
    for (int q = 0; q < 5; ++q) {
      auto query = testutil::NoisyCopy(collection_, q * 97 % 600, 0.5, q);
      auto truth = BruteForceTopK(collection_, query, k);
      auto got = tree->KnnSearch(query, k, {}, nullptr).TakeValue();
      ExpectMatchesTruth(got, truth, "CTree k=" + std::to_string(k));
    }
  }
}

TEST_F(KnnTest, MaterializedCTreeMatchesBruteForceTopK) {
  auto tree = MakeCTree(/*materialized=*/true);
  auto query = testutil::NoisyCopy(collection_, 123, 0.5, 9);
  auto truth = BruteForceTopK(collection_, query, 10);
  auto got = tree->KnnSearch(query, 10, {}, nullptr).TakeValue();
  ExpectMatchesTruth(got, truth, "CTreeFull");
}

TEST_F(KnnTest, ClsmMatchesBruteForceTopK) {
  auto lsm = clsm::Clsm::Create(mgr_.get(), "lsm",
                                {.sax = TestSax(), .growth_factor = 3,
                                 .buffer_entries = 100},
                                nullptr, raw_.get())
                 .TakeValue();
  for (size_t i = 0; i < collection_.size(); ++i) {
    ASSERT_TRUE(lsm->Insert(i, collection_[i], static_cast<int64_t>(i)).ok());
  }
  // Deliberately leave entries in the memtable.
  for (size_t k : {1u, 10u}) {
    auto query = testutil::NoisyCopy(collection_, 50, 0.5, 31);
    auto truth = BruteForceTopK(collection_, query, k);
    auto got = lsm->KnnSearch(query, k, {}, nullptr).TakeValue();
    ExpectMatchesTruth(got, truth, "CLSM k=" + std::to_string(k));
  }
}

TEST_F(KnnTest, AdsMatchesBruteForceTopK) {
  auto ads = ads::AdsIndex::Create(mgr_.get(), "ads",
                                   {.sax = TestSax(), .leaf_capacity = 64,
                                    .global_buffer_entries = 128},
                                   raw_.get())
                 .TakeValue();
  for (size_t i = 0; i < collection_.size(); ++i) {
    ASSERT_TRUE(ads->Insert(i, collection_[i], static_cast<int64_t>(i)).ok());
  }
  for (size_t k : {1u, 10u}) {
    auto query = testutil::NoisyCopy(collection_, 400, 0.5, 13);
    auto truth = BruteForceTopK(collection_, query, k);
    auto got = ads->KnnSearch(query, k, {}, nullptr).TakeValue();
    ExpectMatchesTruth(got, truth, "ADS+ k=" + std::to_string(k));
  }
}

TEST_F(KnnTest, KnnRespectsTimeWindow) {
  auto tree = MakeCTree();
  core::SearchOptions opts;
  opts.window = core::TimeWindow{100, 300};
  std::vector<float> query(collection_[400].begin(), collection_[400].end());
  auto got = tree->KnnSearch(query, 5, opts, nullptr).TakeValue();
  ASSERT_EQ(got.size(), 5u);
  for (const auto& r : got) {
    EXPECT_GE(r.timestamp, 100);
    EXPECT_LE(r.timestamp, 300);
    EXPECT_NE(r.series_id, 400u);
  }
  // Matches the brute-force top-5 restricted to the window.
  std::vector<std::pair<double, size_t>> truth;
  for (size_t i = 100; i <= 300; ++i) {
    truth.emplace_back(series::EuclideanSquared(query, collection_[i]), i);
  }
  std::sort(truth.begin(), truth.end());
  truth.resize(5);
  ExpectMatchesTruth(got, truth, "windowed");
}

TEST_F(KnnTest, KLargerThanCollectionReturnsEverything) {
  auto small = testutil::RandomWalkCollection(10, 64, 8);
  auto small_raw =
      core::RawSeriesStore::Create(mgr_.get(), "raw2", 64).TakeValue();
  ASSERT_TRUE(testutil::FillRawStore(small_raw.get(), small).ok());
  auto builder = ctree::CTree::Builder::Create(mgr_.get(), "small",
                                               {.sax = TestSax()})
                     .TakeValue();
  for (size_t i = 0; i < small.size(); ++i) {
    ASSERT_TRUE(builder->Add(i, small[i], 0).ok());
  }
  auto tree = builder->Finish(nullptr, small_raw.get()).TakeValue();
  std::vector<float> query(small[0].begin(), small[0].end());
  auto got = tree->KnnSearch(query, 50, {}, nullptr).TakeValue();
  EXPECT_EQ(got.size(), 10u);
}

TEST_F(KnnTest, KZeroRejected) {
  auto tree = MakeCTree();
  std::vector<float> query(64, 0.0f);
  EXPECT_FALSE(tree->KnnSearch(query, 0, {}, nullptr).ok());
}

}  // namespace
}  // namespace coconut
