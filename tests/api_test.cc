// Tests for the typed service API (palm/api.h): every request/response
// struct round-trips parse -> serialize, malformed and unknown-field
// payloads are rejected with structured errors, request validation fires
// at the API boundary, the drop lifecycle releases storage, and — the
// redesign's contract — the dispatcher's JSON is byte-identical to the
// pre-redesign string-returning Server methods (the legacy serialization
// sequences are replicated inline here and pinned against the typed
// serializers).
#include <gtest/gtest.h>

#include <filesystem>

#include "palm/api.h"
#include "palm/query_cache.h"
#include "palm/server.h"
#include "tests/test_util.h"

namespace coconut {
namespace palm {
namespace api {
namespace {

series::SaxConfig TestSax() {
  return series::SaxConfig{.series_length = 32, .num_segments = 8,
                           .bits_per_segment = 8};
}

VariantSpec TestSpec(IndexFamily family = IndexFamily::kCTree) {
  VariantSpec spec;
  spec.sax = TestSax();
  spec.family = family;
  spec.buffer_entries = 64;
  return spec;
}

/// Serialize -> parse -> deserialize -> serialize must reproduce the
/// exact bytes (field order and value formatting are part of the wire
/// contract).
template <typename T>
void ExpectRoundTrip(const T& value) {
  const std::string json = value.ToJsonString();
  Result<JsonValue> parsed = JsonParse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  Result<T> back = T::FromJson(parsed.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << json;
  EXPECT_EQ(back.value().ToJsonString(), json);
}

template <typename T>
Status ParseError(const std::string& json) {
  Result<JsonValue> parsed = JsonParse(json);
  if (!parsed.ok()) return parsed.status();
  Result<T> back = T::FromJson(parsed.value());
  return back.status();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path().string() + "/api_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    auto created = Service::Create(root_);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    service_ = created.TakeValue();
  }

  void TearDown() override {
    service_.reset();
    std::filesystem::remove_all(root_);
  }

  /// Registers a deterministic random-walk dataset named `name`.
  series::SeriesCollection Register(const std::string& name, size_t count,
                                    uint64_t seed = 7) {
    series::SeriesCollection data =
        testutil::RandomWalkCollection(count, 32, seed);
    auto status = service_->RegisterDataset(name, data, nullptr);
    EXPECT_TRUE(status.ok()) << status.status().ToString();
    return data;
  }

  std::string root_;
  std::unique_ptr<Service> service_;
};

// ------------------------------------------------------------ round trips

TEST(ApiRoundTrip, RegisterDatasetRequest) {
  RegisterDatasetRequest request;
  request.name = "walk";
  request.data = testutil::RandomWalkCollection(3, 8, 11);
  request.timestamps = std::vector<int64_t>{10, 20, -5};
  ExpectRoundTrip(request);

  request.timestamps.reset();
  ExpectRoundTrip(request);
}

TEST(ApiRoundTrip, RegisterDatasetResponse) {
  RegisterDatasetResponse response;
  response.dataset = "walk";
  response.series = 4096;
  response.series_length = 128;
  ExpectRoundTrip(response);
}

TEST(ApiRoundTrip, BuildIndexRequestEveryKnob) {
  BuildIndexRequest request;
  request.index = "idx";
  request.dataset = "walk";
  request.spec = TestSpec(IndexFamily::kClsm);
  request.spec.materialized = true;
  request.spec.fill_factor = 0.75;
  request.spec.growth_factor = 3;
  request.spec.memory_budget_bytes = 1 << 20;
  request.spec.construction_threads = 2;
  request.spec.ads_leaf_capacity = 512;
  request.spec.btp_merge_k = 4;
  request.spec.num_shards = 4;
  request.spec.shard_build_threads = 2;
  request.spec.shard_query_threads = 3;
  request.spec.timestamp_policy = stream::TimestampPolicy::kClamp;
  request.spec.async_ingest = true;
  request.spec.max_inflight_seals = 6;
  request.spec.backpressure_policy = stream::BackpressurePolicy::kReject;
  ExpectRoundTrip(request);
}

TEST(ApiRoundTrip, BuildIndexReport) {
  BuildIndexReport report;
  report.index = "idx";
  report.variant = "CTree";
  report.dataset = "walk";
  report.shards = 2;
  report.entries = 1000;
  report.build_seconds = 1.25;
  report.index_bytes = 4096;
  report.total_bytes = 8192;
  report.io.sequential_reads = 10;
  report.io.random_reads = 3;
  report.io.bytes_written = 123456;
  ExpectRoundTrip(report);
}

TEST(ApiRoundTrip, CreateStreamAndDrainAndDrop) {
  CreateStreamRequest create;
  create.stream = "s";
  create.spec = TestSpec();
  create.spec.mode = StreamMode::kTP;
  ExpectRoundTrip(create);

  CreateStreamResponse created;
  created.stream = "s";
  created.variant = "CTree-TP";
  ExpectRoundTrip(created);

  DrainStreamRequest drain;
  drain.stream = "s";
  ExpectRoundTrip(drain);

  DrainStreamReport report;
  report.stream = "s";
  report.drain_seconds = 0.5;
  report.total_entries = 100;
  report.partitions = 3;
  report.seals_completed = 3;
  report.merges_completed = 1;
  report.index_bytes = 2048;
  report.total_bytes = 12288;
  ExpectRoundTrip(report);

  DropIndexRequest drop;
  drop.index = "s";
  ExpectRoundTrip(drop);

  DropIndexResponse dropped;
  dropped.index = "s";
  dropped.dropped = true;
  dropped.streaming = true;
  dropped.entries = 100;
  dropped.reclaimed_bytes = 12288;
  ExpectRoundTrip(dropped);

  DropDatasetRequest drop_ds;
  drop_ds.dataset = "walk";
  ExpectRoundTrip(drop_ds);

  DropDatasetResponse dropped_ds;
  dropped_ds.dataset = "walk";
  dropped_ds.dropped = true;
  dropped_ds.series = 42;
  ExpectRoundTrip(dropped_ds);
}

TEST(ApiRoundTrip, IngestBatch) {
  IngestBatchRequest request;
  request.stream = "s";
  request.batch = testutil::RandomWalkCollection(2, 8, 3);
  request.timestamps = {100, 200};
  ExpectRoundTrip(request);

  IngestBatchReport report;
  report.stream = "s";
  report.ingested = 2;
  report.total_entries = 10;
  report.partitions = 1;
  report.buffered = 2;
  report.pending_tasks = 1;
  report.seals_completed = 1;
  report.merges_completed = 0;
  report.seconds = 0.001;
  report.io.sequential_writes = 5;
  ExpectRoundTrip(report);
}

TEST(ApiRoundTrip, QueryRequestAndReport) {
  QueryRequest request;
  request.index = "idx";
  request.query = {1.5f, -2.25f, 0.0f, 3.125f};
  request.exact = false;
  request.window = core::TimeWindow{10, 99};
  request.approx_candidates = 7;
  request.capture_heatmap = true;
  request.heatmap_time_bins = 4;
  request.heatmap_location_bins = 8;
  ExpectRoundTrip(request);
  request.window.reset();
  ExpectRoundTrip(request);

  QueryReport report;
  report.index = "idx";
  report.exact = true;
  report.found = true;
  report.series_id = 77;
  report.distance = 1.4142;
  report.timestamp = -3;
  report.seconds = 0.01;
  report.io.random_reads = 12;
  report.counters.leaves_visited = 3;
  report.counters.raw_fetches = 12;
  report.has_heatmap = true;
  report.access_locality = 0.875;
  report.heatmap.time_bins = 2;
  report.heatmap.location_bins = 3;
  report.heatmap.counts = {1, 0, 2, 0, 4, 0};
  report.heatmap.max_count = 4;
  report.heatmap.total_events = 7;
  report.heatmap.distinct_pages = 4;
  report.heatmap.distinct_files = 2;
  ExpectRoundTrip(report);

  report.found = false;
  report.has_heatmap = false;
  ExpectRoundTrip(report);
}

TEST(ApiRoundTrip, QueryBatch) {
  QueryBatchRequest request;
  QueryRequest q;
  q.index = "a";
  q.query = {1.0f, 2.0f};
  request.queries = {q, q};
  request.threads = 2;
  ExpectRoundTrip(request);

  QueryBatchResponse response;
  QueryBatchResponse::Entry ok_entry;
  ok_entry.ok = true;
  ok_entry.report.index = "a";
  ok_entry.report.found = false;
  QueryBatchResponse::Entry err_entry;
  err_entry.ok = false;
  err_entry.error = ApiError::FromStatus(Status::NotFound("index 'b'"));
  response.results = {ok_entry, err_entry};
  ExpectRoundTrip(response);
}

TEST(ApiRoundTrip, RecommendAndListAndError) {
  RecommendRequest request;
  request.scenario.streaming = true;
  request.scenario.dataset_size = 123456;
  request.scenario.sax = TestSax();
  request.scenario.expected_queries = 99;
  request.scenario.update_ratio = 0.25;
  request.scenario.window_queries = true;
  request.scenario.typical_window_fraction = 0.5;
  request.scenario.storage_constrained = true;
  ExpectRoundTrip(request);

  RecommendResponse response;
  response.variant = "CLSM-BTP";
  response.materialized = false;
  response.fill_factor = 1.0;
  response.growth_factor = 4;
  response.buffer_entries = 4096;
  response.rationale = {"streaming data", "memory constrained"};
  ExpectRoundTrip(response);

  ListIndexesResponse list;
  ListIndexesResponse::IndexInfo info;
  info.name = "idx";
  info.variant = "ADS+";
  info.streaming = false;
  info.shards = 1;
  info.entries = 10;
  info.total_bytes = 4096;
  list.indexes = {info};
  ExpectRoundTrip(list);

  ApiError error = ApiError::FromStatus(
      Status::InvalidArgument("query vector must not be empty"));
  EXPECT_EQ(error.code, "invalid_argument");
  EXPECT_EQ(error.http_status, 400);
  ExpectRoundTrip(error);
}

// ----------------------------------------------- malformed & unknown

TEST(ApiParse, MalformedJsonIsRejected) {
  EXPECT_FALSE(ParseError<QueryRequest>("{\"index\":\"a\",").ok());
  EXPECT_FALSE(ParseError<QueryRequest>("not json at all").ok());
  EXPECT_FALSE(ParseError<QueryRequest>("").ok());
  EXPECT_FALSE(ParseError<BuildIndexRequest>("[1,2,3]").ok());
}

TEST(ApiParse, MissingRequiredFields) {
  Status s = ParseError<QueryRequest>("{\"query\":[1.0]}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("'index'"), std::string::npos);

  s = ParseError<BuildIndexRequest>("{\"index\":\"i\",\"dataset\":\"d\"}");
  EXPECT_NE(s.message().find("'spec'"), std::string::npos);

  s = ParseError<IngestBatchRequest>(
      "{\"stream\":\"s\",\"series\":[[1,2]]}");
  EXPECT_NE(s.message().find("'timestamps'"), std::string::npos);
}

TEST(ApiParse, UnknownFieldsAreRejected) {
  Status s = ParseError<QueryRequest>(
      "{\"index\":\"a\",\"query\":[1.0],\"exacty\":true}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("unknown field 'exacty'"), std::string::npos);

  s = ParseError<DropIndexRequest>("{\"index\":\"a\",\"force\":true}");
  EXPECT_NE(s.message().find("unknown field 'force'"), std::string::npos);

  s = ParseError<BuildIndexRequest>(
      "{\"index\":\"i\",\"dataset\":\"d\",\"spec\":{\"familly\":\"ads\"}}");
  EXPECT_NE(s.message().find("unknown field 'familly'"), std::string::npos);
}

TEST(ApiParse, WrongTypesAreRejected) {
  EXPECT_FALSE(
      ParseError<QueryRequest>("{\"index\":3,\"query\":[1.0]}").ok());
  EXPECT_FALSE(
      ParseError<QueryRequest>("{\"index\":\"a\",\"query\":\"no\"}").ok());
  EXPECT_FALSE(ParseError<QueryRequest>(
                   "{\"index\":\"a\",\"query\":[1.0],\"exact\":\"yes\"}")
                   .ok());
  EXPECT_FALSE(ParseError<RegisterDatasetRequest>(
                   "{\"name\":\"d\",\"series\":[[1,\"x\"]]}")
                   .ok());
}

TEST(ApiParse, RaggedSeriesRejected) {
  Status s = ParseError<RegisterDatasetRequest>(
      "{\"name\":\"d\",\"series\":[[1,2,3],[1,2]]}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("expected length 3"), std::string::npos);

  // Explicit series_length disagrees with the rows.
  s = ParseError<RegisterDatasetRequest>(
      "{\"name\":\"d\",\"series_length\":4,\"series\":[[1,2,3]]}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // Empty matrix without an explicit length is unusable.
  s = ParseError<RegisterDatasetRequest>("{\"name\":\"d\",\"series\":[]}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ApiParse, SpecEnumSpellings) {
  Result<JsonValue> parsed = JsonParse(
      "{\"family\":\"clsm\",\"mode\":\"btp\",\"timestamp_policy\":"
      "\"strict\"}");
  ASSERT_TRUE(parsed.ok());
  Result<VariantSpec> spec = VariantSpecFromJson(parsed.value());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().family, IndexFamily::kClsm);
  EXPECT_EQ(spec.value().mode, StreamMode::kBTP);
  EXPECT_EQ(spec.value().timestamp_policy, stream::TimestampPolicy::kStrict);

  parsed = JsonParse("{\"family\":\"btree\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(VariantSpecFromJson(parsed.value()).ok());
  parsed = JsonParse("{\"mode\":\"bulk\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(VariantSpecFromJson(parsed.value()).ok());
}

TEST(ApiParse, BackpressureKnobs) {
  // The two PR 5 wire knobs: policy spellings and the range check on the
  // cap (each in-flight seal authorizes buffer_entries pinned series, so
  // the cap itself is capped).
  Result<JsonValue> parsed = JsonParse(
      "{\"max_inflight_seals\":4,\"backpressure_policy\":\"reject\"}");
  ASSERT_TRUE(parsed.ok());
  Result<VariantSpec> spec = VariantSpecFromJson(parsed.value());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().max_inflight_seals, 4u);
  EXPECT_EQ(spec.value().backpressure_policy,
            stream::BackpressurePolicy::kReject);

  parsed = JsonParse("{\"backpressure_policy\":\"block\"}");
  ASSERT_TRUE(parsed.ok());
  spec = VariantSpecFromJson(parsed.value());
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().backpressure_policy,
            stream::BackpressurePolicy::kBlock);
  EXPECT_EQ(spec.value().max_inflight_seals, 0u);  // default: unbounded

  parsed = JsonParse("{\"backpressure_policy\":\"dropit\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(VariantSpecFromJson(parsed.value()).ok());

  // Over the wire cap (2^16): rejected at parse, not silently narrowed.
  parsed = JsonParse("{\"max_inflight_seals\":65537}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(VariantSpecFromJson(parsed.value()).ok());
  parsed = JsonParse("{\"max_inflight_seals\":-1}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(VariantSpecFromJson(parsed.value()).ok());
}

// ------------------------------------- legacy byte-identity (tentpole)

// The exact pre-redesign serialization sequences, copied from the old
// palm::Server (JsonWriter call for call). The typed reports must emit
// identical bytes: existing clients parse these payloads.

std::string LegacyIoJson(const storage::IoStats& io) {
  JsonWriter w;
  w.BeginObject();
  w.Field("sequential_reads", io.sequential_reads);
  w.Field("random_reads", io.random_reads);
  w.Field("sequential_writes", io.sequential_writes);
  w.Field("random_writes", io.random_writes);
  w.Field("bytes_read", io.bytes_read);
  w.Field("bytes_written", io.bytes_written);
  w.EndObject();
  return w.TakeString();
}

std::string LegacyBuildJson(const BuildIndexReport& r) {
  JsonWriter w;
  w.BeginObject();
  w.Field("index", r.index);
  w.Field("variant", r.variant);
  w.Field("dataset", r.dataset);
  w.Field("shards", r.shards);
  w.Field("entries", r.entries);
  w.Field("build_seconds", r.build_seconds);
  w.Field("index_bytes", r.index_bytes);
  w.Field("total_bytes", r.total_bytes);
  w.Key("io");
  w.BeginObject();
  w.Field("sequential_reads", r.io.sequential_reads);
  w.Field("random_reads", r.io.random_reads);
  w.Field("sequential_writes", r.io.sequential_writes);
  w.Field("random_writes", r.io.random_writes);
  w.Field("bytes_read", r.io.bytes_read);
  w.Field("bytes_written", r.io.bytes_written);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

// PR 5 appended the backpressure telemetry fields (seals_inflight through
// stall_ms_p99) to the ingest/drain reports; the replicas carry them at
// the same positions so the remainder of the legacy sequence stays
// pinned byte-for-byte.
std::string LegacyIngestJson(const IngestBatchReport& r) {
  JsonWriter w;
  w.BeginObject();
  w.Field("stream", r.stream);
  w.Field("ingested", r.ingested);
  w.Field("total_entries", r.total_entries);
  w.Field("partitions", r.partitions);
  w.Field("buffered", r.buffered);
  w.Field("pending_tasks", r.pending_tasks);
  w.Field("seals_completed", r.seals_completed);
  w.Field("merges_completed", r.merges_completed);
  w.Field("seals_inflight", r.seals_inflight);
  w.Field("ingest_stalls", r.ingest_stalls);
  w.Field("ingest_rejects", r.ingest_rejects);
  w.Field("stall_ms_p50", r.stall_ms_p50);
  w.Field("stall_ms_p99", r.stall_ms_p99);
  w.Field("seconds", r.seconds);
  w.Key("io");
  w.BeginObject();
  w.Field("sequential_reads", r.io.sequential_reads);
  w.Field("random_reads", r.io.random_reads);
  w.Field("sequential_writes", r.io.sequential_writes);
  w.Field("random_writes", r.io.random_writes);
  w.Field("bytes_read", r.io.bytes_read);
  w.Field("bytes_written", r.io.bytes_written);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string LegacyDrainJson(const DrainStreamReport& r) {
  JsonWriter w;
  w.BeginObject();
  w.Field("stream", r.stream);
  w.Field("drained", r.drained);
  w.Field("drain_seconds", r.drain_seconds);
  w.Field("total_entries", r.total_entries);
  w.Field("partitions", r.partitions);
  w.Field("buffered", r.buffered);
  w.Field("pending_tasks", r.pending_tasks);
  w.Field("seals_completed", r.seals_completed);
  w.Field("merges_completed", r.merges_completed);
  w.Field("seals_inflight", r.seals_inflight);
  w.Field("ingest_stalls", r.ingest_stalls);
  w.Field("ingest_rejects", r.ingest_rejects);
  w.Field("stall_ms_p50", r.stall_ms_p50);
  w.Field("stall_ms_p99", r.stall_ms_p99);
  w.Field("index_bytes", r.index_bytes);
  w.Field("total_bytes", r.total_bytes);
  w.EndObject();
  return w.TakeString();
}

std::string LegacyQueryJson(const QueryReport& r) {
  JsonWriter w;
  w.BeginObject();
  w.Field("index", r.index);
  w.Field("exact", r.exact);
  w.Field("found", r.found);
  if (r.found) {
    w.Field("series_id", r.series_id);
    w.Field("distance", r.distance);
    w.Field("timestamp", r.timestamp);
  }
  w.Field("seconds", r.seconds);
  w.Key("io");
  w.BeginObject();
  w.Field("sequential_reads", r.io.sequential_reads);
  w.Field("random_reads", r.io.random_reads);
  w.Field("sequential_writes", r.io.sequential_writes);
  w.Field("random_writes", r.io.random_writes);
  w.Field("bytes_read", r.io.bytes_read);
  w.Field("bytes_written", r.io.bytes_written);
  w.EndObject();
  w.Key("counters");
  w.BeginObject();
  w.Field("leaves_visited", r.counters.leaves_visited);
  w.Field("leaves_pruned", r.counters.leaves_pruned);
  w.Field("entries_examined", r.counters.entries_examined);
  w.Field("raw_fetches", r.counters.raw_fetches);
  w.Field("partitions_visited", r.counters.partitions_visited);
  w.Field("partitions_skipped", r.counters.partitions_skipped);
  w.EndObject();
  if (r.has_heatmap) {
    w.Field("access_locality", r.access_locality);
    w.Key("heatmap");
    HeatMapToJson(r.heatmap, &w);
  }
  w.EndObject();
  return w.TakeString();
}

TEST_F(ServiceTest, TypedReportsMatchLegacyBytes) {
  const series::SeriesCollection data = Register("walk", 150);

  // Build (CTree) — byte-identical build report.
  Result<BuildIndexReport> build =
      service_->BuildIndex("ctree", TestSpec(), "walk");
  ASSERT_TRUE(build.ok()) << build.status().ToString();
  EXPECT_EQ(build.value().ToJsonString(), LegacyBuildJson(build.value()));

  // Query with a heat map — byte-identical query report.
  QueryRequest query;
  query.index = "ctree";
  query.query = testutil::NoisyCopy(data, 13, 0.3, 5);
  query.capture_heatmap = true;
  query.heatmap_time_bins = 4;
  query.heatmap_location_bins = 8;
  Result<QueryReport> report = service_->Query(query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().found);
  EXPECT_TRUE(report.value().has_heatmap);
  EXPECT_EQ(report.value().ToJsonString(), LegacyQueryJson(report.value()));

  // Stream: ingest + drain — byte-identical reports.
  VariantSpec tp = TestSpec();
  tp.mode = StreamMode::kTP;
  tp.buffer_entries = 32;
  Result<CreateStreamResponse> created = service_->CreateStream("tp", tp);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  // CreateStream is fully deterministic: pin the exact payload.
  EXPECT_EQ(created.value().ToJsonString(),
            "{\"stream\":\"tp\",\"variant\":\"CTree-TP\"}");

  std::vector<int64_t> timestamps(data.size());
  for (size_t i = 0; i < timestamps.size(); ++i) {
    timestamps[i] = static_cast<int64_t>(i);
  }
  Result<IngestBatchReport> ingest =
      service_->IngestBatch("tp", data, timestamps);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  EXPECT_EQ(ingest.value().ToJsonString(), LegacyIngestJson(ingest.value()));

  Result<DrainStreamReport> drain = service_->DrainStream("tp");
  ASSERT_TRUE(drain.ok()) << drain.status().ToString();
  EXPECT_EQ(drain.value().ToJsonString(), LegacyDrainJson(drain.value()));

  EXPECT_EQ(LegacyIoJson(ingest.value().io),
            [&] {
              JsonWriter w;
              IoStatsToJson(ingest.value().io, &w);
              return w.TakeString();
            }());
}

TEST_F(ServiceTest, LegacyServerWrapperEmitsTypedSerialization) {
  // The legacy string-returning Server must emit exactly what the typed
  // structs serialize to: parse its output back through the typed layer
  // and require byte-for-byte re-serialization.
  service_.reset();
  auto server = Server::Create(root_ + "_srv").TakeValue();
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(120, 32, 9);
  ASSERT_TRUE(server->RegisterDataset("walk", data, nullptr).ok());

  VariantSpec spec = TestSpec();
  const std::string build_json =
      server->BuildIndex("idx", spec, "walk").TakeValue();
  auto build = BuildIndexReport::FromJson(JsonParse(build_json).TakeValue());
  ASSERT_TRUE(build.ok()) << build.status().ToString();
  EXPECT_EQ(build.value().ToJsonString(), build_json);

  QueryRequest query;
  query.index = "idx";
  query.query = testutil::NoisyCopy(data, 3, 0.2, 4);
  const std::string query_json = server->Query(query).TakeValue();
  auto parsed = QueryReport::FromJson(JsonParse(query_json).TakeValue());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ToJsonString(), query_json);

  const std::string list_json = server->ListIndexes();
  auto list = ListIndexesResponse::FromJson(JsonParse(list_json).TakeValue());
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(list.value().ToJsonString(), list_json);

  Scenario scenario;
  scenario.sax = TestSax();
  const std::string rec_json = server->RecommendJson(scenario);
  auto rec = RecommendResponse::FromJson(JsonParse(rec_json).TakeValue());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec.value().ToJsonString(), rec_json);

  std::filesystem::remove_all(root_ + "_srv");
}

// ------------------------------------------------------------ dispatcher

TEST_F(ServiceTest, DispatchCoversEveryMethod) {
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(64, 32, 21);

  RegisterDatasetRequest reg;
  reg.name = "walk";
  reg.data = data;
  Result<std::string> out = service_->Dispatch("register_dataset",
                                               reg.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto reg_resp = RegisterDatasetResponse::FromJson(
      JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(reg_resp.ok());
  EXPECT_EQ(reg_resp.value().series, 64u);
  EXPECT_EQ(reg_resp.value().series_length, 32u);

  BuildIndexRequest build;
  build.index = "idx";
  build.dataset = "walk";
  build.spec = TestSpec();
  out = service_->Dispatch("build_index", build.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto build_report =
      BuildIndexReport::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(build_report.ok());
  EXPECT_EQ(build_report.value().entries, 64u);

  CreateStreamRequest create;
  create.stream = "tp";
  create.spec = TestSpec();
  create.spec.mode = StreamMode::kTP;
  out = service_->Dispatch("create_stream", create.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  IngestBatchRequest ingest;
  ingest.stream = "tp";
  ingest.batch = data;
  ingest.timestamps.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ingest.timestamps[i] = static_cast<int64_t>(i);
  }
  out = service_->Dispatch("ingest_batch", ingest.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto ingest_report =
      IngestBatchReport::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(ingest_report.ok());
  EXPECT_EQ(ingest_report.value().ingested, 64u);

  DrainStreamRequest drain;
  drain.stream = "tp";
  out = service_->Dispatch("drain_stream", drain.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  QueryRequest query;
  query.index = "idx";
  query.query = testutil::NoisyCopy(data, 5, 0.3, 2);
  out = service_->Dispatch("query", query.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto query_report =
      QueryReport::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(query_report.ok());
  EXPECT_TRUE(query_report.value().found);
  // The dispatcher's query answer must agree with brute force over the
  // registered (z-normalized) dataset.
  series::SeriesCollection normalized(data.length());
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<float> buf(data[i].begin(), data[i].end());
    series::ZNormalize(buf);
    normalized.Append(buf);
  }
  std::vector<float> znorm_query = query.query;
  series::ZNormalize(znorm_query);
  auto truth = testutil::BruteForceNearest(normalized, znorm_query);
  EXPECT_NEAR(query_report.value().distance * query_report.value().distance,
              truth.distance_sq, 1e-4);

  QueryBatchRequest batch;
  batch.queries = {query, query};
  QueryRequest bad = query;
  bad.index = "missing";
  batch.queries.push_back(bad);
  out = service_->Dispatch("query_batch", batch.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto batch_resp =
      QueryBatchResponse::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(batch_resp.ok()) << batch_resp.status().ToString();
  ASSERT_EQ(batch_resp.value().results.size(), 3u);
  EXPECT_TRUE(batch_resp.value().results[0].ok);
  EXPECT_TRUE(batch_resp.value().results[1].ok);
  EXPECT_FALSE(batch_resp.value().results[2].ok);
  EXPECT_EQ(batch_resp.value().results[2].error.code, "not_found");

  RecommendRequest recommend;
  recommend.scenario.sax = TestSax();
  out = service_->Dispatch("recommend", recommend.ToJsonString());
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  out = service_->Dispatch("list_indexes", "");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto list = ListIndexesResponse::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().indexes.size(), 2u);

  out = service_->Dispatch("drop_index", "{\"index\":\"tp\"}");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  out = service_->Dispatch("drop_index", "{\"index\":\"idx\"}");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  out = service_->Dispatch("drop_dataset", "{\"dataset\":\"walk\"}");
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  out = service_->Dispatch("list_indexes", "");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "[]");
}

TEST_F(ServiceTest, DispatchUnknownMethodAndBadParams) {
  Result<std::string> out = service_->Dispatch("explode", "{}");
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
  EXPECT_NE(out.status().message().find("unknown method"),
            std::string::npos);

  out = service_->Dispatch("query", "{\"index\":");
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);

  out = service_->Dispatch("list_indexes", "{\"verbose\":true}");
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ validation

TEST_F(ServiceTest, QueryValidationAtBoundary) {
  const series::SeriesCollection data = Register("walk", 80);
  ASSERT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());

  QueryRequest query;
  query.index = "idx";

  // Empty query vector.
  Result<QueryReport> r = service_->Query(query);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("must not be empty"),
            std::string::npos);

  // Length mismatch.
  query.query.assign(16, 0.5f);
  r = service_->Query(query);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("series length"), std::string::npos);

  // Unknown index.
  query.query.assign(32, 0.5f);
  query.index = "nope";
  r = service_->Query(query);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  // Non-positive approx_candidates.
  query.index = "idx";
  query.approx_candidates = 0;
  r = service_->Query(query);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("approx_candidates"),
            std::string::npos);
  query.approx_candidates = -3;
  EXPECT_EQ(service_->Query(query).status().code(),
            StatusCode::kInvalidArgument);

  // Inverted time window (begin > end). Used to be accepted and silently
  // scan nothing; now a structured invalid_argument at both boundaries.
  query.approx_candidates = 10;
  query.window = core::TimeWindow{50, 10};
  r = service_->Query(query);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("begin must be <= end"),
            std::string::npos);
  {
    QueryRequest wire;
    wire.index = "idx";
    wire.query.assign(32, 0.5f);
    wire.window = core::TimeWindow{50, 10};
    auto parsed =
        QueryRequest::FromJson(JsonParse(wire.ToJsonString()).TakeValue());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("begin must be <= end"),
              std::string::npos);
  }
  // A degenerate single-instant window (begin == end) stays legal.
  query.window = core::TimeWindow{10, 10};
  EXPECT_TRUE(service_->Query(query).ok());
  query.window.reset();

  // Zero heat-map bins.
  query.capture_heatmap = true;
  query.heatmap_time_bins = 0;
  EXPECT_EQ(service_->Query(query).status().code(),
            StatusCode::kInvalidArgument);

  // A valid request still works after all the rejections.
  query.capture_heatmap = false;
  query.heatmap_time_bins = 16;
  query.query = testutil::NoisyCopy(data, 1, 0.2, 1);
  EXPECT_TRUE(service_->Query(query).ok());
}

TEST_F(ServiceTest, IngestValidationAtBoundary) {
  VariantSpec tp = TestSpec();
  tp.mode = StreamMode::kTP;
  ASSERT_TRUE(service_->CreateStream("tp", tp).ok());

  // Wrong-length batch.
  series::SeriesCollection bad = testutil::RandomWalkCollection(2, 16, 1);
  Result<IngestBatchReport> r =
      service_->IngestBatch("tp", bad, {0, 1});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("series length"), std::string::npos);

  // Timestamp count mismatch.
  series::SeriesCollection good = testutil::RandomWalkCollection(2, 32, 1);
  r = service_->IngestBatch("tp", good, {0});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Unknown stream; static indexes are not streams.
  r = service_->IngestBatch("nope", good, {0, 1});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ServiceTest, HostileNamesRejectedAtBoundary) {
  Register("walk", 10);

  // Wire-supplied names become path components under the service root
  // ("<root>/idx_<name>"); anything that could escape it must be rejected
  // before touching the filesystem.
  // "a/../../escape_sentinel" is the real traversal shape: the "idx_"
  // prefix fuses onto the first component, so "<root>/idx_a/../../x"
  // resolves to a sibling of the root.
  const std::vector<std::string> hostile = {
      "",    ".",    "..",   "../escape",
      "a/b", "a\\b", "/x",   "a b",
      "a\nb", "a/../../escape_sentinel", std::string(129, 'a')};
  for (const std::string& name : hostile) {
    EXPECT_EQ(ValidateName(name, "index").code(),
              StatusCode::kInvalidArgument)
        << "'" << name << "'";
    EXPECT_EQ(service_->BuildIndex(name, TestSpec(), "walk").status().code(),
              StatusCode::kInvalidArgument)
        << "'" << name << "'";
    EXPECT_EQ(service_->CreateStream(name, TestSpec()).status().code(),
              StatusCode::kInvalidArgument)
        << "'" << name << "'";
    EXPECT_EQ(service_
                  ->RegisterDataset(name,
                                    testutil::RandomWalkCollection(2, 32, 3),
                                    nullptr)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << "'" << name << "'";
  }
  // Nothing escaped the root (without validation the traversal name
  // would have created this sibling of root_)...
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(root_).parent_path() / "escape_sentinel"));
  // ...and nothing was created inside it either.
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    EXPECT_NE(entry.path().filename().string().rfind("idx_", 0), 0u)
        << entry.path();
  }
  EXPECT_EQ(service_->ListIndexes().indexes.size(), 0u);

  // The full allowed charset works end to end.
  EXPECT_TRUE(ValidateName("ok-Name_1.v2", "index").ok());
  EXPECT_TRUE(service_->BuildIndex("ok-Name_1.v2", TestSpec(), "walk").ok());
}

TEST_F(ServiceTest, OversizedDeclaredAllocationsRejected) {
  // An empty series matrix with a huge declared length allocates nothing:
  // the cap turns it into InvalidArgument instead of std::bad_alloc.
  Status s = ParseError<RegisterDatasetRequest>(
      "{\"name\":\"d\",\"series\":[],\"series_length\":1000000000000}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("exceeds the maximum"), std::string::npos);
  Result<std::string> out = service_->Dispatch(
      "register_dataset",
      "{\"name\":\"d\",\"series\":[],\"series_length\":1000000000000}");
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);

  // Heat-map bin counts are capped per axis before the counts grid is
  // allocated, both in query validation...
  const series::SeriesCollection data = Register("walk", 20);
  ASSERT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());
  QueryRequest query;
  query.index = "idx";
  query.query = testutil::NoisyCopy(data, 1, 0.2, 1);
  query.capture_heatmap = true;
  query.heatmap_time_bins = 1;
  query.heatmap_location_bins = 1u << 20;
  Result<QueryReport> r = service_->Query(query);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("per axis"), std::string::npos);

  // VariantSpec knobs that size buffers or spawn threads are
  // range-checked at parse rather than narrowed or honored blindly.
  s = ParseError<BuildIndexRequest>(
      "{\"index\":\"i\",\"dataset\":\"d\","
      "\"spec\":{\"construction_threads\":1000000}}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  s = ParseError<BuildIndexRequest>(
      "{\"index\":\"i\",\"dataset\":\"d\","
      "\"spec\":{\"buffer_entries\":4294967296}}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // 2^32+1 used to silently truncate to approx_candidates == 1.
  s = ParseError<QueryRequest>(
      "{\"index\":\"a\",\"query\":[1.0],\"approx_candidates\":4294967297}");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // ...and when parsing a heat map off the wire (one declared row, a
  // declared 1e12-cell width).
  Result<JsonValue> heat = JsonParse(
      "{\"time_bins\":1,\"location_bins\":1000000000000,"
      "\"total_events\":0,\"distinct_pages\":0,\"distinct_files\":0,"
      "\"max_count\":0,\"cells\":[[]]}");
  ASSERT_TRUE(heat.ok());
  EXPECT_EQ(HeatMapFromJson(heat.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, ConcurrentBuildsDoNotBlockQueries) {
  const series::SeriesCollection data = Register("walk", 120);
  ASSERT_TRUE(service_->BuildIndex("base", TestSpec(), "walk").ok());

  // Two builds run while queries and listings hammer the published index;
  // builds hold the registry lock only at their reserve/publish edges, so
  // everything must proceed and succeed (TSan checks the handoff).
  std::thread b1([&] {
    EXPECT_TRUE(service_->BuildIndex("one", TestSpec(), "walk").ok());
  });
  std::thread b2([&] {
    VariantSpec tp = TestSpec();
    tp.mode = StreamMode::kTP;
    EXPECT_TRUE(service_->CreateStream("two", tp).ok());
  });
  for (int i = 0; i < 50; ++i) {
    QueryRequest query;
    query.index = "base";
    query.query = testutil::NoisyCopy(data, i % 10, 0.3, i);
    EXPECT_TRUE(service_->Query(query).ok());
    // ListIndexes skips handles still building instead of touching them.
    for (const auto& info : service_->ListIndexes().indexes) {
      EXPECT_TRUE(info.name == "base" || info.name == "one" ||
                  info.name == "two");
    }
  }
  b1.join();
  b2.join();
  EXPECT_EQ(service_->ListIndexes().indexes.size(), 3u);
  EXPECT_TRUE(service_->DropIndex("one").ok());
}

TEST_F(ServiceTest, FailedBuildOrCreateLeavesNoGhostHandle) {
  Register("walk", 40);

  // Invalid spec that passes the dataset-length check but fails factory
  // validation — the handle registered before the factory ran must be
  // fully discarded, or list/query/drop on it would crash the service.
  VariantSpec bad = TestSpec();
  bad.num_shards = 0;
  EXPECT_FALSE(service_->BuildIndex("idx", bad, "walk").ok());
  EXPECT_EQ(service_->ListIndexes().indexes.size(), 0u);
  EXPECT_EQ(service_->index_storage("idx"), nullptr);
  QueryRequest query;
  query.index = "idx";
  query.query.assign(32, 0.5f);
  EXPECT_EQ(service_->Query(query).status().code(), StatusCode::kNotFound);
  // The name (and its directory) stays reusable.
  EXPECT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());

  // Same for a stream whose spec is not a variant-matrix cell.
  VariantSpec bad_stream = TestSpec();
  bad_stream.mode = StreamMode::kBTP;  // BTP requires CLSM
  EXPECT_FALSE(service_->CreateStream("s", bad_stream).ok());
  EXPECT_EQ(service_->ListIndexes().indexes.size(), 1u);
  EXPECT_EQ(service_->Dispatch("list_indexes", "").ok(), true);
  VariantSpec good_stream = TestSpec();
  good_stream.mode = StreamMode::kTP;
  EXPECT_TRUE(service_->CreateStream("s", good_stream).ok());
}

TEST_F(ServiceTest, DispatchTableCoversEveryAdvertisedMethod) {
  // Methods() and the dispatch table must agree: every advertised name
  // routes (no "unknown method" error), even if the params are invalid.
  for (const std::string& method : Service::Methods()) {
    Result<std::string> out = service_->Dispatch(method, "{}");
    if (!out.ok()) {
      EXPECT_EQ(out.status().message().find("unknown method"),
                std::string::npos)
          << method;
    }
  }
}

TEST_F(ServiceTest, ServerStatsOnTheWire) {
  // Fresh service: both front-door features off, counters zero.
  Result<std::string> out = service_->Dispatch("server_stats", "{}");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto stats =
      ServerStatsResponse::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().cache_enabled);
  EXPECT_FALSE(stats.value().quota_enabled);
  EXPECT_EQ(stats.value().cache_hits, 0u);

  // Takes no parameters, like list_indexes.
  EXPECT_EQ(service_->Dispatch("server_stats", "{\"x\":1}").status().code(),
            StatusCode::kInvalidArgument);

  // With the cache on, a repeated query shows up as one miss + one hit.
  service_->EnableQueryCache(QueryCacheOptions{});
  const series::SeriesCollection data = Register("walk", 64);
  ASSERT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());
  QueryRequest query;
  query.index = "idx";
  query.query = testutil::NoisyCopy(data, 3, 0.2, 9);
  ASSERT_TRUE(service_->Query(query).ok());
  ASSERT_TRUE(service_->Query(query).ok());
  out = service_->Dispatch("server_stats", "");
  ASSERT_TRUE(out.ok());
  stats = ServerStatsResponse::FromJson(JsonParse(out.value()).TakeValue());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().cache_enabled);
  EXPECT_EQ(stats.value().cache_hits, 1u);
  EXPECT_EQ(stats.value().cache_misses, 1u);
  EXPECT_EQ(stats.value().cache_entries, 1u);

  // Round trip through the typed struct stays byte-identical.
  EXPECT_EQ(stats.value().ToJsonString(), out.value());
}

// ------------------------------------------------------- drop lifecycle

TEST_F(ServiceTest, DropIndexReleasesStorage) {
  Register("walk", 100);
  ASSERT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());
  const std::string dir = service_->index_storage("idx")->directory();
  EXPECT_TRUE(std::filesystem::exists(dir));

  Result<DropIndexResponse> dropped = service_->DropIndex("idx");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_TRUE(dropped.value().dropped);
  EXPECT_FALSE(dropped.value().streaming);
  EXPECT_EQ(dropped.value().entries, 100u);
  EXPECT_GT(dropped.value().reclaimed_bytes, 0u);
  EXPECT_FALSE(std::filesystem::exists(dir));
  EXPECT_EQ(service_->static_index("idx"), nullptr);
  EXPECT_EQ(service_->ListIndexes().indexes.size(), 0u);

  // Dropped name is reusable.
  ASSERT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());
  EXPECT_EQ(service_->ListIndexes().indexes.size(), 1u);

  // Double drop reports not_found.
  ASSERT_TRUE(service_->DropIndex("idx").ok());
  EXPECT_EQ(service_->DropIndex("idx").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceTest, DropStreamingIndexDrainsFirst) {
  VariantSpec spec = TestSpec();
  spec.mode = StreamMode::kTP;
  spec.buffer_entries = 16;
  spec.async_ingest = true;
  ASSERT_TRUE(service_->CreateStream("s", spec).ok());

  series::SeriesCollection data = testutil::RandomWalkCollection(120, 32, 3);
  std::vector<int64_t> timestamps(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    timestamps[i] = static_cast<int64_t>(i);
  }
  ASSERT_TRUE(service_->IngestBatch("s", data, timestamps).ok());

  const std::string dir = service_->index_storage("s")->directory();
  Result<DropIndexResponse> dropped = service_->DropIndex("s");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_TRUE(dropped.value().streaming);
  EXPECT_EQ(dropped.value().entries, 120u);
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST_F(ServiceTest, DropDatasetForgetsOnlyTheDataset) {
  Register("walk", 60);
  ASSERT_TRUE(service_->BuildIndex("idx", TestSpec(), "walk").ok());

  Result<DropDatasetResponse> dropped = service_->DropDataset("walk");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value().series, 60u);

  // The index keeps answering; rebuilding from the gone dataset fails.
  QueryRequest query;
  query.index = "idx";
  query.query.assign(32, 0.25f);
  EXPECT_TRUE(service_->Query(query).ok());
  EXPECT_EQ(
      service_->BuildIndex("idx2", TestSpec(), "walk").status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(service_->DropDataset("walk").status().code(),
            StatusCode::kNotFound);
}

// ----------------------------------------------------------- error model

TEST(ApiErrorTest, StatusMapping) {
  EXPECT_STREQ(StatusCodeToApiCode(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeToApiCode(StatusCode::kAlreadyExists),
               "already_exists");
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kNotFound), 404);
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kAlreadyExists), 409);
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kNotSupported), 501);
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kResourceExhausted), 429);
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kInternal), 500);
  EXPECT_STREQ(StatusCodeToApiCode(StatusCode::kUnauthenticated),
               "unauthenticated");
  EXPECT_EQ(StatusCodeToHttpStatus(StatusCode::kUnauthenticated), 401);

  const ApiError error =
      ApiError::FromStatus(Status::NotFound("index 'x' not found"));
  EXPECT_EQ(error.ToJsonString(),
            "{\"error\":{\"api_version\":1,\"code\":\"not_found\","
            "\"message\":\"index 'x' not found\"}}");
}

}  // namespace
}  // namespace api
}  // namespace palm
}  // namespace coconut
