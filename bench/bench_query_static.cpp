// E2/F2 (Scenario 1 query phase): approximate and exact query cost across
// families on the same static collection, plus the access-locality number
// behind the heat map. Expected shape: CTree answers with fewer I/Os and
// far higher locality than ADS+; materialization removes raw fetches.
//
// Also measures the service-layer dispatch overhead of the API redesign
// (BM_Dispatch*): the same exact query through (a) the typed
// api::Service::Query path, (b) the legacy string-returning
// palm::Server::Query wrapper, and (c) the full JSON-RPC
// Service::Dispatch round trip (parse request JSON -> typed call ->
// serialize response). (c) minus (a) is what the wire format costs; CI
// uploads these as a JSON artifact to track the tax over time.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/bench_util.h"
#include "palm/heatmap.h"
#include "palm/server.h"
#include "series/kernels.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kCount = 16'000;
constexpr int kQuerySeed = 1234;

struct PreparedIndex {
  Arena arena;
  std::unique_ptr<core::DataSeriesIndex> index;
};

PreparedIndex* Prepare(palm::IndexFamily family, bool materialized) {
  // Cache one built index per (family, materialized) across benchmark runs.
  static std::map<std::pair<int, bool>, std::unique_ptr<PreparedIndex>> cache;
  auto key = std::make_pair(static_cast<int>(family), materialized);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto prepared = std::make_unique<PreparedIndex>();
    prepared->arena = Arena::Make("bench_query", 256);
    const auto& collection = AstroCollection(kCount);
    prepared->arena.FillRaw(collection);
    palm::VariantSpec spec;
    spec.sax = BenchSax();
    spec.family = family;
    spec.materialized = materialized;
    spec.buffer_entries = 4096;
    prepared->index = BuildStatic(spec, &prepared->arena, collection);
    it = cache.emplace(key, std::move(prepared)).first;
  }
  return it->second.get();
}

void RunQuery(benchmark::State& state, palm::IndexFamily family,
              bool materialized, bool exact) {
  PreparedIndex* prepared = Prepare(family, materialized);
  const auto& collection = AstroCollection(kCount);
  auto queries = workload::MakeNoisyQueries(collection, 64, 0.4, kQuerySeed);

  core::QueryCounters counters;
  storage::IoStats io;
  size_t q = 0;
  prepared->arena.storage->tracker()->Clear();
  prepared->arena.storage->tracker()->Enable();
  const storage::IoStats before = *prepared->arena.storage->io_stats();
  for (auto _ : state) {
    auto result =
        exact ? prepared->index->ExactSearch(queries[q % queries.size()], {},
                                             &counters)
              : prepared->index->ApproxSearch(queries[q % queries.size()], {},
                                              &counters);
    benchmark::DoNotOptimize(result.value().distance_sq);
    ++q;
  }
  io = prepared->arena.storage->io_stats()->Since(before);
  prepared->arena.storage->tracker()->Disable();

  const double per_query = q > 0 ? 1.0 / q : 0.0;
  state.counters["reads_per_query"] =
      static_cast<double>(io.total_reads()) * per_query;
  state.counters["raw_fetches_per_query"] =
      static_cast<double>(counters.raw_fetches) * per_query;
  state.counters["leaves_pruned_per_query"] =
      static_cast<double>(counters.leaves_pruned) * per_query;
  state.counters["access_locality"] =
      palm::AccessLocality(prepared->arena.storage->tracker()->events());
  // Which series::kernels tier scored the distances (COCONUT_FORCE_KERNEL
  // pins it), so runs under different dispatch modes stay comparable.
  state.SetLabel(series::kernels::IsaName(series::kernels::ActiveIsa()));
}

#define QUERY_BENCH(name, family, mat, exact)          \
  void name(benchmark::State& state) {                 \
    RunQuery(state, family, mat, exact);               \
  }                                                    \
  BENCHMARK(name)->Unit(benchmark::kMillisecond)

QUERY_BENCH(BM_Approx_ADS, palm::IndexFamily::kAds, false, false);
QUERY_BENCH(BM_Approx_CTree, palm::IndexFamily::kCTree, false, false);
QUERY_BENCH(BM_Approx_CLSM, palm::IndexFamily::kClsm, false, false);
QUERY_BENCH(BM_Exact_ADS, palm::IndexFamily::kAds, false, true);
QUERY_BENCH(BM_Exact_CTree, palm::IndexFamily::kCTree, false, true);
QUERY_BENCH(BM_Exact_CLSM, palm::IndexFamily::kClsm, false, true);
QUERY_BENCH(BM_Exact_ADSFull, palm::IndexFamily::kAds, true, true);
QUERY_BENCH(BM_Exact_CTreeFull, palm::IndexFamily::kCTree, true, true);
QUERY_BENCH(BM_Exact_CLSMFull, palm::IndexFamily::kClsm, true, true);

// ------------------------------------------------- dispatch overhead

constexpr size_t kDispatchCount = 4'000;

/// One legacy Server (which owns the typed Service) with a built CTree
/// index over a small astronomy collection, shared across the dispatch
/// benchmarks.
palm::Server* DispatchServer() {
  static std::unique_ptr<palm::Server> server = [] {
    const std::string root =
        std::filesystem::temp_directory_path().string() +
        "/bench_dispatch_server";
    std::filesystem::remove_all(root);
    auto srv = palm::Server::Create(root).TakeValue();
    const auto& collection = AstroCollection(kDispatchCount);
    if (!srv->RegisterDataset("astro", collection, nullptr).ok()) {
      std::abort();
    }
    palm::VariantSpec spec;
    spec.sax = BenchSax();
    spec.family = palm::IndexFamily::kCTree;
    spec.buffer_entries = 4096;
    if (!srv->BuildIndex("ctree", spec, "astro").ok()) std::abort();
    return srv;
  }();
  return server.get();
}

std::vector<palm::api::QueryRequest> DispatchQueries() {
  const auto& collection = AstroCollection(kDispatchCount);
  auto raw = workload::MakeNoisyQueries(collection, 32, 0.4, kQuerySeed);
  std::vector<palm::api::QueryRequest> queries;
  queries.reserve(raw.size());
  for (auto& q : raw) {
    palm::api::QueryRequest request;
    request.index = "ctree";
    request.query = std::move(q);
    queries.push_back(std::move(request));
  }
  return queries;
}

/// (a) Typed path: request struct in, report struct out — no JSON at all.
void BM_Dispatch_Typed(benchmark::State& state) {
  palm::api::Service* service = DispatchServer()->service();
  const auto queries = DispatchQueries();
  size_t q = 0;
  for (auto _ : state) {
    auto report = service->Query(queries[q % queries.size()]);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report.value().distance);
    ++q;
  }
}
BENCHMARK(BM_Dispatch_Typed)->Unit(benchmark::kMillisecond);

/// (b) Legacy path: the pre-redesign contract — struct in, JSON string
/// out (typed call + response serialization).
void BM_Dispatch_Legacy(benchmark::State& state) {
  palm::Server* server = DispatchServer();
  const auto queries = DispatchQueries();
  size_t q = 0;
  for (auto _ : state) {
    auto json = server->Query(queries[q % queries.size()]);
    if (!json.ok()) std::abort();
    benchmark::DoNotOptimize(json.value().size());
    ++q;
  }
}
BENCHMARK(BM_Dispatch_Legacy)->Unit(benchmark::kMillisecond);

/// (c) Wire path: JSON params in, JSON response out through
/// Service::Dispatch — what one HTTP request costs minus the socket.
void BM_Dispatch_Json(benchmark::State& state) {
  palm::api::Service* service = DispatchServer()->service();
  const auto queries = DispatchQueries();
  std::vector<std::string> params;
  params.reserve(queries.size());
  for (const auto& query : queries) params.push_back(query.ToJsonString());
  size_t q = 0;
  for (auto _ : state) {
    auto json = service->Dispatch("query", params[q % params.size()]);
    if (!json.ok()) std::abort();
    benchmark::DoNotOptimize(json.value().size());
    ++q;
  }
}
BENCHMARK(BM_Dispatch_Json)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
