// E2/F2 (Scenario 1 query phase): approximate and exact query cost across
// families on the same static collection, plus the access-locality number
// behind the heat map. Expected shape: CTree answers with fewer I/Os and
// far higher locality than ADS+; materialization removes raw fetches.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "palm/heatmap.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kCount = 16'000;
constexpr int kQuerySeed = 1234;

struct PreparedIndex {
  Arena arena;
  std::unique_ptr<core::DataSeriesIndex> index;
};

PreparedIndex* Prepare(palm::IndexFamily family, bool materialized) {
  // Cache one built index per (family, materialized) across benchmark runs.
  static std::map<std::pair<int, bool>, std::unique_ptr<PreparedIndex>> cache;
  auto key = std::make_pair(static_cast<int>(family), materialized);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto prepared = std::make_unique<PreparedIndex>();
    prepared->arena = Arena::Make("bench_query", 256);
    const auto& collection = AstroCollection(kCount);
    prepared->arena.FillRaw(collection);
    palm::VariantSpec spec;
    spec.sax = BenchSax();
    spec.family = family;
    spec.materialized = materialized;
    spec.buffer_entries = 4096;
    prepared->index = BuildStatic(spec, &prepared->arena, collection);
    it = cache.emplace(key, std::move(prepared)).first;
  }
  return it->second.get();
}

void RunQuery(benchmark::State& state, palm::IndexFamily family,
              bool materialized, bool exact) {
  PreparedIndex* prepared = Prepare(family, materialized);
  const auto& collection = AstroCollection(kCount);
  auto queries = workload::MakeNoisyQueries(collection, 64, 0.4, kQuerySeed);

  core::QueryCounters counters;
  storage::IoStats io;
  size_t q = 0;
  prepared->arena.storage->tracker()->Clear();
  prepared->arena.storage->tracker()->Enable();
  const storage::IoStats before = *prepared->arena.storage->io_stats();
  for (auto _ : state) {
    auto result =
        exact ? prepared->index->ExactSearch(queries[q % queries.size()], {},
                                             &counters)
              : prepared->index->ApproxSearch(queries[q % queries.size()], {},
                                              &counters);
    benchmark::DoNotOptimize(result.value().distance_sq);
    ++q;
  }
  io = prepared->arena.storage->io_stats()->Since(before);
  prepared->arena.storage->tracker()->Disable();

  const double per_query = q > 0 ? 1.0 / q : 0.0;
  state.counters["reads_per_query"] =
      static_cast<double>(io.total_reads()) * per_query;
  state.counters["raw_fetches_per_query"] =
      static_cast<double>(counters.raw_fetches) * per_query;
  state.counters["leaves_pruned_per_query"] =
      static_cast<double>(counters.leaves_pruned) * per_query;
  state.counters["access_locality"] =
      palm::AccessLocality(prepared->arena.storage->tracker()->events());
}

#define QUERY_BENCH(name, family, mat, exact)          \
  void name(benchmark::State& state) {                 \
    RunQuery(state, family, mat, exact);               \
  }                                                    \
  BENCHMARK(name)->Unit(benchmark::kMillisecond)

QUERY_BENCH(BM_Approx_ADS, palm::IndexFamily::kAds, false, false);
QUERY_BENCH(BM_Approx_CTree, palm::IndexFamily::kCTree, false, false);
QUERY_BENCH(BM_Approx_CLSM, palm::IndexFamily::kClsm, false, false);
QUERY_BENCH(BM_Exact_ADS, palm::IndexFamily::kAds, false, true);
QUERY_BENCH(BM_Exact_CTree, palm::IndexFamily::kCTree, false, true);
QUERY_BENCH(BM_Exact_CLSM, palm::IndexFamily::kClsm, false, true);
QUERY_BENCH(BM_Exact_ADSFull, palm::IndexFamily::kAds, true, true);
QUERY_BENCH(BM_Exact_CTreeFull, palm::IndexFamily::kCTree, true, true);
QUERY_BENCH(BM_Exact_CLSMFull, palm::IndexFamily::kClsm, true, true);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
