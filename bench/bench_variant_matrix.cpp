// F1 (Figure 1): every cell of the variant matrix builds and answers
// queries — the rows behind the GUI's side-by-side comparison of
// construction speed, storage consumption and query performance.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "palm/factory.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kCount = 8'000;
constexpr size_t kQueries = 8;

void RunStaticVariant(benchmark::State& state, palm::IndexFamily family,
                      bool materialized) {
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = family;
  spec.materialized = materialized;
  spec.buffer_entries = 2048;
  const auto& collection = AstroCollection(kCount);

  double build_s = 0;
  double query_ms = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_matrix", 256);
    arena.FillRaw(collection);
    WallTimer build_timer;
    auto index = BuildStatic(spec, &arena, collection);
    build_s = build_timer.ElapsedSeconds();
    bytes = index->index_bytes();

    auto queries = workload::MakeNoisyQueries(collection, kQueries, 0.4, 3);
    WallTimer query_timer;
    for (const auto& query : queries) {
      benchmark::DoNotOptimize(
          index->ExactSearch(query, {}, nullptr).value().distance_sq);
    }
    query_ms = query_timer.ElapsedMillis() / kQueries;
  }
  state.SetLabel(palm::VariantName(spec));
  state.counters["build_seconds"] = build_s;
  state.counters["index_mib"] = bytes / 1048576.0;
  state.counters["exact_query_ms"] = query_ms;
}

void RunStreamingVariant(benchmark::State& state, palm::IndexFamily family,
                         palm::StreamMode mode, bool materialized) {
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = family;
  spec.mode = mode;
  spec.materialized = materialized;
  spec.buffer_entries = 1024;
  spec.memory_budget_bytes = 512 << 10;
  const auto& collection = AstroCollection(kCount);

  double ingest_s = 0;
  double query_ms = 0;
  size_t partitions = 0;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_matrix_s", 256);
    arena.FillRaw(collection);
    auto index = palm::CreateStreamingIndex(spec, arena.storage.get(),
                                            "stream", nullptr,
                                            arena.raw.get())
                     .TakeValue();
    WallTimer ingest_timer;
    for (size_t i = 0; i < collection.size(); ++i) {
      if (!index->Ingest(i, collection[i], static_cast<int64_t>(i)).ok()) {
        std::abort();
      }
    }
    ingest_s = ingest_timer.ElapsedSeconds();

    core::SearchOptions opts;
    opts.window = core::TimeWindow{static_cast<int64_t>(kCount / 2),
                                   static_cast<int64_t>(kCount)};
    auto queries = workload::MakeNoisyQueries(collection, kQueries, 0.4, 4);
    WallTimer query_timer;
    for (const auto& query : queries) {
      benchmark::DoNotOptimize(
          index->ExactSearch(query, opts, nullptr).value().found);
    }
    query_ms = query_timer.ElapsedMillis() / kQueries;
    partitions = index->num_partitions();
  }
  state.SetLabel(palm::VariantName(spec));
  state.counters["ingest_seconds"] = ingest_s;
  state.counters["window_query_ms"] = query_ms;
  state.counters["partitions"] = static_cast<double>(partitions);
}

#define STATIC_CELL(name, family, mat)                                \
  void name(benchmark::State& state) {                                \
    RunStaticVariant(state, family, mat);                             \
  }                                                                   \
  BENCHMARK(name)->Iterations(1)->Unit(benchmark::kMillisecond)

STATIC_CELL(BM_Matrix_ADS, palm::IndexFamily::kAds, false);
STATIC_CELL(BM_Matrix_ADSFull, palm::IndexFamily::kAds, true);
STATIC_CELL(BM_Matrix_CTree, palm::IndexFamily::kCTree, false);
STATIC_CELL(BM_Matrix_CTreeFull, palm::IndexFamily::kCTree, true);
STATIC_CELL(BM_Matrix_CLSM, palm::IndexFamily::kClsm, false);
STATIC_CELL(BM_Matrix_CLSMFull, palm::IndexFamily::kClsm, true);

#define STREAM_CELL(name, family, mode, mat)                          \
  void name(benchmark::State& state) {                                \
    RunStreamingVariant(state, family, mode, mat);                    \
  }                                                                   \
  BENCHMARK(name)->Iterations(1)->Unit(benchmark::kMillisecond)

STREAM_CELL(BM_Matrix_AdsPP, palm::IndexFamily::kAds, palm::StreamMode::kPP,
            false);
STREAM_CELL(BM_Matrix_AdsFullPP, palm::IndexFamily::kAds,
            palm::StreamMode::kPP, true);
STREAM_CELL(BM_Matrix_AdsTP, palm::IndexFamily::kAds, palm::StreamMode::kTP,
            false);
STREAM_CELL(BM_Matrix_AdsFullTP, palm::IndexFamily::kAds,
            palm::StreamMode::kTP, true);
STREAM_CELL(BM_Matrix_CTreePP, palm::IndexFamily::kCTree,
            palm::StreamMode::kPP, false);
STREAM_CELL(BM_Matrix_CTreeFullPP, palm::IndexFamily::kCTree,
            palm::StreamMode::kPP, true);
STREAM_CELL(BM_Matrix_CTreeTP, palm::IndexFamily::kCTree,
            palm::StreamMode::kTP, false);
STREAM_CELL(BM_Matrix_CTreeFullTP, palm::IndexFamily::kCTree,
            palm::StreamMode::kTP, true);
STREAM_CELL(BM_Matrix_ClsmBTP, palm::IndexFamily::kClsm,
            palm::StreamMode::kBTP, false);
STREAM_CELL(BM_Matrix_ClsmFullBTP, palm::IndexFamily::kClsm,
            palm::StreamMode::kBTP, true);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
