// Distributed front-door bench: (A) bulk-ingest framing — the same batch
// stream pushed through the coordinator's JSON ingest_batch and through
// the CRC-checked binary ingest_batch_bin framing, comparing throughput,
// bytes on the wire and process CPU; (B) query fan-out cost — closed-loop
// query p50/p99 against a single-process service versus a coordinator
// scatter-gathering over K in-process shard servers at K in {1,2,4}.
// Everything (client, coordinator, shards) runs in this one process over
// real loopback sockets, so RUSAGE_SELF captures the full path's CPU.
//
//   bench_dist --ingest-batches=48 --batch=64 --queries=300 \
//              --out=BENCH_dist.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "common/json.h"
#include "dist/binary_codec.h"
#include "dist/coordinator.h"
#include "dist/service_endpoint.h"
#include "dist/topology.h"
#include "palm/api.h"
#include "palm/http_client.h"
#include "palm/http_server.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

constexpr size_t kSeriesLength = 128;
constexpr size_t kDatasetSeries = 2048;
constexpr size_t kQueryPool = 64;

struct Options {
  size_t ingest_batches = 48;
  size_t batch = 64;
  size_t queries = 300;
  std::string out = "BENCH_dist.json";
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                       : nullptr;
    };
    if (const char* v = value("--ingest-batches=")) {
      options.ingest_batches = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--batch=")) {
      options.batch = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--queries=")) {
      options.queries = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--out=")) {
      options.out = v;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

series::SaxConfig BenchSax() {
  return series::SaxConfig{.series_length = kSeriesLength, .num_segments = 16,
                           .bits_per_segment = 8};
}

palm::VariantSpec StreamSpec(size_t num_shards) {
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.num_shards = num_shards;
  spec.family = palm::IndexFamily::kCTree;
  spec.mode = palm::StreamMode::kTP;
  spec.buffer_entries = 256;
  spec.async_ingest = true;
  return spec;
}

double CpuSeconds() {
  rusage usage{};
  ::getrusage(RUSAGE_SELF, &usage);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// One coordinator over `k` in-process shard servers, all fronted by real
/// loopback HTTP.
struct Cluster {
  struct Shard {
    std::unique_ptr<palm::api::Service> service;
    std::unique_ptr<palm::dist::ServiceEndpoint> endpoint;
    std::unique_ptr<palm::HttpServer> server;
  };
  std::vector<Shard> shards;
  std::unique_ptr<palm::dist::Coordinator> coordinator;
  std::unique_ptr<palm::HttpServer> front;

  uint16_t port() const { return front->port(); }
};

std::string FreshRoot(const std::string& name) {
  const std::string root = std::filesystem::temp_directory_path().string() +
                           "/bench_dist_" +
                           std::to_string(static_cast<unsigned>(::getpid())) +
                           "/" + name;
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  return root;
}

Cluster MakeCluster(size_t k, const std::string& name, bool binary_ingest) {
  Cluster cluster;
  palm::dist::CoordinatorOptions options;
  options.binary_ingest = binary_ingest;
  for (size_t s = 0; s < k; ++s) {
    Cluster::Shard shard;
    shard.service =
        palm::api::Service::Create(FreshRoot(name + "/shard" + std::to_string(s)))
            .TakeValue();
    shard.endpoint =
        std::make_unique<palm::dist::ServiceEndpoint>(shard.service.get());
    shard.server =
        palm::HttpServer::Start(shard.endpoint.get(), {}).TakeValue();
    options.shards.push_back(
        palm::dist::ShardEndpoint{"127.0.0.1", shard.server->port()});
    cluster.shards.push_back(std::move(shard));
  }
  cluster.coordinator =
      palm::dist::Coordinator::Create(std::move(options)).TakeValue();
  cluster.front =
      palm::HttpServer::Start(cluster.coordinator.get(), {}).TakeValue();
  return cluster;
}

struct IngestResult {
  std::string framing;
  uint64_t batches = 0;
  uint64_t series = 0;
  uint64_t wire_bytes = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double series_per_second = 0.0;
};

/// Pushes the same deterministic batch stream through one framing.
IngestResult RunIngest(const Options& options, bool binary) {
  const std::string framing = binary ? "binary" : "json";
  Cluster cluster = MakeCluster(2, "ingest_" + framing, binary);

  palm::api::CreateStreamRequest create;
  create.stream = "live";
  create.spec = StreamSpec(2);
  if (auto r = cluster.coordinator->CreateStream(create); !r.ok()) {
    std::fprintf(stderr, "create_stream: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }

  // Pre-encode every body so the timed loop measures the wire and the
  // server-side decode, not client serialization.
  std::vector<std::string> bodies;
  bodies.reserve(options.ingest_batches);
  uint64_t wire_bytes = 0;
  for (size_t b = 0; b < options.ingest_batches; ++b) {
    palm::api::IngestBatchRequest ingest;
    ingest.stream = "live";
    ingest.batch =
        testutil::RandomWalkCollection(options.batch, kSeriesLength, 900 + b);
    for (size_t j = 0; j < options.batch; ++j) {
      ingest.timestamps.push_back(
          static_cast<int64_t>(b * options.batch + j));
    }
    bodies.push_back(binary ? palm::dist::EncodeIngestFrame(ingest)
                            : ingest.ToJsonString());
    wire_bytes += bodies.back().size();
  }

  const std::vector<std::pair<std::string, std::string>> headers =
      binary ? std::vector<std::pair<std::string, std::string>>{
                   {"Content-Type",
                    std::string(palm::dist::kBinaryIngestContentType)}}
             : std::vector<std::pair<std::string, std::string>>{};
  const char* target =
      binary ? "/api/v1/ingest_batch_bin" : "/api/v1/ingest_batch";

  palm::BlockingHttpClient client("127.0.0.1", cluster.port());
  const double cpu0 = CpuSeconds();
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& body : bodies) {
    auto response = client.Post(target, body, headers);
    if (!response.ok() || response.value().status != 200) {
      std::fprintf(stderr, "%s ingest failed: %s\n", framing.c_str(),
                   response.ok() ? response.value().body.c_str()
                                 : response.status().ToString().c_str());
      std::exit(1);
    }
  }
  // Drain inside the timed region: the batches are not durable answers
  // until the async cascades settle, and both framings pay it equally.
  palm::api::DrainStreamRequest drain;
  drain.stream = "live";
  auto drained = cluster.coordinator->DrainStream(drain);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double cpu = CpuSeconds() - cpu0;
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t expect = options.ingest_batches * options.batch;
  if (drained.value().total_entries != expect) {
    std::fprintf(stderr, "%s: drained %llu entries, expected %llu\n",
                 framing.c_str(),
                 static_cast<unsigned long long>(drained.value().total_entries),
                 static_cast<unsigned long long>(expect));
    std::exit(1);
  }

  IngestResult result;
  result.framing = framing;
  result.batches = options.ingest_batches;
  result.series = expect;
  result.wire_bytes = wire_bytes;
  result.wall_seconds = wall;
  result.cpu_seconds = cpu;
  result.series_per_second =
      wall > 0.0 ? static_cast<double>(expect) / wall : 0.0;
  return result;
}

struct QueryResult {
  std::string topology;  // "single" or "coordinator"
  uint64_t shards = 0;
  uint64_t queries = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Closed-loop query sweep against whatever server listens on `port`.
QueryResult RunQueries(uint16_t port, const std::string& topology,
                       size_t shards, size_t count,
                       const std::vector<std::string>& bodies) {
  palm::BlockingHttpClient client("127.0.0.1", port);
  std::vector<double> latencies;
  latencies.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto response = client.Post("/api/v1/query", bodies[i % bodies.size()]);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!response.ok() || response.value().status != 200) {
      std::fprintf(stderr, "query (%s, k=%zu): %s\n", topology.c_str(), shards,
                   response.ok() ? response.value().body.c_str()
                                 : response.status().ToString().c_str());
      std::exit(1);
    }
    latencies.push_back(ms);
  }
  std::sort(latencies.begin(), latencies.end());
  QueryResult result;
  result.topology = topology;
  result.shards = shards;
  result.queries = count;
  result.p50_ms = PercentileOfSorted(latencies, 0.50);
  result.p99_ms = PercentileOfSorted(latencies, 0.99);
  return result;
}

int Main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  // ---- part A: ingest framing shoot-out at K=2.
  std::fprintf(stderr, "bench_dist: ingest framing (json)...\n");
  const IngestResult json_ingest = RunIngest(options, /*binary=*/false);
  std::fprintf(stderr, "bench_dist: ingest framing (binary)...\n");
  const IngestResult binary_ingest = RunIngest(options, /*binary=*/true);

  // ---- part B: query latency, single process vs coordinator fan-out.
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(kDatasetSeries, kSeriesLength, 7);
  std::vector<std::string> query_bodies;
  query_bodies.reserve(kQueryPool);
  for (size_t i = 0; i < kQueryPool; ++i) {
    palm::api::QueryRequest query;
    query.index = "walk";
    query.query =
        testutil::NoisyCopy(data, i * 17 % kDatasetSeries, 0.25, 1000 + i);
    query_bodies.push_back(query.ToJsonString());
  }

  std::vector<QueryResult> query_results;
  {
    std::fprintf(stderr, "bench_dist: queries (single process)...\n");
    auto service =
        palm::api::Service::Create(FreshRoot("single")).TakeValue();
    palm::api::RegisterDatasetRequest reg;
    reg.name = "walk";
    reg.data = data;
    palm::api::BuildIndexRequest build;
    build.index = "walk";
    build.dataset = "walk";
    build.spec.sax = BenchSax();
    if (!service->RegisterDataset(reg).ok() ||
        !service->BuildIndex(build).ok()) {
      std::fprintf(stderr, "single-process fixture failed\n");
      return 1;
    }
    auto server = palm::HttpServer::Start(service.get(), {}).TakeValue();
    query_results.push_back(RunQueries(server->port(), "single", 1,
                                       options.queries, query_bodies));
  }
  for (const size_t k : {size_t{1}, size_t{2}, size_t{4}}) {
    std::fprintf(stderr, "bench_dist: queries (coordinator, k=%zu)...\n", k);
    Cluster cluster =
        MakeCluster(k, "query_k" + std::to_string(k), /*binary_ingest=*/true);
    palm::api::RegisterDatasetRequest reg;
    reg.name = "walk";
    reg.data = data;
    palm::api::BuildIndexRequest build;
    build.index = "walk";
    build.dataset = "walk";
    build.spec.sax = BenchSax();
    build.spec.num_shards = k;
    if (!cluster.coordinator->RegisterDataset(reg).ok() ||
        !cluster.coordinator->BuildIndex(build).ok()) {
      std::fprintf(stderr, "coordinator fixture failed (k=%zu)\n", k);
      return 1;
    }
    query_results.push_back(RunQueries(cluster.port(), "coordinator", k,
                                       options.queries, query_bodies));
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("dist"));
  w.Field("series_length", static_cast<uint64_t>(kSeriesLength));
  w.Field("dataset_series", static_cast<uint64_t>(kDatasetSeries));
  w.Key("ingest");
  w.BeginArray();
  for (const IngestResult& r : {json_ingest, binary_ingest}) {
    w.BeginObject();
    w.Field("framing", r.framing);
    w.Field("batches", r.batches);
    w.Field("series", r.series);
    w.Field("wire_bytes", r.wire_bytes);
    w.Field("wall_seconds", r.wall_seconds);
    w.Field("cpu_seconds", r.cpu_seconds);
    w.Field("series_per_second", r.series_per_second);
    w.EndObject();
  }
  w.EndArray();
  w.Field("binary_speedup",
          binary_ingest.series_per_second > 0.0 && json_ingest.series_per_second > 0.0
              ? binary_ingest.series_per_second / json_ingest.series_per_second
              : 0.0);
  w.Field("binary_wire_ratio",
          json_ingest.wire_bytes > 0
              ? static_cast<double>(binary_ingest.wire_bytes) /
                    static_cast<double>(json_ingest.wire_bytes)
              : 0.0);
  w.Key("query");
  w.BeginArray();
  for (const QueryResult& r : query_results) {
    w.BeginObject();
    w.Field("topology", r.topology);
    w.Field("shards", r.shards);
    w.Field("queries", r.queries);
    w.Field("p50_ms", r.p50_ms);
    w.Field("p99_ms", r.p99_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string json = w.TakeString();

  std::FILE* out = std::fopen(options.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", options.out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::fprintf(stderr, "bench_dist: wrote %s\n", options.out.c_str());
  std::printf("%s\n", json.c_str());

  std::filesystem::remove_all(std::filesystem::temp_directory_path().string() +
                              "/bench_dist_" +
                              std::to_string(static_cast<unsigned>(::getpid())));
  return 0;
}

}  // namespace
}  // namespace coconut

int main(int argc, char** argv) { return coconut::Main(argc, argv); }
