// E7 (Section 3): PP vs TP vs BTP under variable-sized window queries.
// Expected shape: TP wins small windows (skips partitions) but degrades as
// windows grow (one probe per partition); PP is flat (single structure,
// per-entry filtering); BTP tracks the better of the two everywhere and
// bounds the partitions an approximate query touches.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "palm/factory.h"
#include "workload/seismic.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kBatch = 512;
constexpr int kBatches = 24;

enum class Scheme { kPP, kTP, kBTP };

struct PreparedStream {
  Arena arena;
  std::unique_ptr<stream::StreamingIndex> index;
  int64_t now = 0;
  std::vector<float> quake;
};

PreparedStream* Prepare(Scheme scheme) {
  static std::map<int, std::unique_ptr<PreparedStream>> cache;
  auto it = cache.find(static_cast<int>(scheme));
  if (it == cache.end()) {
    auto prepared = std::make_unique<PreparedStream>();
    prepared->arena = Arena::Make("bench_windows", kLength);

    palm::VariantSpec spec;
    spec.sax = BenchSax(kLength);
    spec.buffer_entries = 1024;
    switch (scheme) {
      case Scheme::kPP:
        spec.family = palm::IndexFamily::kClsm;
        spec.mode = palm::StreamMode::kPP;
        break;
      case Scheme::kTP:
        spec.family = palm::IndexFamily::kCTree;
        spec.mode = palm::StreamMode::kTP;
        break;
      case Scheme::kBTP:
        spec.family = palm::IndexFamily::kClsm;
        spec.mode = palm::StreamMode::kBTP;
        break;
    }
    prepared->index =
        palm::CreateStreamingIndex(spec, prepared->arena.storage.get(),
                                   "stream", nullptr, prepared->arena.raw.get())
            .TakeValue();

    workload::SeismicGenerator gen({.series_length = kLength,
                                    .batch_size = kBatch,
                                    .event_probability = 0.06});
    uint64_t id = 0;
    for (int b = 0; b < kBatches; ++b) {
      auto batch = gen.NextBatch();
      for (size_t i = 0; i < batch.series.size(); ++i) {
        prepared->arena.raw->Append(batch.series[i]).TakeValue();
        if (!prepared->index
                 ->Ingest(id++, batch.series[i], batch.timestamps[i])
                 .ok()) {
          std::abort();
        }
      }
    }
    if (!prepared->arena.raw->Flush().ok()) std::abort();
    if (!prepared->index->FlushAll().ok()) std::abort();
    prepared->now = gen.current_time();
    prepared->quake = gen.EarthquakeTemplate(333);
    it = cache.emplace(static_cast<int>(scheme), std::move(prepared)).first;
  }
  return it->second.get();
}

void RunWindowQuery(benchmark::State& state, Scheme scheme, bool exact) {
  PreparedStream* prepared = Prepare(scheme);
  const double window_pct = static_cast<double>(state.range(0));
  const auto span =
      static_cast<int64_t>(window_pct / 100.0 * prepared->now);
  core::TimeWindow window{prepared->now - span, prepared->now};
  core::SearchOptions options;
  options.window = window;

  core::QueryCounters counters;
  const storage::IoStats before = *prepared->arena.storage->io_stats();
  size_t q = 0;
  for (auto _ : state) {
    auto result =
        exact ? prepared->index->ExactSearch(prepared->quake, options,
                                             &counters)
              : prepared->index->ApproxSearch(prepared->quake, options,
                                              &counters);
    benchmark::DoNotOptimize(result.value().found);
    ++q;
  }
  const storage::IoStats io = prepared->arena.storage->io_stats()->Since(before);
  const double per_query = q > 0 ? 1.0 / q : 0;
  state.counters["window_pct"] = window_pct;
  state.counters["reads_per_query"] =
      static_cast<double>(io.total_reads()) * per_query;
  state.counters["partitions"] =
      static_cast<double>(prepared->index->num_partitions());
  state.counters["partitions_visited_pq"] =
      static_cast<double>(counters.partitions_visited) * per_query;
}

#define WINDOW_BENCH(name, scheme, exact)                           \
  void name(benchmark::State& state) {                              \
    RunWindowQuery(state, scheme, exact);                           \
  }                                                                 \
  BENCHMARK(name)->Arg(2)->Arg(10)->Arg(25)->Arg(100)->Unit(        \
      benchmark::kMillisecond)

WINDOW_BENCH(BM_WindowExact_PP, Scheme::kPP, true);
WINDOW_BENCH(BM_WindowExact_TP, Scheme::kTP, true);
WINDOW_BENCH(BM_WindowExact_BTP, Scheme::kBTP, true);
WINDOW_BENCH(BM_WindowApprox_PP, Scheme::kPP, false);
WINDOW_BENCH(BM_WindowApprox_TP, Scheme::kTP, false);
WINDOW_BENCH(BM_WindowApprox_BTP, Scheme::kBTP, false);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
