// E3 + E6 (Scenario 1 recommender flip; Section 2 space-vs-time): the
// materialization trade-off. Rows report build time, storage and query
// latency for non-materialized vs materialized CTree, and the computed
// crossover query count beyond which materializing wins the total
// workflow cost — the point where the demo's recommender changes advice.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kCount = 16'000;

struct MatMetrics {
  double build_seconds = 0;
  double query_seconds = 0;
  uint64_t index_bytes = 0;
};

MatMetrics Measure(bool materialized) {
  static std::map<bool, MatMetrics> cache;
  auto it = cache.find(materialized);
  if (it != cache.end()) return it->second;

  Arena arena = Arena::Make("bench_mat", 256);
  const auto& collection = AstroCollection(kCount);
  arena.FillRaw(collection);

  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.materialized = materialized;

  MatMetrics metrics;
  WallTimer build_timer;
  auto index = BuildStatic(spec, &arena, collection);
  metrics.build_seconds = build_timer.ElapsedSeconds();
  metrics.index_bytes = index->index_bytes();

  auto queries = workload::MakeNoisyQueries(collection, 32, 0.4, 55);
  WallTimer query_timer;
  for (const auto& query : queries) {
    auto result = index->ExactSearch(query, {}, nullptr);
    benchmark::DoNotOptimize(result.value().distance_sq);
  }
  metrics.query_seconds = query_timer.ElapsedSeconds() / queries.size();
  cache[materialized] = metrics;
  return metrics;
}

void BM_Materialization(benchmark::State& state) {
  const bool materialized = state.range(0) != 0;
  MatMetrics metrics;
  for (auto _ : state) {
    metrics = Measure(materialized);
  }
  state.counters["build_seconds"] = metrics.build_seconds;
  state.counters["query_ms"] = metrics.query_seconds * 1e3;
  state.counters["index_mib"] = metrics.index_bytes / 1048576.0;
}
BENCHMARK(BM_Materialization)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Workflow cost build + N * query for growing N; the crossover is where
// the materialized curve dips below the non-materialized one.
void BM_WorkflowCrossover(benchmark::State& state) {
  const uint64_t queries = static_cast<uint64_t>(state.range(0));
  MatMetrics non_mat;
  MatMetrics mat;
  for (auto _ : state) {
    non_mat = Measure(false);
    mat = Measure(true);
  }
  const double cost_non_mat =
      non_mat.build_seconds + queries * non_mat.query_seconds;
  const double cost_mat = mat.build_seconds + queries * mat.query_seconds;
  state.counters["workflow_nonmat_s"] = cost_non_mat;
  state.counters["workflow_mat_s"] = cost_mat;
  state.counters["materialized_wins"] = cost_mat < cost_non_mat ? 1.0 : 0.0;
  // Analytic crossover from the measured slopes.
  const double denom = non_mat.query_seconds - mat.query_seconds;
  state.counters["crossover_queries"] =
      denom > 0 ? (mat.build_seconds - non_mat.build_seconds) / denom : -1.0;
}
BENCHMARK(BM_WorkflowCrossover)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
