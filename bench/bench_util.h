#ifndef COCONUT_BENCH_BENCH_UTIL_H_
#define COCONUT_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/entry.h"
#include "core/raw_store.h"
#include "palm/factory.h"
#include "storage/storage_manager.h"
#include "workload/astronomy.h"
#include "workload/generator.h"

namespace coconut {
namespace bench {

inline series::SaxConfig BenchSax(int length = 256) {
  return series::SaxConfig{.series_length = length,
                           .num_segments = 16,
                           .bits_per_segment = 8};
}

/// One isolated arena per measured index: storage manager + raw store.
struct Arena {
  std::unique_ptr<storage::StorageManager> storage;
  std::unique_ptr<core::RawSeriesStore> raw;

  Arena() = default;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  static Arena Make(const std::string& tag, int series_length) {
    Arena arena;
    arena.storage = storage::MakeTempStorage(tag).TakeValue();
    arena.raw = core::RawSeriesStore::Create(arena.storage.get(), "raw",
                                             series_length)
                    .TakeValue();
    return arena;
  }

  void FillRaw(const series::SeriesCollection& collection) {
    for (size_t i = 0; i < collection.size(); ++i) {
      raw->Append(collection[i]).TakeValue();
    }
    if (auto st = raw->Flush(); !st.ok()) std::abort();
  }

  ~Arena() {
    if (storage != nullptr) (void)storage->Clear();
  }
};

/// Cached astronomy collection shared across benchmark registrations.
inline const series::SeriesCollection& AstroCollection(size_t count,
                                                       int length = 256) {
  static std::map<std::pair<size_t, int>, series::SeriesCollection> cache;
  auto key = std::make_pair(count, length);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::AstronomyGenerator gen(
        {.series_length = static_cast<size_t>(length)});
    it = cache.emplace(key, gen.Generate(count)).first;
  }
  return it->second;
}

/// Builds a static index of `spec` over `collection` inside `arena`.
inline std::unique_ptr<core::DataSeriesIndex> BuildStatic(
    const palm::VariantSpec& spec, Arena* arena,
    const series::SeriesCollection& collection) {
  auto index = palm::CreateStaticIndex(spec, arena->storage.get(), "index",
                                       nullptr, arena->raw.get())
                   .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    if (auto st = index->Insert(i, collection[i], static_cast<int64_t>(i));
        !st.ok()) {
      std::abort();
    }
  }
  if (auto st = index->Finalize(); !st.ok()) std::abort();
  return index;
}

}  // namespace bench
}  // namespace coconut

#endif  // COCONUT_BENCH_BENCH_UTIL_H_
