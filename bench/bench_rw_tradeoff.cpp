// E4 (Section 2, read-vs-write): CTree's fill factor and CLSM's growth
// factor each trace a read/write frontier. Expected shape: lower fill
// factor -> cheaper inserts (absorbed by slack), longer leaf level;
// higher growth factor -> fewer runs per query but more merge rewriting;
// ADS+ sits strictly inside both frontiers.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/adapters.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kBase = 8'000;
constexpr size_t kInserts = 4'000;
constexpr size_t kQueries = 16;

// Builds a CTree at the given fill factor on the first half, then measures
// insert I/O for the second half and query latency after the updates.
void BM_CTreeFillFactor(benchmark::State& state) {
  const double fill = state.range(0) / 100.0;
  const auto& collection = AstroCollection(kBase + kInserts);

  double insert_ios = 0;
  double query_ms = 0;
  uint64_t leaves = 0;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_fill", 256);
    arena.FillRaw(collection);
    palm::VariantSpec spec;
    spec.sax = BenchSax();
    spec.family = palm::IndexFamily::kCTree;
    spec.fill_factor = fill;
    auto ctree = core::CTreeIndexAdapter::Create(
                     arena.storage.get(), "index",
                     {.sax = spec.sax, .fill_factor = fill}, nullptr,
                     arena.raw.get())
                     .TakeValue();
    for (size_t i = 0; i < kBase; ++i) {
      if (!ctree->Insert(i, collection[i], 0).ok()) std::abort();
    }
    if (!ctree->Finalize().ok()) std::abort();
    const uint64_t leaves_before = ctree->tree()->num_leaves();

    const storage::IoStats before = *arena.storage->io_stats();
    for (size_t i = kBase; i < kBase + kInserts; ++i) {
      if (!ctree->Insert(i, collection[i], 0).ok()) std::abort();
    }
    insert_ios = static_cast<double>(
                     arena.storage->io_stats()->Since(before).total_ios()) /
                 kInserts;
    state.counters["leaf_splits"] =
        static_cast<double>(ctree->tree()->num_leaves() - leaves_before);

    auto queries = workload::MakeNoisyQueries(collection, kQueries, 0.4, 5);
    WallTimer timer;
    for (const auto& query : queries) {
      benchmark::DoNotOptimize(
          ctree->ExactSearch(query, {}, nullptr).value().distance_sq);
    }
    query_ms = timer.ElapsedMillis() / kQueries;
    leaves = ctree->tree()->num_leaves();
  }
  state.counters["fill_pct"] = static_cast<double>(state.range(0));
  state.counters["ios_per_insert"] = insert_ios;
  state.counters["exact_query_ms"] = query_ms;
  state.counters["leaves"] = static_cast<double>(leaves);
}
BENCHMARK(BM_CTreeFillFactor)
    ->Arg(100)
    ->Arg(90)
    ->Arg(70)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// CLSM growth-factor sweep: ingestion write amplification vs query cost.
void BM_ClsmGrowthFactor(benchmark::State& state) {
  const int growth = static_cast<int>(state.range(0));
  const auto& collection = AstroCollection(kBase + kInserts);

  double write_amp = 0;
  double query_ms = 0;
  double levels = 0;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_growth", 256);
    arena.FillRaw(collection);
    auto lsm = clsm::Clsm::Create(arena.storage.get(), "lsm",
                                  {.sax = BenchSax(),
                                   .growth_factor = growth,
                                   .buffer_entries = 512},
                                  nullptr, arena.raw.get())
                   .TakeValue();
    for (size_t i = 0; i < collection.size(); ++i) {
      if (!lsm->Insert(i, collection[i], 0).ok()) std::abort();
    }
    if (!lsm->FlushBuffer().ok()) std::abort();
    write_amp = static_cast<double>(lsm->entries_rewritten()) /
                collection.size();
    levels = static_cast<double>(lsm->num_active_levels());

    auto queries = workload::MakeNoisyQueries(collection, kQueries, 0.4, 6);
    WallTimer timer;
    for (const auto& query : queries) {
      benchmark::DoNotOptimize(
          lsm->ExactSearch(query, {}, nullptr).value().distance_sq);
    }
    query_ms = timer.ElapsedMillis() / kQueries;
  }
  state.counters["growth_factor"] = static_cast<double>(growth);
  state.counters["write_amplification"] = write_amp;
  state.counters["active_levels"] = levels;
  state.counters["exact_query_ms"] = query_ms;
}
BENCHMARK(BM_ClsmGrowthFactor)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ADS+ reference point on the same workload.
void BM_AdsReference(benchmark::State& state) {
  const auto& collection = AstroCollection(kBase + kInserts);
  double insert_ios = 0;
  double query_ms = 0;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_ads_ref", 256);
    arena.FillRaw(collection);
    auto ads = ads::AdsIndex::Create(arena.storage.get(), "ads",
                                     {.sax = BenchSax(),
                                      .leaf_capacity = 512,
                                      .global_buffer_entries = 1024},
                                     arena.raw.get())
                   .TakeValue();
    for (size_t i = 0; i < kBase; ++i) {
      if (!ads->Insert(i, collection[i], 0).ok()) std::abort();
    }
    const storage::IoStats before = *arena.storage->io_stats();
    for (size_t i = kBase; i < kBase + kInserts; ++i) {
      if (!ads->Insert(i, collection[i], 0).ok()) std::abort();
    }
    insert_ios = static_cast<double>(
                     arena.storage->io_stats()->Since(before).total_ios()) /
                 kInserts;
    auto queries = workload::MakeNoisyQueries(collection, kQueries, 0.4, 7);
    WallTimer timer;
    for (const auto& query : queries) {
      benchmark::DoNotOptimize(
          ads->ExactSearch(query, {}, nullptr).value().distance_sq);
    }
    query_ms = timer.ElapsedMillis() / kQueries;
  }
  state.counters["ios_per_insert"] = insert_ios;
  state.counters["exact_query_ms"] = query_ms;
}
BENCHMARK(BM_AdsReference)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
