// Durability tax of the per-stream write-ahead log: the same batched
// ingest through the service front door with durability off vs on. The
// durable path pays one group-commit (buffered frame writes + a single
// fdatasync) per acknowledged batch, so the interesting numbers are the
// per-IngestBatch p50/p99/max — the sync sits in every batch, not just
// the tail — plus the drain cost (checkpoint + log truncation) and the
// bytes the log occupies before truncation. A second benchmark measures
// cold recovery: reopening the stream and replaying the full log back
// into the index. CI uploads the JSON (BENCH_wal.json) so the durability
// tax and replay throughput are tracked over time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "palm/api.h"
#include "palm/factory.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kSeries = 4096;
constexpr size_t kIngestBatch = 64;

palm::VariantSpec WalSpec(palm::IndexFamily family, palm::StreamMode mode,
                          bool durable, ThreadPool* pool) {
  palm::VariantSpec spec;
  spec.sax = BenchSax(kLength);
  spec.family = family;
  spec.mode = mode;
  spec.buffer_entries = 512;
  spec.btp_merge_k = 2;
  spec.async_ingest = true;
  spec.durable = durable;
  spec.background_pool = pool;
  return spec;
}

/// A fresh service root per run; removed on destruction.
struct ServiceRoot {
  std::string path;

  explicit ServiceRoot(const std::string& tag) {
    static std::atomic<uint64_t> counter{0};
    path = (std::filesystem::temp_directory_path() /
            (tag + "_" + std::to_string(counter.fetch_add(1))))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ServiceRoot() { std::filesystem::remove_all(path); }
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

/// Pre-sliced ingest batches so the timed region holds only IngestBatch.
struct Batches {
  std::vector<series::SeriesCollection> rows;
  std::vector<std::vector<int64_t>> timestamps;
};

Batches SliceBatches(const series::SeriesCollection& collection) {
  Batches batches;
  for (size_t from = 0; from < collection.size(); from += kIngestBatch) {
    series::SeriesCollection batch(kLength);
    std::vector<int64_t> ts;
    const size_t to = std::min(from + kIngestBatch, collection.size());
    for (size_t i = from; i < to; ++i) {
      batch.Append(collection[i]);
      ts.push_back(static_cast<int64_t>(i));
    }
    batches.rows.push_back(std::move(batch));
    batches.timestamps.push_back(std::move(ts));
  }
  return batches;
}

void RunDurableIngest(benchmark::State& state, palm::IndexFamily family,
                      palm::StreamMode mode, bool durable) {
  const Batches batches = SliceBatches(AstroCollection(kSeries, kLength));
  ThreadPool background(2);
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double drain_seconds = 0;
  double log_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ServiceRoot root("bench_wal_ingest");
    auto service = palm::api::Service::Create(root.path).TakeValue();
    const palm::VariantSpec spec = WalSpec(family, mode, durable, &background);
    if (!service->CreateStream("s", spec).ok()) std::abort();
    std::vector<double> latencies_us;
    latencies_us.reserve(batches.rows.size());
    state.ResumeTiming();

    for (size_t b = 0; b < batches.rows.size(); ++b) {
      WallTimer timer;
      if (!service->IngestBatch("s", batches.rows[b], batches.timestamps[b])
               .ok()) {
        std::abort();
      }
      latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    // The log's footprint right before drain truncates it away.
    auto* storage = service->index_storage("s");
    log_bytes =
        storage != nullptr ? static_cast<double>(storage->TotalBytesOnDisk())
                           : 0;
    WallTimer drain;
    if (!service->DrainStream("s").ok()) std::abort();
    drain_seconds = drain.ElapsedSeconds();

    p50_us = Percentile(&latencies_us, 0.50);
    p99_us = Percentile(&latencies_us, 0.99);
    max_us = latencies_us.back();
  }
  state.counters["batch_p50_us"] = p50_us;
  state.counters["batch_p99_us"] = p99_us;
  state.counters["batch_max_us"] = max_us;
  state.counters["drain_seconds"] = drain_seconds;
  state.counters["pre_drain_bytes"] = log_bytes;
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kSeries));
}

void BM_IngestCTreeTpWalOff(benchmark::State& state) {
  RunDurableIngest(state, palm::IndexFamily::kCTree, palm::StreamMode::kTP,
                   /*durable=*/false);
}
BENCHMARK(BM_IngestCTreeTpWalOff)->Unit(benchmark::kMillisecond);

void BM_IngestCTreeTpWalOn(benchmark::State& state) {
  RunDurableIngest(state, palm::IndexFamily::kCTree, palm::StreamMode::kTP,
                   /*durable=*/true);
}
BENCHMARK(BM_IngestCTreeTpWalOn)->Unit(benchmark::kMillisecond);

void BM_IngestClsmBtpWalOff(benchmark::State& state) {
  RunDurableIngest(state, palm::IndexFamily::kClsm, palm::StreamMode::kBTP,
                   /*durable=*/false);
}
BENCHMARK(BM_IngestClsmBtpWalOff)->Unit(benchmark::kMillisecond);

void BM_IngestClsmBtpWalOn(benchmark::State& state) {
  RunDurableIngest(state, palm::IndexFamily::kClsm, palm::StreamMode::kBTP,
                   /*durable=*/true);
}
BENCHMARK(BM_IngestClsmBtpWalOn)->Unit(benchmark::kMillisecond);

/// Cold recovery: replay a full (never-drained) log back into a fresh
/// index. The template root is built once; each iteration recovers from a
/// pristine copy, since recovery itself rewrites the raw store's header.
void BM_WalRecover(benchmark::State& state) {
  const Batches batches = SliceBatches(AstroCollection(kSeries, kLength));
  ThreadPool background(2);
  ServiceRoot template_root("bench_wal_recover_template");
  {
    auto service = palm::api::Service::Create(template_root.path).TakeValue();
    const palm::VariantSpec spec =
        WalSpec(palm::IndexFamily::kCTree, palm::StreamMode::kTP,
                /*durable=*/true, &background);
    if (!service->CreateStream("s", spec).ok()) std::abort();
    for (size_t b = 0; b < batches.rows.size(); ++b) {
      if (!service->IngestBatch("s", batches.rows[b], batches.timestamps[b])
               .ok()) {
        std::abort();
      }
    }
    // Closed without DrainStream: every entry lives only in raw + log.
  }

  uint64_t recovered = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ServiceRoot root("bench_wal_recover");
    std::filesystem::remove_all(root.path);
    std::filesystem::copy(template_root.path, root.path,
                          std::filesystem::copy_options::recursive);
    auto service = palm::api::Service::Create(root.path).TakeValue();
    const palm::VariantSpec spec =
        WalSpec(palm::IndexFamily::kCTree, palm::StreamMode::kTP,
                /*durable=*/true, &background);
    state.ResumeTiming();

    if (!service->CreateStream("s", spec).ok()) std::abort();
    auto* index = service->stream_index("s");
    if (index == nullptr) std::abort();
    recovered = index->num_entries();
    if (recovered != kSeries) std::abort();

    state.PauseTiming();
    service.reset();
    state.ResumeTiming();
  }
  state.counters["recovered_entries"] = static_cast<double>(recovered);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kSeries));
}
BENCHMARK(BM_WalRecover)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
