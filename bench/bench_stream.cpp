// Streaming ingestion latency, synchronous vs background merges. The
// tentpole claim of the async path is that Ingest never blocks on index
// I/O: a synchronous BTP stalls every buffer_entries-th Ingest on a seal
// (and occasionally a whole merge cascade), while the async index pays a
// lock-protected append and defers the I/O to the background strand.
// This bench reports what the p50/p99 per-Ingest latency distribution
// looks like in both modes — CI uploads the JSON so the trajectory is
// tracked over time (single-core runners show truncated tails rather
// than full overlap, like the construction bench).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "palm/factory.h"
#include "series/kernels.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kSeries = 6144;
constexpr size_t kBufferEntries = 512;

palm::VariantSpec StreamSpec(bool async, palm::StreamMode mode) {
  palm::VariantSpec spec;
  spec.sax = BenchSax(kLength);
  spec.buffer_entries = kBufferEntries;
  spec.btp_merge_k = 2;
  spec.mode = mode;
  spec.family = mode == palm::StreamMode::kTP ? palm::IndexFamily::kCTree
                                              : palm::IndexFamily::kClsm;
  spec.async_ingest = async;
  return spec;
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

/// One full ingest run; per-Ingest latencies feed the percentile counters.
void RunIngest(benchmark::State& state, palm::StreamMode mode, bool async) {
  const auto& collection = AstroCollection(kSeries, kLength);
  ThreadPool background(2);
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double drain_seconds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Arena arena = Arena::Make("bench_stream", kLength);
    arena.FillRaw(collection);
    palm::VariantSpec spec = StreamSpec(async, mode);
    spec.background_pool = &background;
    auto index = palm::CreateStreamingIndex(spec, arena.storage.get(),
                                            "stream", nullptr,
                                            arena.raw.get())
                     .TakeValue();
    std::vector<double> latencies_us;
    latencies_us.reserve(collection.size());
    state.ResumeTiming();

    for (size_t i = 0; i < collection.size(); ++i) {
      WallTimer timer;
      if (!index->Ingest(i, collection[i], static_cast<int64_t>(i)).ok()) {
        std::abort();
      }
      latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    WallTimer drain;
    if (!index->FlushAll().ok()) std::abort();
    drain_seconds = drain.ElapsedSeconds();

    p50_us = Percentile(&latencies_us, 0.50);
    p99_us = Percentile(&latencies_us, 0.99);
    max_us = latencies_us.back();
  }
  state.counters["ingest_p50_us"] = p50_us;
  state.counters["ingest_p99_us"] = p99_us;
  state.counters["ingest_max_us"] = max_us;
  state.counters["drain_seconds"] = drain_seconds;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(collection.size()));
  // Kernel tier summarizing each ingested series (PAA + SAX dispatch).
  state.SetLabel(series::kernels::IsaName(series::kernels::ActiveIsa()));
}

void BM_IngestBtpSync(benchmark::State& state) {
  RunIngest(state, palm::StreamMode::kBTP, /*async=*/false);
}
BENCHMARK(BM_IngestBtpSync)->Unit(benchmark::kMillisecond);

void BM_IngestBtpAsync(benchmark::State& state) {
  RunIngest(state, palm::StreamMode::kBTP, /*async=*/true);
}
BENCHMARK(BM_IngestBtpAsync)->Unit(benchmark::kMillisecond);

void BM_IngestTpSync(benchmark::State& state) {
  RunIngest(state, palm::StreamMode::kTP, /*async=*/false);
}
BENCHMARK(BM_IngestTpSync)->Unit(benchmark::kMillisecond);

void BM_IngestTpAsync(benchmark::State& state) {
  RunIngest(state, palm::StreamMode::kTP, /*async=*/true);
}
BENCHMARK(BM_IngestTpAsync)->Unit(benchmark::kMillisecond);

/// The lock-free read path's claim, measured: readers hammer exact
/// searches *while* the writer ingests the whole collection through
/// seal/merge churn. Queries run against epoch-published snapshots and
/// never take the admission lock, so their latency distribution should
/// be decoupled from ingest admission (and in particular from
/// backpressure stalls). Reports both sides' percentiles from one run;
/// CI tracks query_p99_us over time against the ingest tail.
void RunConcurrentReaders(benchmark::State& state, palm::StreamMode mode) {
  const auto& collection = AstroCollection(kSeries, kLength);
  ThreadPool background(2);
  constexpr size_t kReaders = 2;
  double ingest_p50_us = 0, ingest_p99_us = 0;
  double query_p50_us = 0, query_p99_us = 0;
  double queries_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Arena arena = Arena::Make("bench_stream_rd", kLength);
    arena.FillRaw(collection);
    palm::VariantSpec spec = StreamSpec(/*async=*/true, mode);
    spec.background_pool = &background;
    auto index = palm::CreateStreamingIndex(spec, arena.storage.get(),
                                            "stream", nullptr,
                                            arena.raw.get())
                     .TakeValue();
    std::vector<double> ingest_us;
    ingest_us.reserve(collection.size());
    std::vector<std::vector<double>> query_us(kReaders);
    std::atomic<bool> stop{false};
    state.ResumeTiming();

    std::vector<std::thread> readers;
    for (size_t t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        size_t probe = t * 37;
        while (!stop.load(std::memory_order_acquire)) {
          WallTimer timer;
          core::QueryCounters counters;
          auto r = index->ExactSearch(collection[probe % collection.size()],
                                      {}, &counters);
          if (!r.ok()) std::abort();
          query_us[t].push_back(timer.ElapsedSeconds() * 1e6);
          probe += 131;
        }
      });
    }
    for (size_t i = 0; i < collection.size(); ++i) {
      WallTimer timer;
      if (!index->Ingest(i, collection[i], static_cast<int64_t>(i)).ok()) {
        std::abort();
      }
      ingest_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    if (!index->FlushAll().ok()) std::abort();
    stop.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();

    std::vector<double> merged;
    for (const auto& per_thread : query_us) {
      merged.insert(merged.end(), per_thread.begin(), per_thread.end());
    }
    queries_total = static_cast<double>(merged.size());
    ingest_p50_us = Percentile(&ingest_us, 0.50);
    ingest_p99_us = Percentile(&ingest_us, 0.99);
    query_p50_us = Percentile(&merged, 0.50);
    query_p99_us = Percentile(&merged, 0.99);
  }
  state.counters["ingest_p50_us"] = ingest_p50_us;
  state.counters["ingest_p99_us"] = ingest_p99_us;
  state.counters["query_p50_us"] = query_p50_us;
  state.counters["query_p99_us"] = query_p99_us;
  state.counters["queries_run"] = queries_total;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(collection.size()));
  state.SetLabel(series::kernels::IsaName(series::kernels::ActiveIsa()));
}

void BM_ConcurrentReadersTpAsync(benchmark::State& state) {
  RunConcurrentReaders(state, palm::StreamMode::kTP);
}
BENCHMARK(BM_ConcurrentReadersTpAsync)->Unit(benchmark::kMillisecond);

void BM_ConcurrentReadersBtpAsync(benchmark::State& state) {
  RunConcurrentReaders(state, palm::StreamMode::kBTP);
}
BENCHMARK(BM_ConcurrentReadersBtpAsync)->Unit(benchmark::kMillisecond);

void BM_IngestClsmPpSync(benchmark::State& state) {
  RunIngest(state, palm::StreamMode::kPP, /*async=*/false);
}
BENCHMARK(BM_IngestClsmPpSync)->Unit(benchmark::kMillisecond);

void BM_IngestClsmPpAsync(benchmark::State& state) {
  RunIngest(state, palm::StreamMode::kPP, /*async=*/true);
}
BENCHMARK(BM_IngestClsmPpAsync)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
