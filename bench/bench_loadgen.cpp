// Open-loop HTTP load harness for the front-door serving layer. Unlike
// the closed-loop google-benchmark drivers, arrivals here are scheduled
// on a fixed clock (arrival i fires at t0 + i/rate) regardless of how
// fast the server answers — so queueing delay shows up in the measured
// latency instead of silently throttling the offered load (the
// coordinated-omission trap). Each worker thread owns one keep-alive
// connection and reports per-request latency measured from the request's
// *scheduled* start, not its actual send.
//
//   bench_loadgen --rates=200,500 --seconds=3 --threads=8 \
//                 --mix=0.2 --cache=on --out=BENCH_loadgen.json
//
// The workload is a query/ingest mix against an in-process Service +
// HttpServer: queries draw from a small pool of repeated vectors (so the
// answer cache, when enabled, sees realistic re-asks), ingests append
// random-walk batches to a live BTP stream (so cache invalidation runs
// under load too). CI runs this at two arrival rates and uploads the
// JSON.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/json.h"
#include "palm/api.h"
#include "palm/http_client.h"
#include "palm/http_server.h"
#include "palm/query_cache.h"
#include "tests/test_util.h"

namespace coconut {
namespace {

constexpr size_t kSeriesLength = 128;
constexpr size_t kDatasetSeries = 2048;
constexpr size_t kQueryPool = 64;
constexpr size_t kIngestPool = 32;
constexpr size_t kIngestBatch = 8;

struct Options {
  std::vector<double> rates = {200.0, 500.0};
  double seconds = 3.0;
  size_t threads = 8;
  double ingest_mix = 0.2;
  bool cache = true;
  std::string out = "BENCH_loadgen.json";
};

std::vector<double> ParseRates(const std::string& list) {
  std::vector<double> rates;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    rates.push_back(std::atof(list.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return rates;
}

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                       : nullptr;
    };
    if (const char* v = value("--rates=")) {
      options.rates = ParseRates(v);
    } else if (const char* v = value("--seconds=")) {
      options.seconds = std::atof(v);
    } else if (const char* v = value("--threads=")) {
      options.threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--mix=")) {
      options.ingest_mix = std::atof(v);
    } else if (const char* v = value("--cache=")) {
      options.cache = std::string(v) != "off";
    } else if (const char* v = value("--out=")) {
      options.out = v;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: bench_loadgen [--rates=R1,R2] "
                   "[--seconds=S] [--threads=N] [--mix=F] [--cache=on|off] "
                   "[--out=FILE]\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct RunResult {
  double target_rps = 0.0;
  double achieved_rps = 0.0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t throttled = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// One open-loop run at `rate` arrivals/second.
RunResult RunRate(uint16_t port, const Options& options, double rate,
                  const std::vector<std::string>& query_bodies,
                  const std::vector<std::string>& ingest_bodies) {
  const size_t total =
      static_cast<size_t>(rate * options.seconds);
  const size_t mix_cut = static_cast<size_t>(
      options.ingest_mix * 1000.0);  // per-mille ingest share
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> throttled{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(options.threads);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (size_t w = 0; w < options.threads; ++w) {
    workers.emplace_back([&, w] {
      palm::BlockingHttpClient client("127.0.0.1", port);
      std::vector<double>& mine = latencies[w];
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= total) break;
        const auto scheduled =
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(static_cast<double>(i) /
                                                   rate));
        std::this_thread::sleep_until(scheduled);
        // Cheap deterministic hash spreads the ingest share across the
        // arrival sequence instead of front-loading it.
        const bool ingest = (i * 2654435761u) % 1000 < mix_cut;
        const std::string& body =
            ingest ? ingest_bodies[i % ingest_bodies.size()]
                   : query_bodies[i % query_bodies.size()];
        const char* target = ingest ? "/api/v1/ingest_batch" : "/api/v1/query";
        auto response = client.Post(target, body);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - scheduled)
                .count();
        if (!response.ok()) {
          ++errors;
        } else if (response.value().status == 200) {
          ++ok;
          mine.push_back(latency_ms);
        } else if (response.value().status == 429) {
          ++throttled;
        } else {
          ++errors;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());

  RunResult result;
  result.target_rps = rate;
  result.sent = total;
  result.ok = ok.load();
  result.throttled = throttled.load();
  result.errors = errors.load();
  result.achieved_rps =
      elapsed > 0.0 ? static_cast<double>(result.ok) / elapsed : 0.0;
  result.p50_ms = PercentileOfSorted(all, 0.50);
  result.p99_ms = PercentileOfSorted(all, 0.99);
  result.p999_ms = PercentileOfSorted(all, 0.999);
  result.max_ms = all.empty() ? 0.0 : all.back();
  return result;
}

int Main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);

  const std::string root =
      std::filesystem::temp_directory_path().string() + "/bench_loadgen_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::filesystem::remove_all(root);
  auto service = palm::api::Service::Create(root).TakeValue();
  if (options.cache) {
    service->EnableQueryCache(palm::api::QueryCacheOptions{});
  }

  // ---- fixtures: one static index for queries, one live stream for the
  // ingest share of the mix.
  const series::SeriesCollection data =
      testutil::RandomWalkCollection(kDatasetSeries, kSeriesLength, 7);
  {
    palm::api::RegisterDatasetRequest reg;
    reg.name = "walk";
    reg.data = data;
    if (auto r = service->RegisterDataset(reg); !r.ok()) {
      std::fprintf(stderr, "register: %s\n", r.status().ToString().c_str());
      return 1;
    }
    palm::api::BuildIndexRequest build;
    build.index = "static";
    build.dataset = "walk";
    build.spec.sax = series::SaxConfig{.series_length = kSeriesLength,
                                       .num_segments = 16,
                                       .bits_per_segment = 8};
    if (auto r = service->BuildIndex(build); !r.ok()) {
      std::fprintf(stderr, "build: %s\n", r.status().ToString().c_str());
      return 1;
    }
    palm::api::CreateStreamRequest stream;
    stream.stream = "live";
    stream.spec.sax = build.spec.sax;
    stream.spec.family = palm::IndexFamily::kClsm;
    stream.spec.mode = palm::StreamMode::kBTP;
    stream.spec.async_ingest = true;
    stream.spec.buffer_entries = 512;
    if (auto r = service->CreateStream(stream); !r.ok()) {
      std::fprintf(stderr, "stream: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  // ---- prebuilt request bodies so worker threads measure the wire, not
  // JSON serialization.
  std::vector<std::string> query_bodies;
  query_bodies.reserve(kQueryPool);
  for (size_t i = 0; i < kQueryPool; ++i) {
    palm::api::QueryRequest query;
    query.index = "static";
    query.query = testutil::NoisyCopy(data, i * 17 % kDatasetSeries, 0.25,
                                      1000 + i);
    query_bodies.push_back(query.ToJsonString());
  }
  std::vector<std::string> ingest_bodies;
  ingest_bodies.reserve(kIngestPool);
  for (size_t i = 0; i < kIngestPool; ++i) {
    palm::api::IngestBatchRequest ingest;
    ingest.stream = "live";
    ingest.batch = testutil::RandomWalkCollection(kIngestBatch, kSeriesLength,
                                                  5000 + i);
    for (size_t j = 0; j < kIngestBatch; ++j) {
      ingest.timestamps.push_back(
          static_cast<int64_t>(i * kIngestBatch + j));
    }
    ingest_bodies.push_back(ingest.ToJsonString());
  }

  palm::HttpServerOptions server_options;
  server_options.port = 0;
  server_options.threads = options.threads;
  auto server = palm::HttpServer::Start(service.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = server.value()->port();

  std::vector<RunResult> results;
  for (const double rate : options.rates) {
    std::fprintf(stderr, "loadgen: rate=%.0f req/s for %.1fs...\n", rate,
                 options.seconds);
    results.push_back(
        RunRate(port, options, rate, query_bodies, ingest_bodies));
  }

  const palm::api::ServerStatsResponse stats = service->ServerStats();
  server.value()->Stop();

  JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("loadgen"));
  w.Field("series", static_cast<uint64_t>(kDatasetSeries));
  w.Field("series_length", static_cast<uint64_t>(kSeriesLength));
  w.Field("threads", static_cast<uint64_t>(options.threads));
  w.Field("seconds_per_rate", options.seconds);
  w.Field("ingest_mix", options.ingest_mix);
  w.Field("cache_enabled", options.cache);
  w.Field("cache_hits", stats.cache_hits);
  w.Field("cache_misses", stats.cache_misses);
  w.Field("cache_invalidations", stats.cache_invalidations);
  w.Key("runs");
  w.BeginArray();
  for (const RunResult& r : results) {
    w.BeginObject();
    w.Field("target_rps", r.target_rps);
    w.Field("achieved_rps", r.achieved_rps);
    w.Field("sent", r.sent);
    w.Field("ok", r.ok);
    w.Field("throttled", r.throttled);
    w.Field("errors", r.errors);
    w.Field("p50_ms", r.p50_ms);
    w.Field("p99_ms", r.p99_ms);
    w.Field("p999_ms", r.p999_ms);
    w.Field("max_ms", r.max_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string json = w.TakeString();

  std::FILE* out = std::fopen(options.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", options.out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::fprintf(stderr, "loadgen: wrote %s\n", options.out.c_str());
  std::printf("%s\n", json.c_str());

  service.reset();
  std::filesystem::remove_all(root);
  return 0;
}

}  // namespace
}  // namespace coconut

int main(int argc, char** argv) { return coconut::Main(argc, argv); }
