// Sharding sweep: one logical CTree index partitioned by invSAX key range
// across K shards, built concurrently (each shard runs its own parallel
// construction sort) and queried scatter-gather. Expected shape on a
// multi-core host: build wall time drops as K grows until the memory
// budget split dominates, and exact-query latency improves once per-shard
// work (smaller trees, smaller heaps) outweighs the fan-out overhead. On
// the single-core CI host the sweep shows pipelining only — re-measure on
// real hardware (see README). The extsort determinism suite and
// sharded_oracle_test guarantee results are bit-for-bit unchanged by K.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "palm/sharded_index.h"
#include "storage/buffer_pool.h"

namespace coconut {
namespace bench {
namespace {

palm::VariantSpec ShardedSpec(size_t num_shards, size_t count) {
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.num_shards = num_shards;
  spec.construction_threads = 2;
  spec.memory_budget_bytes =
      std::max<size_t>(256 << 10, count * sizeof(core::IndexEntry) / 8);
  return spec;
}

/// Total page-cache budget, identical at every K: the factory divides it
/// across shards, so the sweep measures sharding, not extra cache.
constexpr size_t kPoolBytes = 4ull << 20;

std::unique_ptr<core::DataSeriesIndex> BuildWithPool(
    const palm::VariantSpec& spec, Arena* arena, storage::BufferPool* pool,
    const series::SeriesCollection& collection) {
  auto index = palm::CreateStaticIndex(spec, arena->storage.get(), "index",
                                       pool, arena->raw.get())
                   .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    if (auto st = index->Insert(i, collection[i], static_cast<int64_t>(i));
        !st.ok()) {
      std::abort();
    }
  }
  if (auto st = index->Finalize(); !st.ok()) std::abort();
  return index;
}

void BM_ShardedBuild(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t count = 16000;
  const auto& collection = AstroCollection(count);
  const palm::VariantSpec spec = ShardedSpec(shards, count);
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_sharded_build", spec.sax.series_length);
    arena.FillRaw(collection);
    storage::BufferPool pool(kPoolBytes);
    auto index = BuildWithPool(spec, &arena, &pool, collection);
    benchmark::DoNotOptimize(index->num_entries());
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["series_per_sec"] = benchmark::Counter(
      static_cast<double>(count), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ShardedQueryExact(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t count = 8000;
  const auto& collection = AstroCollection(count);
  const palm::VariantSpec spec = ShardedSpec(shards, count);
  Arena arena = Arena::Make("bench_sharded_query", spec.sax.series_length);
  arena.FillRaw(collection);
  storage::BufferPool pool(kPoolBytes);
  auto index = BuildWithPool(spec, &arena, &pool, collection);

  workload::AstronomyGenerator gen(
      {.series_length = static_cast<size_t>(spec.sax.series_length)});
  auto queries = gen.Generate(16);
  size_t q = 0;
  uint64_t found = 0;
  for (auto _ : state) {
    auto r = index->ExactSearch(queries[q % queries.size()], {}, nullptr);
    if (!r.ok()) std::abort();
    found += r.value().found ? 1 : 0;
    ++q;
    benchmark::DoNotOptimize(found);
  }
  state.counters["shards"] = static_cast<double>(shards);
}

BENCHMARK(BM_ShardedBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_ShardedQueryExact)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(4);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
