// E9 (Scenario 2): streaming exploration head-to-head — ADS+PP and ADS+TP
// (state of the art) vs CLSM-BTP (recommender's choice) on a seismic
// stream with interleaved window queries. Expected shape: CLSM-BTP ingests
// with sequential I/O at a fraction of ADS+'s cost while query latency
// stays low both under updates and in quiet phases.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "workload/seismic.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kBatch = 512;
// The stream must outgrow the memory budget (256 KiB = 8192 entries), or
// ADS+ never spills and ingestion looks artificially free.
constexpr int kBatches = 24;

enum class Contender { kAdsPp, kAdsTp, kClsmBtp };

palm::VariantSpec SpecFor(Contender c) {
  palm::VariantSpec spec;
  spec.sax = BenchSax(kLength);
  spec.buffer_entries = 1024;
  // Streaming: memory is scarce relative to the stream.
  spec.memory_budget_bytes = 256 << 10;
  switch (c) {
    case Contender::kAdsPp:
      spec.family = palm::IndexFamily::kAds;
      spec.mode = palm::StreamMode::kPP;
      break;
    case Contender::kAdsTp:
      spec.family = palm::IndexFamily::kAds;
      spec.mode = palm::StreamMode::kTP;
      break;
    case Contender::kClsmBtp:
      spec.family = palm::IndexFamily::kClsm;
      spec.mode = palm::StreamMode::kBTP;
      break;
  }
  return spec;
}

void RunScenario(benchmark::State& state, Contender contender) {
  double ingest_seconds = 0;
  double query_under_load_ms = 0;
  double quiet_query_ms = 0;
  storage::IoStats ingest_io;
  size_t partitions = 0;

  for (auto _ : state) {
    Arena arena = Arena::Make("bench_scn2", kLength);
    auto index = palm::CreateStreamingIndex(SpecFor(contender),
                                            arena.storage.get(), "stream",
                                            nullptr, arena.raw.get())
                     .TakeValue();
    workload::SeismicGenerator gen({.series_length = kLength,
                                    .batch_size = kBatch,
                                    .event_probability = 0.06});
    auto quake = gen.EarthquakeTemplate(99);

    uint64_t id = 0;
    int queries = 0;
    const storage::IoStats before = *arena.storage->io_stats();
    for (int b = 0; b < kBatches; ++b) {
      auto batch = gen.NextBatch();
      WallTimer ingest_timer;
      for (size_t i = 0; i < batch.series.size(); ++i) {
        arena.raw->Append(batch.series[i]).TakeValue();
        if (!index->Ingest(id++, batch.series[i], batch.timestamps[i]).ok()) {
          std::abort();
        }
      }
      ingest_seconds += ingest_timer.ElapsedSeconds();
      if (b % 4 == 3) {
        // Query the recent window while ingestion is mid-flight.
        const int64_t now = gen.current_time();
        core::SearchOptions opts;
        opts.window =
            core::TimeWindow{now - static_cast<int64_t>(3 * kBatch), now};
        WallTimer query_timer;
        benchmark::DoNotOptimize(
            index->ExactSearch(quake, opts, nullptr).value().found);
        query_under_load_ms += query_timer.ElapsedMillis();
        ++queries;
      }
    }
    ingest_io = arena.storage->io_stats()->Since(before);
    query_under_load_ms /= queries;

    // Quiet phase: updates stopped.
    if (!index->FlushAll().ok()) std::abort();
    const int64_t now = gen.current_time();
    core::SearchOptions opts;
    opts.window = core::TimeWindow{now / 2, now};
    WallTimer quiet_timer;
    for (int r = 0; r < 4; ++r) {
      benchmark::DoNotOptimize(
          index->ExactSearch(quake, opts, nullptr).value().found);
    }
    quiet_query_ms = quiet_timer.ElapsedMillis() / 4;
    partitions = index->num_partitions();
  }

  state.counters["ingest_seconds"] = ingest_seconds;
  state.counters["ingest_rand_writes"] =
      static_cast<double>(ingest_io.random_writes);
  state.counters["ingest_seq_writes"] =
      static_cast<double>(ingest_io.sequential_writes);
  state.counters["query_under_load_ms"] = query_under_load_ms;
  state.counters["quiet_query_ms"] = quiet_query_ms;
  state.counters["final_partitions"] = static_cast<double>(partitions);
}

void BM_Scenario2_AdsPP(benchmark::State& state) {
  RunScenario(state, Contender::kAdsPp);
}
void BM_Scenario2_AdsTP(benchmark::State& state) {
  RunScenario(state, Contender::kAdsTp);
}
void BM_Scenario2_ClsmBTP(benchmark::State& state) {
  RunScenario(state, Contender::kClsmBtp);
}

BENCHMARK(BM_Scenario2_AdsPP)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scenario2_AdsTP)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scenario2_ClsmBTP)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
