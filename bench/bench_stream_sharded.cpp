// Sharded streaming ingestion: per-Ingest latency (p50/p99/max), the
// cross-shard drain cost, and backpressure stall time, sync vs async ×
// shard counts. Sync streaming only exists unsharded (sharded streaming
// requires per-shard strands), so the K = 1 synchronous build is the
// baseline every async × K cell compares against. The bounded seal cap is
// armed so the stall counters report real pacing, not zeros — on a
// single-core runner the flusher shares the core with the producer and
// stall time dominates the tail; on real hardware the shards' strands
// spread across cores and both collapse. CI uploads the JSON per run so
// the trajectory is tracked over time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "palm/factory.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kSeries = 6144;
constexpr size_t kBufferEntries = 512;
constexpr size_t kInflightCap = 4;

palm::VariantSpec ShardedStreamSpec(bool async, size_t shards,
                                    palm::StreamMode mode) {
  palm::VariantSpec spec;
  spec.sax = BenchSax(kLength);
  spec.buffer_entries = kBufferEntries;
  spec.btp_merge_k = 2;
  spec.mode = mode;
  spec.family = mode == palm::StreamMode::kTP ? palm::IndexFamily::kCTree
                                              : palm::IndexFamily::kClsm;
  spec.async_ingest = async;
  spec.num_shards = shards;
  spec.max_inflight_seals = async ? kInflightCap : 0;
  return spec;
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[idx];
}

/// One full ingest + drain run; per-Ingest latencies feed the percentile
/// counters and the final stats snapshot feeds the stall counters.
void RunShardedIngest(benchmark::State& state, palm::StreamMode mode,
                      bool async, size_t shards) {
  const auto& collection = AstroCollection(kSeries, kLength);
  ThreadPool background(2);
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double drain_seconds = 0;
  double stall_ms_p99 = 0;
  double stalls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Arena arena = Arena::Make("bench_stream_sharded", kLength);
    arena.FillRaw(collection);
    palm::VariantSpec spec = ShardedStreamSpec(async, shards, mode);
    spec.background_pool = &background;
    auto index = palm::CreateStreamingIndex(spec, arena.storage.get(),
                                            "stream", nullptr,
                                            arena.raw.get())
                     .TakeValue();
    std::vector<double> latencies_us;
    latencies_us.reserve(collection.size());
    state.ResumeTiming();

    for (size_t i = 0; i < collection.size(); ++i) {
      WallTimer timer;
      if (!index->Ingest(i, collection[i], static_cast<int64_t>(i)).ok()) {
        std::abort();
      }
      latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    WallTimer drain;
    if (!index->FlushAll().ok()) std::abort();
    drain_seconds = drain.ElapsedSeconds();

    const stream::StreamingStats stats = index->SnapshotStats();
    stall_ms_p99 = stats.stall_ms_p99;
    stalls = static_cast<double>(stats.ingest_stalls);
    p50_us = Percentile(&latencies_us, 0.50);
    p99_us = Percentile(&latencies_us, 0.99);
    max_us = latencies_us.back();
  }
  state.counters["ingest_p50_us"] = p50_us;
  state.counters["ingest_p99_us"] = p99_us;
  state.counters["ingest_max_us"] = max_us;
  state.counters["drain_seconds"] = drain_seconds;
  state.counters["stall_ms_p99"] = stall_ms_p99;
  state.counters["ingest_stalls"] = stalls;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(collection.size()));
}

void BM_ShardedIngestTpSync(benchmark::State& state) {
  RunShardedIngest(state, palm::StreamMode::kTP, /*async=*/false,
                   /*shards=*/1);
}
BENCHMARK(BM_ShardedIngestTpSync)->Unit(benchmark::kMillisecond);

void BM_ShardedIngestTpAsync(benchmark::State& state) {
  RunShardedIngest(state, palm::StreamMode::kTP, /*async=*/true,
                   static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ShardedIngestTpAsync)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedIngestBtpSync(benchmark::State& state) {
  RunShardedIngest(state, palm::StreamMode::kBTP, /*async=*/false,
                   /*shards=*/1);
}
BENCHMARK(BM_ShardedIngestBtpSync)->Unit(benchmark::kMillisecond);

void BM_ShardedIngestBtpAsync(benchmark::State& state) {
  RunShardedIngest(state, palm::StreamMode::kBTP, /*async=*/true,
                   static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_ShardedIngestBtpAsync)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
