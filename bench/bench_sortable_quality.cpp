// E8 (the core claim, Section 1): interleaved (sortable) summarizations
// keep similar series adjacent in sorted order; segment-major packing does
// not. Two measurements over the same collection:
//   1. Neighborhood quality: how close the true nearest neighbor ranks in
//      each sorted order around the query's key (approximate-search
//      quality of a sorted layout).
//   2. Page pruning power: fraction of key-contiguous leaf pages an exact
//      query can skip via their SAX bounding regions.
// Expected shape: interleaving wins both by a wide margin.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "series/distance.h"
#include "series/paa.h"
#include "series/sortable.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kCount = 16'000;
constexpr size_t kQueries = 48;
constexpr size_t kNeighborhood = 128;  // Entries probed around the key.
constexpr size_t kPageEntries = 127;   // Entries per 4 KiB leaf.

struct Orders {
  std::vector<size_t> interleaved;    // Collection indices in key order.
  std::vector<size_t> segment_major;
  std::vector<series::SortableKey> interleaved_keys;  // Parallel, sorted.
  std::vector<series::SortableKey> segment_major_keys;
};

const Orders& MakeOrders(const series::SeriesCollection& collection,
                         const series::SaxConfig& sax) {
  static Orders orders;
  if (!orders.interleaved.empty()) return orders;
  const size_t n = collection.size();
  std::vector<series::SortableKey> ikeys(n);
  std::vector<series::SortableKey> skeys(n);
  for (size_t i = 0; i < n; ++i) {
    auto word = series::ComputeSax(collection[i], sax);
    ikeys[i] = series::InterleaveSax(word, sax);
    skeys[i] = series::SegmentMajorKey(word, sax);
  }
  auto order_by = [&](const std::vector<series::SortableKey>& keys) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return keys[a] < keys[b]; });
    return order;
  };
  orders.interleaved = order_by(ikeys);
  orders.segment_major = order_by(skeys);
  orders.interleaved_keys.resize(n);
  orders.segment_major_keys.resize(n);
  for (size_t i = 0; i < n; ++i) {
    orders.interleaved_keys[i] = ikeys[orders.interleaved[i]];
    orders.segment_major_keys[i] = skeys[orders.segment_major[i]];
  }
  return orders;
}

// Best true distance among the `kNeighborhood` sorted entries around the
// query key, divided by the true NN distance (>= 1; 1 = perfect).
double NeighborhoodRatio(const series::SeriesCollection& collection,
                         const std::vector<size_t>& order,
                         const std::vector<series::SortableKey>& sorted_keys,
                         const series::SortableKey& query_key,
                         std::span<const float> query, double true_nn) {
  auto it = std::lower_bound(sorted_keys.begin(), sorted_keys.end(),
                             query_key);
  const size_t center = static_cast<size_t>(it - sorted_keys.begin());
  const size_t begin = center >= kNeighborhood / 2
                           ? center - kNeighborhood / 2
                           : 0;
  const size_t end = std::min(order.size(), begin + kNeighborhood);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = begin; i < end; ++i) {
    best = std::min(best,
                    series::EuclideanSquared(query, collection[order[i]]));
  }
  return std::sqrt(best) / std::max(1e-9, std::sqrt(true_nn));
}

// Fraction of key-contiguous pages prunable by their SAX region given the
// true-NN distance as the best-so-far bound.
double PruningPower(const series::SeriesCollection& collection,
                    const std::vector<size_t>& order,
                    const series::SaxConfig& sax,
                    std::span<const float> query_paa, double bound) {
  size_t pruned = 0;
  size_t pages = 0;
  for (size_t start = 0; start < order.size(); start += kPageEntries) {
    const size_t end = std::min(order.size(), start + kPageEntries);
    series::SaxWord min_sym;
    series::SaxWord max_sym;
    min_sym.fill(0xFF);
    max_sym.fill(0);
    for (size_t i = start; i < end; ++i) {
      auto word = series::ComputeSax(collection[order[i]], sax);
      for (int s = 0; s < sax.num_segments; ++s) {
        min_sym[s] = std::min(min_sym[s], word[s]);
        max_sym[s] = std::max(max_sym[s], word[s]);
      }
    }
    auto region = series::RegionFromSymbolRange(min_sym, max_sym, sax);
    if (series::MinDistSquared(query_paa, region, sax) >= bound) ++pruned;
    ++pages;
  }
  return pages == 0 ? 0.0 : static_cast<double>(pruned) / pages;
}

void RunQuality(benchmark::State& state, bool interleaved) {
  const series::SaxConfig sax = BenchSax();
  const auto& collection = AstroCollection(kCount);
  const Orders& orders = MakeOrders(collection, sax);
  auto queries = workload::MakeNoisyQueries(collection, kQueries, 0.5, 77);

  double ratio_sum = 0;
  double pruning_sum = 0;
  for (auto _ : state) {
    ratio_sum = 0;
    pruning_sum = 0;
    for (const auto& query : queries) {
      double true_nn = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < collection.size(); ++i) {
        true_nn = std::min(true_nn,
                           series::EuclideanSquared(query, collection[i]));
      }
      auto word = series::ComputeSax(query, sax);
      auto paa = series::ComputePaa(query, sax.num_segments);
      if (interleaved) {
        ratio_sum += NeighborhoodRatio(
            collection, orders.interleaved, orders.interleaved_keys,
            series::InterleaveSax(word, sax), query, true_nn);
        pruning_sum += PruningPower(collection, orders.interleaved, sax, paa,
                                    true_nn * 1.0001);
      } else {
        ratio_sum += NeighborhoodRatio(
            collection, orders.segment_major, orders.segment_major_keys,
            series::SegmentMajorKey(word, sax), query, true_nn);
        pruning_sum += PruningPower(collection, orders.segment_major, sax,
                                    paa, true_nn * 1.0001);
      }
    }
  }
  state.counters["nn_distance_ratio"] = ratio_sum / kQueries;
  state.counters["page_pruning_fraction"] = pruning_sum / kQueries;
}

void BM_Sortable_Interleaved(benchmark::State& state) {
  RunQuality(state, true);
}
void BM_Sortable_SegmentMajor(benchmark::State& state) {
  RunQuality(state, false);
}
BENCHMARK(BM_Sortable_Interleaved)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sortable_SegmentMajor)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
