// E5 (Section 2, memory-vs-construction): construction cost as the memory
// budget shrinks. Expected shape: Coconut (CTree) degrades gracefully —
// the external sort spills runs and at worst adds a merge pass — while
// ADS+, which relies on in-memory buffering of similar series, collapses
// into per-insert random I/O once its buffers can't hold the data.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace coconut {
namespace bench {
namespace {

constexpr size_t kCount = 16'000;

void RunWithBudget(benchmark::State& state, palm::IndexFamily family) {
  const size_t budget = static_cast<size_t>(state.range(0)) << 10;  // KiB.
  const auto& collection = AstroCollection(kCount);
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = family;
  spec.memory_budget_bytes = budget;
  spec.buffer_entries =
      std::max<size_t>(64, budget / sizeof(core::IndexEntry));

  storage::IoStats io;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_memory", 256);
    arena.FillRaw(collection);
    const storage::IoStats before = *arena.storage->io_stats();
    auto index = BuildStatic(spec, &arena, collection);
    io = arena.storage->io_stats()->Since(before);
    benchmark::DoNotOptimize(index->num_entries());
  }
  state.counters["budget_kib"] = static_cast<double>(state.range(0));
  state.counters["seq_writes"] = static_cast<double>(io.sequential_writes);
  state.counters["rand_writes"] = static_cast<double>(io.random_writes);
  state.counters["rand_reads"] = static_cast<double>(io.random_reads);
}

void BM_Memory_CTree(benchmark::State& state) {
  RunWithBudget(state, palm::IndexFamily::kCTree);
}
void BM_Memory_ADS(benchmark::State& state) {
  RunWithBudget(state, palm::IndexFamily::kAds);
}

// Budgets in KiB: 64 KiB (a fraction of the 512 KB summarization set),
// up to 16 MiB (everything fits).
BENCHMARK(BM_Memory_CTree)
    ->Arg(64)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Memory_ADS)
    ->Arg(64)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
