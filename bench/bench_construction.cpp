// E1 (Scenario 1 / Coconut Fig. "index construction"): bulk construction
// across families and dataset sizes. Expected shape: CTree and CLSM build
// several times faster than ADS+, with random writes O(1) vs O(N/buffer).
// The *_Threads benchmarks isolate the parallel bulk-load engine: run
// generation with N worker threads against the single-threaded baseline,
// identical output guaranteed by the extsort determinism tests.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/entry.h"
#include "extsort/external_sorter.h"

namespace coconut {
namespace bench {
namespace {

void RunConstruction(benchmark::State& state, palm::IndexFamily family) {
  const size_t count = static_cast<size_t>(state.range(0));
  const auto& collection = AstroCollection(count);
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = family;
  spec.buffer_entries = 4096;
  // A realistic constrained budget: ~1/8 of the summarization set.
  spec.memory_budget_bytes =
      std::max<size_t>(64 << 10, count * sizeof(core::IndexEntry) / 8);

  storage::IoStats io;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_construction", spec.sax.series_length);
    arena.FillRaw(collection);
    const storage::IoStats before = *arena.storage->io_stats();
    auto index = BuildStatic(spec, &arena, collection);
    io = arena.storage->io_stats()->Since(before);
    benchmark::DoNotOptimize(index->num_entries());
  }
  state.counters["seq_writes"] = static_cast<double>(io.sequential_writes);
  state.counters["rand_writes"] = static_cast<double>(io.random_writes);
  state.counters["series"] = static_cast<double>(count);
  state.counters["series_per_sec"] = benchmark::Counter(
      static_cast<double>(count), benchmark::Counter::kIsIterationInvariantRate);
}

// Parallel run generation: sort a fixed record set with state.range(0)
// worker threads. The budget is scaled so every configuration spills the
// same 16 runs of 12500 records (the sorter sizes chunks as
// budget/(threads+1) in parallel mode, budget/1 serially) — the sweep then
// varies worker parallelism only, not run size or merge fan-in.
void BM_ParallelRunGeneration(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t count = 200000;
  std::vector<core::IndexEntry> entries(count);
  Rng rng(7);
  for (size_t i = 0; i < count; ++i) {
    entries[i].key = series::SortableKey{{rng.NextUint64(), rng.NextUint64()}};
    entries[i].series_id = i;
    entries[i].timestamp = 0;
  }
  const size_t run_bytes = count * sizeof(core::IndexEntry) / 16;
  uint64_t runs = 0;
  for (auto _ : state) {
    auto storage = storage::MakeTempStorage("bench_psort").TakeValue();
    extsort::ExternalSorter::Options opts;
    opts.record_size = sizeof(core::IndexEntry);
    opts.memory_budget_bytes =
        threads > 1 ? run_bytes * (threads + 1) : run_bytes;
    opts.threads = threads;
    opts.storage = storage.get();
    opts.less = core::EntryBytesLess;
    auto sorter = extsort::ExternalSorter::Create(opts).TakeValue();
    for (const auto& e : entries) {
      if (auto st = sorter->Add(&e); !st.ok()) std::abort();
    }
    auto stream = sorter->Finish().TakeValue();
    core::IndexEntry rec;
    uint64_t drained = 0;
    while (stream->Next(reinterpret_cast<uint8_t*>(&rec)).TakeValue()) {
      ++drained;
    }
    benchmark::DoNotOptimize(drained);
    runs = sorter->stats().runs_spilled;
    (void)storage->Clear();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["runs_spilled"] = static_cast<double>(runs);
  state.counters["records_per_sec"] = benchmark::Counter(
      static_cast<double>(count), benchmark::Counter::kIsIterationInvariantRate);
}

// Full CTree bulk load with a parallel construction sort (the end-to-end
// speedup the GUI's build panel would show).
void BM_CTreeConstruct_Threads(benchmark::State& state) {
  const size_t count = 16000;
  const auto& collection = AstroCollection(count);
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = palm::IndexFamily::kCTree;
  spec.construction_threads = static_cast<size_t>(state.range(0));
  spec.memory_budget_bytes =
      std::max<size_t>(64 << 10, count * sizeof(core::IndexEntry) / 8);
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_ctree_par", spec.sax.series_length);
    arena.FillRaw(collection);
    auto index = BuildStatic(spec, &arena, collection);
    benchmark::DoNotOptimize(index->num_entries());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["series_per_sec"] = benchmark::Counter(
      static_cast<double>(count), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Construct_ADS(benchmark::State& state) {
  RunConstruction(state, palm::IndexFamily::kAds);
}
void BM_Construct_CTree(benchmark::State& state) {
  RunConstruction(state, palm::IndexFamily::kCTree);
}
void BM_Construct_CLSM(benchmark::State& state) {
  RunConstruction(state, palm::IndexFamily::kClsm);
}

BENCHMARK(BM_ParallelRunGeneration)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_CTreeConstruct_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Construct_ADS)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Construct_CTree)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Construct_CLSM)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
