// E1 (Scenario 1 / Coconut Fig. "index construction"): bulk construction
// across families and dataset sizes. Expected shape: CTree and CLSM build
// several times faster than ADS+, with random writes O(1) vs O(N/buffer).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace coconut {
namespace bench {
namespace {

void RunConstruction(benchmark::State& state, palm::IndexFamily family) {
  const size_t count = static_cast<size_t>(state.range(0));
  const auto& collection = AstroCollection(count);
  palm::VariantSpec spec;
  spec.sax = BenchSax();
  spec.family = family;
  spec.buffer_entries = 4096;
  // A realistic constrained budget: ~1/8 of the summarization set.
  spec.memory_budget_bytes =
      std::max<size_t>(64 << 10, count * sizeof(core::IndexEntry) / 8);

  storage::IoStats io;
  for (auto _ : state) {
    Arena arena = Arena::Make("bench_construction", spec.sax.series_length);
    arena.FillRaw(collection);
    const storage::IoStats before = *arena.storage->io_stats();
    auto index = BuildStatic(spec, &arena, collection);
    io = arena.storage->io_stats()->Since(before);
    benchmark::DoNotOptimize(index->num_entries());
  }
  state.counters["seq_writes"] = static_cast<double>(io.sequential_writes);
  state.counters["rand_writes"] = static_cast<double>(io.random_writes);
  state.counters["series"] = static_cast<double>(count);
  state.counters["series_per_sec"] = benchmark::Counter(
      static_cast<double>(count), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Construct_ADS(benchmark::State& state) {
  RunConstruction(state, palm::IndexFamily::kAds);
}
void BM_Construct_CTree(benchmark::State& state) {
  RunConstruction(state, palm::IndexFamily::kCTree);
}
void BM_Construct_CLSM(benchmark::State& state) {
  RunConstruction(state, palm::IndexFamily::kClsm);
}

BENCHMARK(BM_Construct_ADS)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Construct_CTree)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Construct_CLSM)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace coconut

BENCHMARK_MAIN();
