// Per-kernel throughput of the runtime-dispatched SIMD layer
// (series::kernels): PAA, SAX symbolization, squared Euclidean distance,
// its early-abandoning variant, the one-candidate/many-query batch
// kernel, and the MINDIST accumulator — each measured under every ISA
// tier this build AND this CPU support (scalar always; AVX2/AVX-512 when
// present). Benchmarks are registered at runtime from SupportedIsas(), so
// the same binary reports whatever the host can do.
//
// Counters: items_per_second is points processed (segments for the SAX
// and MINDIST kernels); speedup_vs_scalar compares each tier's measured
// ns/call against the scalar tier of the same kernel (scalar entries run
// first and seed the baseline, so filter expressions that exclude scalar
// report 0). CI uploads the JSON as BENCH_kernels.json to track the
// scalar-vs-SIMD gap over time; single-core runners measure exactly this
// per-core kernel throughput, not any parallel speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "series/breakpoints.h"
#include "series/kernels.h"
#include "series/series.h"

namespace coconut {
namespace bench {
namespace {

namespace k = series::kernels;

constexpr size_t kLength = 256;
constexpr int kSegments = 16;
constexpr int kBits = 8;
constexpr size_t kBatchQueries = 8;

/// Shared inputs: z-normalized random walks, their PAA, and a SAX region.
struct KernelData {
  std::vector<float> a;
  std::vector<float> b;
  std::vector<std::vector<float>> queries;
  std::vector<const float*> query_ptrs;
  std::vector<double> thresholds;
  std::vector<float> paa;
  std::vector<float> lower;
  std::vector<float> upper;
};

const KernelData& Data() {
  static const KernelData data = [] {
    KernelData d;
    Rng rng(42);
    auto walk = [&rng](size_t n) {
      std::vector<float> v(n);
      double x = 0.0;
      for (size_t i = 0; i < n; ++i) {
        x += rng.NextGaussian();
        v[i] = static_cast<float>(x);
      }
      series::ZNormalize(v);
      return v;
    };
    d.a = walk(kLength);
    d.b = walk(kLength);
    for (size_t q = 0; q < kBatchQueries; ++q) d.queries.push_back(walk(kLength));
    for (const auto& q : d.queries) d.query_ptrs.push_back(q.data());
    d.thresholds.assign(kBatchQueries, std::numeric_limits<double>::infinity());
    d.paa.resize(kSegments);
    k::Active().compute_paa(d.a.data(), kLength, kSegments, d.paa.data());
    // A region slightly off the query's PAA so mindist_acc does real work.
    for (int s = 0; s < kSegments; ++s) {
      d.lower.push_back(d.paa[s] + 0.25f);
      d.upper.push_back(d.paa[s] + 1.0f);
    }
    return d;
  }();
  return data;
}

/// Scalar ns/call per kernel, seeded by the scalar benchmarks (which are
/// registered, and therefore run, first).
std::map<std::string, double>& ScalarBaseline() {
  static std::map<std::string, double> ns;
  return ns;
}

/// Runs `fn` under `state` while manually timing the loop, then reports
/// throughput and the speedup against the recorded scalar baseline.
template <typename Fn>
void MeasureKernel(benchmark::State& state, const std::string& kernel,
                   k::Isa isa, size_t items_per_call, Fn&& fn) {
  if (!k::ForceIsa(isa)) {
    state.SkipWithError("ISA not supported on this host");
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    fn();
  }
  const double elapsed_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count();
  k::ResetForcedIsa();

  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(items_per_call));
  const double ns_per_call =
      state.iterations() > 0 ? elapsed_ns / state.iterations() : 0.0;
  if (isa == k::Isa::kScalar) ScalarBaseline()[kernel] = ns_per_call;
  const auto base = ScalarBaseline().find(kernel);
  state.counters["speedup_vs_scalar"] =
      (base != ScalarBaseline().end() && ns_per_call > 0.0)
          ? base->second / ns_per_call
          : 0.0;
  state.SetLabel(k::IsaName(isa));
}

void BM_Paa(benchmark::State& state, k::Isa isa) {
  const KernelData& d = Data();
  float out[kSegments];
  MeasureKernel(state, "paa", isa, kLength, [&] {
    k::Active().compute_paa(d.a.data(), kLength, kSegments, out);
    benchmark::DoNotOptimize(out[0]);
  });
}

void BM_Sax(benchmark::State& state, k::Isa isa) {
  const KernelData& d = Data();
  uint8_t out[kSegments];
  MeasureKernel(state, "sax", isa, kSegments, [&] {
    k::Active().sax_from_paa(d.paa.data(), kSegments, kBits, out);
    benchmark::DoNotOptimize(out[0]);
  });
}

void BM_Euclid(benchmark::State& state, k::Isa isa) {
  const KernelData& d = Data();
  MeasureKernel(state, "euclid", isa, kLength, [&] {
    double r = k::Active().euclidean_sq(d.a.data(), d.b.data(), kLength);
    benchmark::DoNotOptimize(r);
  });
}

void BM_EuclidEa(benchmark::State& state, k::Isa isa) {
  const KernelData& d = Data();
  // No-abandon threshold: measures the full-length EA code path.
  MeasureKernel(state, "euclid_ea", isa, kLength, [&] {
    double r = k::Active().euclidean_sq_ea(
        d.a.data(), d.b.data(), kLength,
        std::numeric_limits<double>::infinity());
    benchmark::DoNotOptimize(r);
  });
}

void BM_EuclidBatch(benchmark::State& state, k::Isa isa) {
  const KernelData& d = Data();
  double out[kBatchQueries];
  MeasureKernel(state, "euclid_batch", isa, kLength * kBatchQueries, [&] {
    k::Active().euclidean_sq_ea_batch(d.a.data(), kLength,
                                      d.query_ptrs.data(), kBatchQueries,
                                      d.thresholds.data(), out);
    benchmark::DoNotOptimize(out[0]);
  });
}

void BM_MinDist(benchmark::State& state, k::Isa isa) {
  const KernelData& d = Data();
  MeasureKernel(state, "mindist", isa, kSegments, [&] {
    double r = k::Active().mindist_acc(d.paa.data(), d.lower.data(),
                                       d.upper.data(), kSegments);
    benchmark::DoNotOptimize(r);
  });
}

void RegisterAll() {
  struct Entry {
    const char* name;
    void (*fn)(benchmark::State&, k::Isa);
  };
  const Entry entries[] = {
      {"BM_Paa", BM_Paa},           {"BM_Sax", BM_Sax},
      {"BM_Euclid", BM_Euclid},     {"BM_EuclidEa", BM_EuclidEa},
      {"BM_EuclidBatch", BM_EuclidBatch}, {"BM_MinDist", BM_MinDist},
  };
  // Scalar first so every SIMD entry finds its baseline recorded.
  for (const Entry& e : entries) {
    for (k::Isa isa : k::SupportedIsas()) {
      const std::string name = std::string(e.name) + "/" + k::IsaName(isa);
      benchmark::RegisterBenchmark(name.c_str(), e.fn, isa)
          ->Unit(benchmark::kNanosecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace coconut

int main(int argc, char** argv) {
  coconut::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
