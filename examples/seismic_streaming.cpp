// Scenario 2 of the demonstration: dynamic streaming data series. Seismic
// batches arrive continually; the goal is to find earthquake-like patterns
// inside variable-sized temporal windows while ingestion continues. We
// compare the state of the art (ADS+ with PP and TP) against the
// recommender's pick, a non-materialized CLSM with BTP.
//
//   ./seismic_streaming
#include <cstdio>
#include <filesystem>

#include "palm/comparison.h"
#include "palm/server.h"
#include "workload/seismic.h"

using namespace coconut;
using palm::IndexFamily;
using palm::StreamMode;
using palm::VariantSpec;

namespace {

constexpr size_t kLength = 256;
constexpr size_t kBatch = 512;
constexpr int kBatches = 24;

series::SaxConfig Sax() {
  return series::SaxConfig{.series_length = kLength,
                           .num_segments = 16,
                           .bits_per_segment = 8};
}

double GetJsonNumber(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0.0;
  return std::atof(json.c_str() + pos + key.size() + 3);
}

}  // namespace

int main() {
  const std::string root = std::filesystem::temp_directory_path().string() +
                           "/coconut_seismic_example";
  auto server = palm::Server::Create(root).TakeValue();

  // The recommender's advice for this scenario.
  palm::Scenario scenario;
  scenario.sax = Sax();
  scenario.streaming = true;
  scenario.window_queries = true;
  scenario.dataset_size = kBatch * kBatches;
  scenario.expected_queries = 30;
  std::printf("recommender: %s\n\n", server->RecommendJson(scenario).c_str());

  // The three contenders of the demo script.
  struct Contender {
    const char* name;
    VariantSpec spec;
  };
  std::vector<Contender> contenders;
  {
    VariantSpec ads_pp;
    ads_pp.sax = Sax();
    ads_pp.family = IndexFamily::kAds;
    ads_pp.mode = StreamMode::kPP;
    // A stream outgrows memory; cap the buffering budget so every
    // contender pays its structural I/O (the GUI's memory knob).
    ads_pp.memory_budget_bytes = 256 << 10;
    contenders.push_back({"ads_pp", ads_pp});
    VariantSpec ads_tp = ads_pp;
    ads_tp.mode = StreamMode::kTP;
    ads_tp.buffer_entries = 2048;
    contenders.push_back({"ads_tp", ads_tp});
    VariantSpec clsm_btp;
    clsm_btp.sax = Sax();
    clsm_btp.family = IndexFamily::kClsm;
    clsm_btp.mode = StreamMode::kBTP;
    clsm_btp.buffer_entries = 2048;
    contenders.push_back({"clsm_btp", clsm_btp});
  }
  for (const auto& c : contenders) {
    server->CreateStream(c.name, c.spec).TakeValue();
  }

  // Stream the batches into every contender, interleaving window queries
  // to model exploration-under-ingestion.
  workload::SeismicGenerator gen({.series_length = kLength,
                                  .batch_size = kBatch,
                                  .event_probability = 0.06});
  auto quake = gen.EarthquakeTemplate(77);

  std::vector<double> ingest_seconds(contenders.size(), 0.0);
  std::vector<double> query_under_load_ms(contenders.size(), 0.0);
  int queries_done = 0;

  for (int b = 0; b < kBatches; ++b) {
    auto batch = gen.NextBatch();
    for (size_t c = 0; c < contenders.size(); ++c) {
      std::string report =
          server->IngestBatch(contenders[c].name, batch.series,
                              batch.timestamps)
              .TakeValue();
      ingest_seconds[c] += GetJsonNumber(report, "seconds");
    }
    // Every few batches, search the most recent window while updates are
    // in flight.
    if (b % 6 == 5) {
      const int64_t now = gen.current_time();
      core::TimeWindow window{now - static_cast<int64_t>(4 * kBatch), now};
      for (size_t c = 0; c < contenders.size(); ++c) {
        palm::QueryRequest req;
        req.index = contenders[c].name;
        req.query = quake;
        req.window = window;
        std::string response = server->Query(req).TakeValue();
        query_under_load_ms[c] += GetJsonNumber(response, "seconds") * 1e3;
      }
      ++queries_done;
    }
  }

  std::printf("after %d batches (%d series each):\n%s\n", kBatches,
              static_cast<int>(kBatch), server->ListIndexes().c_str());

  std::vector<palm::ComparisonRow> ingest_rows;
  std::vector<palm::ComparisonRow> query_rows;
  for (size_t c = 0; c < contenders.size(); ++c) {
    ingest_rows.push_back({contenders[c].name, ingest_seconds[c]});
    query_rows.push_back(
        {contenders[c].name, query_under_load_ms[c] / queries_done});
  }
  std::printf("%s\n", palm::RenderBarChart("Total ingestion time", "seconds",
                                           ingest_rows)
                          .c_str());
  std::printf("%s\n",
              palm::RenderBarChart(
                  "Window query latency under updates", "ms (avg)",
                  query_rows)
                  .c_str());

  // Quiet phase: no updates in flight; sweep window sizes.
  std::printf("quiet-phase window sweep (exact query I/O):\n");
  const int64_t now = gen.current_time();
  for (double fraction : {0.05, 0.25, 1.0}) {
    const auto span = static_cast<int64_t>(fraction * now);
    core::TimeWindow window{now - span, now};
    std::printf("  window = %3.0f%% of history:\n", fraction * 100);
    for (const auto& c : contenders) {
      palm::QueryRequest req;
      req.index = c.name;
      req.query = quake;
      req.window = window;
      std::string response = server->Query(req).TakeValue();
      std::printf(
          "    %-9s %6.2f ms, reads(seq=%4.0f rand=%4.0f), partitions "
          "visited=%2.0f skipped=%2.0f\n",
          c.name, GetJsonNumber(response, "seconds") * 1e3,
          GetJsonNumber(response, "sequential_reads"),
          GetJsonNumber(response, "random_reads"),
          GetJsonNumber(response, "partitions_visited"),
          GetJsonNumber(response, "partitions_skipped"));
    }
  }

  std::filesystem::remove_all(root);
  return 0;
}
