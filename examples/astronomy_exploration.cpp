// Scenario 1 of the demonstration: exploring a big static collection of
// astronomy light curves. We replay the demo script: first index with the
// state-of-the-art ADS+, then consult the recommender, repeat with its
// choice (a CoconutTree), compare construction/query metrics and access
// patterns, and watch the recommendation flip to a materialized CTree as
// the projected query count grows.
//
//   ./astronomy_exploration
#include <cstdio>
#include <filesystem>

#include "palm/comparison.h"
#include "palm/heatmap.h"
#include "palm/server.h"
#include "workload/astronomy.h"

using namespace coconut;
using palm::IndexFamily;
using palm::StreamMode;
using palm::VariantSpec;

namespace {

constexpr size_t kSeries = 16'000;
constexpr size_t kLength = 256;

series::SaxConfig Sax() {
  return series::SaxConfig{.series_length = kLength,
                           .num_segments = 16,
                           .bits_per_segment = 8};
}

double GetJsonNumber(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0.0;
  return std::atof(json.c_str() + pos + key.size() + 3);
}

}  // namespace

int main() {
  const std::string root = std::filesystem::temp_directory_path().string() +
                           "/coconut_astronomy_example";
  auto server = palm::Server::Create(root).TakeValue();

  // -- The raw astronomy collection (synthetic light curves with planted
  //    binary-star / supernova / variable-star patterns).
  workload::AstronomyGenerator::Options gopts;
  gopts.series_length = kLength;
  workload::AstronomyGenerator gen(gopts);
  auto collection = gen.Generate(kSeries);
  if (auto st = server->RegisterDataset("sky", collection, nullptr); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("collection: %zu light curves of length %zu\n\n", kSeries,
              kLength);

  // -- Step 1: the state of the art, ADS+.
  VariantSpec ads;
  ads.sax = Sax();
  ads.family = IndexFamily::kAds;
  std::string ads_report = server->BuildIndex("ads", ads, "sky").TakeValue();
  std::printf("ADS+ build:  %s\n\n", ads_report.c_str());

  // -- Step 2: consult the recommender for this scenario.
  palm::Scenario scenario;
  scenario.sax = Sax();
  scenario.streaming = false;
  scenario.dataset_size = kSeries;
  scenario.expected_queries = 20;
  std::printf("recommender: %s\n\n",
              server->RecommendJson(scenario).c_str());

  // -- Step 3: build the recommended index (non-materialized CTree).
  VariantSpec ctree;
  ctree.sax = Sax();
  ctree.family = IndexFamily::kCTree;
  std::string ct_report = server->BuildIndex("ctree", ctree, "sky").TakeValue();
  std::printf("CTree build: %s\n\n", ct_report.c_str());

  std::printf("%s\n",
              palm::RenderBarChart(
                  "Index construction", "seconds",
                  {{"ADS+", GetJsonNumber(ads_report, "build_seconds")},
                   {"CTree", GetJsonNumber(ct_report, "build_seconds")}})
                  .c_str());
  std::printf("%s\n",
              palm::RenderBarChart(
                  "Construction random writes", "I/Os",
                  {{"ADS+", GetJsonNumber(ads_report, "random_writes")},
                   {"CTree", GetJsonNumber(ct_report, "random_writes")}})
                  .c_str());

  // -- Step 4: search for known patterns of interest and compare access
  //    patterns through the heat map.
  for (auto cls : {workload::AstronomyClass::kSupernova,
                   workload::AstronomyClass::kBinaryStar}) {
    auto pattern = gen.PatternTemplate(cls, 99);
    std::printf("---- searching for a %s pattern ----\n",
                workload::AstronomyClassName(cls));
    for (const std::string& index : {std::string("ads"), std::string("ctree")}) {
      palm::QueryRequest req;
      req.index = index;
      req.query = pattern;
      req.exact = true;
      req.capture_heatmap = true;
      req.heatmap_time_bins = 8;
      req.heatmap_location_bins = 56;
      std::string response = server->Query(req).TakeValue();
      const auto id = static_cast<size_t>(GetJsonNumber(response, "series_id"));
      std::printf(
          "%-6s -> series %zu (true class %s), %.1f ms, locality %.2f\n",
          index.c_str(), id, workload::AstronomyClassName(gen.labels()[id]),
          GetJsonNumber(response, "seconds") * 1e3,
          GetJsonNumber(response, "access_locality"));
    }
  }

  // Render one heat map pair for the demo narrative.
  std::printf("\naccess-pattern heat maps (one exact query):\n");
  for (const std::string& index : {std::string("ads"), std::string("ctree")}) {
    auto pattern = gen.PatternTemplate(workload::AstronomyClass::kSupernova, 7);
    palm::QueryRequest req;
    req.index = index;
    req.query = pattern;
    req.capture_heatmap = true;
    (void)server->Query(req).TakeValue();
    auto* mgr = server->index_storage(index);
    palm::HeatMap map = palm::BuildHeatMap(mgr->tracker()->events(), 8, 56);
    std::printf("[%s] %llu page accesses over %llu files\n%s\n", index.c_str(),
                static_cast<unsigned long long>(map.total_events),
                static_cast<unsigned long long>(map.distinct_files),
                palm::RenderHeatMapText(map).c_str());
  }

  // -- Step 5: raise the projected query count; the recommender flips to a
  //    materialized CTree.
  scenario.expected_queries = 1'000'000;
  std::printf("with 1M projected queries: %s\n\n",
              server->RecommendJson(scenario).c_str());

  VariantSpec ctree_full = ctree;
  ctree_full.materialized = true;
  std::string full_report =
      server->BuildIndex("ctree_full", ctree_full, "sky").TakeValue();

  auto pattern = gen.PatternTemplate(workload::AstronomyClass::kSupernova, 3);
  std::vector<palm::ComparisonRow> rows;
  for (const std::string& index :
       {std::string("ads"), std::string("ctree"), std::string("ctree_full")}) {
    palm::QueryRequest req;
    req.index = index;
    req.query = pattern;
    std::string response = server->Query(req).TakeValue();
    rows.push_back({index, GetJsonNumber(response, "seconds") * 1e3});
  }
  std::printf("%s\n",
              palm::RenderBarChart("Exact query latency", "ms", rows).c_str());

  std::filesystem::remove_all(root);
  return 0;
}
