// A full Coconut Palm "GUI session" against the algorithms server,
// exercising the JSON request/response protocol end to end the way the
// PHP/JS client of the paper would: register data, ask the recommender,
// build competing indexes, query them, and fetch a heat map.
//
//   ./palm_session
#include <cstdio>
#include <filesystem>

#include "palm/server.h"
#include "workload/generator.h"

using namespace coconut;
using palm::IndexFamily;
using palm::VariantSpec;

int main() {
  const std::string root = std::filesystem::temp_directory_path().string() +
                           "/coconut_palm_session";
  auto server = palm::Server::Create(root).TakeValue();

  series::SaxConfig sax{.series_length = 128, .num_segments = 16,
                        .bits_per_segment = 8};

  std::printf(">> registering dataset 'walk' (8000 x 128)\n");
  workload::RandomWalkGenerator gen(128, 4242);
  auto collection = gen.Generate(8000);
  if (auto st = server->RegisterDataset("walk", collection, nullptr);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf(">> GET /recommend\n");
  palm::Scenario scenario;
  scenario.sax = sax;
  scenario.dataset_size = 8000;
  scenario.expected_queries = 50;
  std::printf("<< %s\n\n", server->RecommendJson(scenario).c_str());

  std::printf(">> POST /build {variant: CTree}\n");
  VariantSpec ctree;
  ctree.sax = sax;
  ctree.family = IndexFamily::kCTree;
  std::printf("<< %s\n\n",
              server->BuildIndex("ctree", ctree, "walk").TakeValue().c_str());

  std::printf(">> POST /build {variant: CLSM}\n");
  VariantSpec clsm;
  clsm.sax = sax;
  clsm.family = IndexFamily::kClsm;
  clsm.buffer_entries = 1024;
  std::printf("<< %s\n\n",
              server->BuildIndex("clsm", clsm, "walk").TakeValue().c_str());

  std::printf(">> GET /indexes\n");
  std::printf("<< %s\n\n", server->ListIndexes().c_str());

  std::printf(">> POST /query {index: ctree, exact: true, heatmap: true}\n");
  auto queries = workload::MakeNoisyQueries(collection, 1, 0.3, 17);
  palm::QueryRequest req;
  req.index = "ctree";
  req.query = queries[0];
  req.exact = true;
  req.capture_heatmap = true;
  req.heatmap_time_bins = 6;
  req.heatmap_location_bins = 24;
  std::printf("<< %s\n\n", server->Query(req).TakeValue().c_str());

  std::printf(">> POST /query {index: clsm, exact: false}\n");
  req.index = "clsm";
  req.exact = false;
  req.capture_heatmap = false;
  std::printf("<< %s\n\n", server->Query(req).TakeValue().c_str());

  std::printf(">> POST /drop_index {index: clsm}\n");
  std::printf("<< %s\n\n", server->DropIndex("clsm").TakeValue().c_str());

  std::printf(">> POST /drop_dataset {dataset: walk}\n");
  std::printf("<< %s\n\n", server->DropDataset("walk").TakeValue().c_str());

  std::printf(">> GET /indexes\n");
  std::printf("<< %s\n", server->ListIndexes().c_str());

  std::filesystem::remove_all(root);
  return 0;
}
