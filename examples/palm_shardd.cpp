// A Coconut Palm shard server: one complete single-process Palm service
// (datasets, indexes, durable streams) exposed over HTTP for a
// distributed deployment. N of these plus one coordinator
// (palm_serve --topology ...) form the palm::dist cluster; each shard
// holds one invSAX key range, routed by the coordinator.
//
//   ./palm_shardd [--port N] [--port-file PATH] [--root PATH]
//
//   --port      TCP port on 127.0.0.1 (default 0 = kernel-chosen
//               ephemeral port; the chosen port is printed on stdout)
//   --port-file also write the chosen port (one line) to PATH, so
//               launch scripts can wait for the bind and read it back
//   --root      data directory for raw stores and WALs (default: a
//               fresh temp directory, removed on exit; a fixed --root
//               makes durable streams survive shard restarts)
//
// Serves every POST /api/v1/<method> of palm_serve plus the binary
// bulk-ingest endpoint POST /api/v1/ingest_batch_bin (Content-Type
// application/x-palm-ingest-v1 — see src/dist/binary_codec.h).
#include <stdlib.h>  // mkdtemp (POSIX)

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "dist/service_endpoint.h"
#include "palm/api.h"
#include "palm/http_server.h"

using namespace coconut;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::string port_file;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: palm_shardd [--port N] [--port-file PATH] "
                   "[--root PATH]\n");
      return 1;
    }
  }

  bool ephemeral_root = false;
  if (root.empty()) {
    root = (std::filesystem::temp_directory_path() /
            "coconut_palm_shardd.XXXXXX")
               .string();
    if (::mkdtemp(root.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp %s: %s\n", root.c_str(),
                   std::strerror(errno));
      return 1;
    }
    ephemeral_root = true;
  } else {
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
      std::fprintf(stderr, "mkdir %s: %s\n", root.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  auto service_result = palm::api::Service::Create(root);
  if (!service_result.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_result.status().ToString().c_str());
    return 1;
  }
  auto service = service_result.TakeValue();
  palm::dist::ServiceEndpoint endpoint(service.get());

  palm::HttpServerOptions options;
  options.port = port;
  auto server_result = palm::HttpServer::Start(&endpoint, options);
  if (!server_result.ok()) {
    std::fprintf(stderr, "http: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto server = server_result.TakeValue();

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "port file %s: %s\n", port_file.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fprintf(f, "%u\n", server->port());
    std::fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("palm_shardd listening on http://%s:%u (root %s)\n",
              server->address().c_str(), server->port(), root.c_str());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down...\n");
  server->Stop();
  if (ephemeral_root) std::filesystem::remove_all(root);
  return 0;
}
