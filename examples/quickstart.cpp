// Quickstart: build a CoconutTree over a synthetic collection, run
// approximate and exact nearest-neighbor queries, and inspect the I/O
// profile that makes Coconut fast.
//
//   ./quickstart
#include <cstdio>

#include "ctree/ctree.h"
#include "storage/storage_manager.h"
#include "workload/generator.h"

using namespace coconut;

int main() {
  // 1. A workspace. Every index variant gets its own instrumented storage
  //    so sequential/random I/O can be told apart.
  auto storage = storage::MakeTempStorage("quickstart").TakeValue();

  // 2. Data: 20k z-normalized random walks of length 256 — plus the raw
  //    data file non-materialized indexes fetch verified candidates from.
  constexpr size_t kCount = 20'000;
  constexpr size_t kLength = 256;
  workload::RandomWalkGenerator gen(kLength, /*seed=*/42);
  auto collection = gen.Generate(kCount);

  auto raw = core::RawSeriesStore::Create(storage.get(), "raw", kLength)
                 .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    raw->Append(collection[i]).TakeValue();
  }
  if (auto st = raw->Flush(); !st.ok()) {
    std::fprintf(stderr, "raw store: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Build a CoconutTree: summarize -> external sort -> sequential bulk
  //    load. The sortable (bit-interleaved) iSAX keys are what makes the
  //    sort meaningful.
  ctree::CTree::Options options;
  options.sax = series::SaxConfig{.series_length = kLength,
                                  .num_segments = 16,
                                  .bits_per_segment = 8};
  auto builder =
      ctree::CTree::Builder::Create(storage.get(), "ctree", options)
          .TakeValue();
  for (size_t i = 0; i < collection.size(); ++i) {
    if (auto st = builder->Add(i, collection[i], 0); !st.ok()) {
      std::fprintf(stderr, "add: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto tree = builder->Finish(/*pool=*/nullptr, raw.get()).TakeValue();
  std::printf("built CTree: %llu entries in %zu contiguous leaves (%.1f MiB)\n",
              static_cast<unsigned long long>(tree->num_entries()),
              tree->num_leaves(), tree->file_bytes() / 1048576.0);

  const auto& io = *storage->io_stats();
  std::printf("construction I/O: %llu sequential writes, %llu random writes\n",
              static_cast<unsigned long long>(io.sequential_writes),
              static_cast<unsigned long long>(io.random_writes));

  // 4. Query with a noisy copy of an indexed series.
  auto queries = workload::MakeNoisyQueries(collection, 1, /*noise=*/0.4,
                                            /*seed=*/7);
  core::QueryCounters counters;

  auto approx = tree->ApproxSearch(queries[0], {}, &counters).TakeValue();
  std::printf("approximate: series %llu at distance %.4f\n",
              static_cast<unsigned long long>(approx.series_id),
              std::sqrt(approx.distance_sq));

  counters.Reset();
  auto exact = tree->ExactSearch(queries[0], {}, &counters).TakeValue();
  std::printf("exact:       series %llu at distance %.4f\n",
              static_cast<unsigned long long>(exact.series_id),
              std::sqrt(exact.distance_sq));
  std::printf("exact search pruned %llu of %zu leaves with MINDIST lower "
              "bounds, fetched %llu raw series\n",
              static_cast<unsigned long long>(counters.leaves_pruned),
              tree->num_leaves(),
              static_cast<unsigned long long>(counters.raw_fetches));

  if (auto st = storage->Clear(); !st.ok()) return 1;
  return 0;
}
