// The runnable Coconut Palm demo backend: boots the typed service layer
// behind the embedded HTTP transport, optionally pre-loads a random-walk
// dataset with a built CTree index, and serves POST /api/v1/<method>
// until SIGINT/SIGTERM.
//
//   ./palm_serve [port] [--demo] [--durable] [--cache] [--cache-negative]
//                [--quota TOKEN=RPS[:BURST]]... [--quota-file PATH]
//                [--port-file PATH]
//                [--topology HOST:PORT,HOST:PORT,...]
//                [--topology-file PATH] [--degraded-reads] [--json-ingest]
//
//   port        TCP port on 127.0.0.1 (default 8765; 0 = ephemeral — the
//               chosen port is printed, and written to --port-file if set)
//   --demo      pre-register dataset 'walk' (2000 x 128) and build index
//               'ctree' over it, so queries work immediately
//   --durable   pre-create streaming index 'live' (128-point series) with
//               the write-ahead log on: every acknowledged ingest_batch
//               survives a crash of this process
//   --cache     enable the exact snapshot-versioned query answer cache
//   --cache-negative  also cache found=false answers (implies --cache)
//   --quota     require 'Authorization: Bearer TOKEN' and rate-limit that
//               client to RPS requests/second (burst BURST, default 2*RPS;
//               RPS of 0 = unlimited); repeatable, one per client
//   --quota-file  load quotas from a config file, one TOKEN=RPS[:BURST]
//               per line ('#' comments and blank lines allowed; '*' is
//               the shared anonymous bucket); combines with --quota
//   --port-file write the bound port (one line) to PATH after the bind
//
// Coordinator mode — serve a palm::dist cluster instead of a local
// service (see palm_shardd for the shard half):
//
//   --topology  comma-separated shard endpoints in KEY-RANGE ORDER; the
//               i-th entry owns invSAX key range i of every index
//   --topology-file  same, one HOST:PORT per line ('#' comments allowed)
//   --degraded-reads when a shard is down, serve queries from the
//               surviving shards (answers carry "degraded": true) instead
//               of failing with 503
//   --json-ingest    ship ingest sub-batches as JSON instead of the
//               CRC-checked binary framing (bench comparison knob)
//
// Try it:
//   curl -s localhost:8765/healthz
//   curl -s -X POST localhost:8765/api/v1/list_indexes
//   curl -s -X POST localhost:8765/api/v1/recommend -d '{"streaming":true}'
//   curl -s -X POST localhost:8765/api/v1/server_stats
#include <stdlib.h>  // mkdtemp (POSIX)

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "dist/coordinator.h"
#include "dist/topology.h"
#include "palm/api.h"
#include "palm/http_server.h"
#include "palm/query_cache.h"
#include "palm/quota.h"
#include "workload/generator.h"

using namespace coconut;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

bool WritePortFile(const std::string& path, uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "port file %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8765;
  bool demo = false;
  bool durable = false;
  bool cache = false;
  bool cache_negative = false;
  palm::api::QuotaOptions quota_options;
  bool quota = false;
  std::string port_file;
  std::string topology_text;
  std::string topology_file;
  bool degraded_reads = false;
  bool json_ingest = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--durable") == 0) {
      durable = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      cache = true;
    } else if (std::strcmp(argv[i], "--cache-negative") == 0) {
      cache = true;
      cache_negative = true;
    } else if (std::strcmp(argv[i], "--quota-file") == 0 && i + 1 < argc) {
      auto loaded = palm::api::LoadQuotaFile(argv[++i]);
      if (!loaded.ok()) {
        std::fprintf(stderr, "quota file: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      for (const auto& [token, client] : loaded.value().clients) {
        quota_options.clients[token] = client;
      }
      if (loaded.value().allow_anonymous) {
        quota_options.allow_anonymous = true;
        quota_options.anonymous_quota = loaded.value().anonymous_quota;
      }
      quota = true;
    } else if (std::strncmp(argv[i], "--quota", 7) == 0) {
      // --quota TOKEN=RPS[:BURST] (also accepts --quota=TOKEN=...).
      const char* arg = argv[i][7] == '=' ? argv[i] + 8
                        : (i + 1 < argc ? argv[++i] : "");
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr || eq == arg) {
        std::fprintf(stderr, "bad --quota spec '%s' (want TOKEN=RPS[:BURST])\n",
                     arg);
        return 1;
      }
      palm::api::ClientQuota client;
      char* end = nullptr;
      client.requests_per_second = std::strtod(eq + 1, &end);
      client.burst = (end != nullptr && *end == ':')
                         ? std::strtod(end + 1, nullptr)
                         : 2.0 * client.requests_per_second;
      quota_options.clients[std::string(arg, eq)] = client;
      quota = true;
    } else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      port_file = argv[++i];
    } else if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      topology_text = argv[++i];
    } else if (std::strcmp(argv[i], "--topology-file") == 0 && i + 1 < argc) {
      topology_file = argv[++i];
    } else if (std::strcmp(argv[i], "--degraded-reads") == 0) {
      degraded_reads = true;
    } else if (std::strcmp(argv[i], "--json-ingest") == 0) {
      json_ingest = true;
    } else {
      port = static_cast<uint16_t>(std::atoi(argv[i]));
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // ---- coordinator mode: fan out to palm_shardd processes.
  if (!topology_text.empty() || !topology_file.empty()) {
    auto endpoints =
        topology_file.empty()
            ? palm::dist::ParseTopology(topology_text)
            : palm::dist::LoadTopologyFile(topology_file);
    if (!endpoints.ok()) {
      std::fprintf(stderr, "topology: %s\n",
                   endpoints.status().ToString().c_str());
      return 1;
    }
    palm::dist::CoordinatorOptions coordinator_options;
    coordinator_options.shards = endpoints.TakeValue();
    coordinator_options.degraded_reads = degraded_reads;
    coordinator_options.binary_ingest = !json_ingest;
    auto coordinator_result =
        palm::dist::Coordinator::Create(std::move(coordinator_options));
    if (!coordinator_result.ok()) {
      std::fprintf(stderr, "coordinator: %s\n",
                   coordinator_result.status().ToString().c_str());
      return 1;
    }
    auto coordinator = coordinator_result.TakeValue();
    if (cache) {
      palm::api::QueryCacheOptions cache_options;
      cache_options.cache_negative_results = cache_negative;
      coordinator->EnableQueryCache(cache_options);
      std::printf("query answer cache enabled%s\n",
                  cache_negative ? " (negative results cached)" : "");
    }
    if (quota) {
      coordinator->ConfigureQuotas(quota_options);
      std::printf("quotas enabled for %zu client token(s)\n",
                  quota_options.clients.size());
    }

    palm::HttpServerOptions options;
    options.port = port;
    auto server_result =
        palm::HttpServer::Start(coordinator.get(), options);
    if (!server_result.ok()) {
      std::fprintf(stderr, "http: %s\n",
                   server_result.status().ToString().c_str());
      return 1;
    }
    auto server = server_result.TakeValue();
    if (!port_file.empty() && !WritePortFile(port_file, server->port())) {
      return 1;
    }
    std::printf(
        "palm_serve (coordinator, %zu shard%s%s) listening on "
        "http://%s:%u\n",
        coordinator->num_shards(), coordinator->num_shards() == 1 ? "" : "s",
        degraded_reads ? ", degraded reads on" : "",
        server->address().c_str(), server->port());
    std::fflush(stdout);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutting down...\n");
    server->Stop();
    return 0;
  }

  // ---- single-process mode.
  // A unique per-run directory: a fixed shared name would let two
  // instances clobber each other's data and turn the remove_all on exit
  // into deleting another process's (or a symlink target's) files.
  std::string root = (std::filesystem::temp_directory_path() /
                      "coconut_palm_serve.XXXXXX")
                         .string();
  if (::mkdtemp(root.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp %s: %s\n", root.c_str(),
                 std::strerror(errno));
    return 1;
  }
  auto service_result = palm::api::Service::Create(root);
  if (!service_result.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_result.status().ToString().c_str());
    return 1;
  }
  auto service = service_result.TakeValue();
  if (cache) {
    palm::api::QueryCacheOptions cache_options;
    cache_options.cache_negative_results = cache_negative;
    service->EnableQueryCache(cache_options);
    std::printf("query answer cache enabled%s\n",
                cache_negative ? " (negative results cached)" : "");
  }
  if (quota) {
    service->ConfigureQuotas(quota_options);
    std::printf("quotas enabled for %zu client token(s)\n",
                quota_options.clients.size());
  }

  if (demo) {
    series::SaxConfig sax{.series_length = 128, .num_segments = 16,
                          .bits_per_segment = 8};
    workload::RandomWalkGenerator gen(128, 4242);
    auto collection = gen.Generate(2000);
    if (auto r = service->RegisterDataset("walk", collection, nullptr);
        !r.ok()) {
      std::fprintf(stderr, "register: %s\n", r.status().ToString().c_str());
      return 1;
    }
    palm::VariantSpec spec;
    spec.sax = sax;
    spec.family = palm::IndexFamily::kCTree;
    if (auto r = service->BuildIndex("ctree", spec, "walk"); !r.ok()) {
      std::fprintf(stderr, "build: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("demo data ready: dataset 'walk' (2000x128), index 'ctree'\n");
  }

  if (durable) {
    palm::VariantSpec spec;
    spec.sax = series::SaxConfig{.series_length = 128, .num_segments = 16,
                                 .bits_per_segment = 8};
    spec.family = palm::IndexFamily::kCTree;
    spec.mode = palm::StreamMode::kTP;
    spec.buffer_entries = 256;
    spec.durable = true;
    if (auto r = service->CreateStream("live", spec); !r.ok()) {
      std::fprintf(stderr, "stream: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "durable stream 'live' ready: acknowledged ingest_batch calls are "
        "write-ahead logged and survive a crash\n");
  }

  palm::HttpServerOptions options;
  options.port = port;
  auto server_result = palm::HttpServer::Start(service.get(), options);
  if (!server_result.ok()) {
    std::fprintf(stderr, "http: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto server = server_result.TakeValue();
  if (!port_file.empty() && !WritePortFile(port_file, server->port())) {
    return 1;
  }

  std::printf("palm_serve listening on http://%s:%u\n",
              server->address().c_str(), server->port());
  std::printf("methods (POST /api/v1/<method>):");
  for (const std::string& method : palm::api::Service::Methods()) {
    std::printf(" %s", method.c_str());
  }
  std::printf("\nexample:\n");
  std::printf("  curl -s -X POST http://127.0.0.1:%u/api/v1/list_indexes\n",
              server->port());
  std::printf("Ctrl-C to stop.\n");
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down...\n");
  server->Stop();
  std::filesystem::remove_all(root);
  return 0;
}
